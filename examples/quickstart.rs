//! Quickstart: locking without declaring, allocating or initializing locks.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use std::thread;

use gls::glk::GlkLock;
use gls::{GlsService, LockKind};

fn main() {
    // ------------------------------------------------------------------
    // 1. The default interface: any object is a lock.
    // ------------------------------------------------------------------
    let service = Arc::new(GlsService::new());

    // Two totally ordinary pieces of shared state. Note that nothing about
    // them mentions locks: GLS maps their addresses to lock objects lazily.
    let inventory: Arc<Vec<&str>> = Arc::new(vec!["apples", "pears"]);
    let revenue = Arc::new(0u64);

    let mut handles = Vec::new();
    for worker in 0..4 {
        let service = Arc::clone(&service);
        let inventory = Arc::clone(&inventory);
        let revenue = Arc::clone(&revenue);
        handles.push(thread::spawn(move || {
            for i in 0..10_000u64 {
                // Classic lock/unlock calls, keyed by the object itself.
                service.lock(&*inventory).unwrap();
                // ... read or update the inventory ...
                service.unlock(&*inventory).unwrap();

                // RAII style for the second object.
                let _guard = service.guard(&*revenue).unwrap();
                // ... update revenue ...
                let _ = worker + i;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "quickstart: service manages {} lock object(s) after the workload",
        service.lock_count()
    );

    // ------------------------------------------------------------------
    // 2. The explicit interface: pick an algorithm per lock (Table 1).
    // ------------------------------------------------------------------
    let hot_global_lock = 0xCAFE_usize;
    service.lock_with(LockKind::Mcs, hot_global_lock).unwrap();
    println!(
        "explicit interface: {:?} is protected by {}",
        hot_global_lock,
        service.algorithm_of(hot_global_lock).unwrap()
    );
    service.unlock_with(LockKind::Mcs, hot_global_lock).unwrap();

    // ------------------------------------------------------------------
    // 3. GLK standalone: for systems that already manage their own locks.
    // ------------------------------------------------------------------
    let glk = Arc::new(GlkLock::new());
    let mut handles = Vec::new();
    for _ in 0..4 {
        let glk = Arc::clone(&glk);
        handles.push(thread::spawn(move || {
            for _ in 0..50_000 {
                glk.lock();
                glk.unlock();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "standalone GLK: {} acquisitions, finished in {} mode",
        glk.acquisitions(),
        glk.mode()
    );
}
