//! Finding contended locks with the GLS profiler mode (§4.3).
//!
//! A skewed workload hammers one of eight locks far more than the others
//! (like a global stats lock in a real system). The profiler report makes the
//! bottleneck obvious: it shows per-lock queuing, lock-acquisition latency
//! and critical-section latency, sorted by contention — exactly the output
//! the paper uses to re-engineer Memcached's locking.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example profile_contention
//! ```

use std::sync::Arc;
use std::thread;

use gls::{GlsConfig, GlsService};

const LOCKS: usize = 8;
const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 50_000;

fn main() {
    let service = Arc::new(GlsService::with_config(GlsConfig::profile()));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                let mut x = (t as u64 + 1) * 0x2545F491;
                for _ in 0..OPS_PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // 60% of operations hit lock 0, the rest spread out: the
                    // same shape as a system with one hot global lock.
                    let which = if x % 10 < 6 { 0 } else { (x as usize) % LOCKS };
                    let addr = 0x5000 + which * 64;
                    service.lock_addr(addr).unwrap();
                    gls_runtime::spin_cycles(if which == 0 { 800 } else { 200 });
                    service.unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let report = service.profile_report();
    println!("profile_contention: per-lock report (most contended first)\n");
    print!("{report}");

    let hot: Vec<_> = report.contended(1.0).collect();
    println!("\nlikely bottlenecks (avg queue > 1.0): {}", hot.len());
    for lock in hot {
        println!(
            "  {:#x} — avg queue {:.2}, suggest a queue-based lock or finer granularity",
            lock.addr, lock.avg_queue
        );
    }
}
