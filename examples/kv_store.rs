//! A small sharded key-value store protected by GLS.
//!
//! This mirrors the paper's motivating scenario (key-value stores such as
//! Memcached rely heavily on locks): a hash-sharded store where every shard
//! is protected through the locking service, so no lock is ever declared or
//! initialized by the application, and GLK adapts each shard's lock to its
//! actual contention (hot shards become MCS, cold shards stay ticket).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use gls::{GlsConfig, GlsService};

const SHARDS: usize = 16;
const OPS_PER_THREAD: usize = 100_000;
const THREADS: usize = 8;

/// A shard: plain data, no lock in sight. GLS supplies the locking.
struct Shard {
    map: UnsafeCell<HashMap<u64, u64>>,
}

// SAFETY: all access to `map` goes through the GLS lock keyed by the shard's
// address (see `Store::with_shard`).
unsafe impl Sync for Shard {}

struct Store {
    service: GlsService,
    shards: Vec<Shard>,
}

impl Store {
    fn new() -> Self {
        Self {
            service: GlsService::with_config(GlsConfig::default()),
            shards: (0..SHARDS)
                .map(|_| Shard {
                    map: UnsafeCell::new(HashMap::new()),
                })
                .collect(),
        }
    }

    fn shard_for(&self, key: u64) -> &Shard {
        &self.shards[(key as usize) % SHARDS]
    }

    fn with_shard<R>(&self, key: u64, f: impl FnOnce(&mut HashMap<u64, u64>) -> R) -> R {
        let shard = self.shard_for(key);
        let _guard = self.service.guard(shard).expect("locking cannot fail here");
        // SAFETY: the GLS guard for this shard's address gives us exclusive
        // access to the shard's map.
        let map = unsafe { &mut *shard.map.get() };
        f(map)
    }

    fn put(&self, key: u64, value: u64) {
        self.with_shard(key, |m| {
            m.insert(key, value);
        })
    }

    fn get(&self, key: u64) -> Option<u64> {
        self.with_shard(key, |m| m.get(&key).copied())
    }
}

fn main() {
    let store = Arc::new(Store::new());
    let start = Instant::now();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                // Simple xorshift so each thread touches a skewed key set:
                // most requests hit a small number of hot keys, like a cache.
                let mut x = (t as u64 + 1) * 0x9E3779B9;
                let mut hits = 0u64;
                for i in 0..OPS_PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = if x % 100 < 80 { x % 64 } else { x % 100_000 };
                    if i % 10 < 3 {
                        store.put(key, x);
                    } else if store.get(key).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();

    let hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed();
    let total_ops = (THREADS * OPS_PER_THREAD) as f64;

    println!("kv_store: {THREADS} threads, {SHARDS} shards");
    println!(
        "  throughput: {:.2} Mops/s ({} hits)",
        total_ops / elapsed.as_secs_f64() / 1e6,
        hits
    );
    println!(
        "  lock objects created by GLS: {}",
        store.service.lock_count()
    );
}
