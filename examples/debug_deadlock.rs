//! Detecting a deadlock at runtime with the GLS debug mode (§4.2).
//!
//! Two worker threads acquire the same two resources in opposite order — the
//! textbook lock-ordering bug. With GLS in debug mode, the stuck thread
//! notices it has been waiting too long, walks the owner/waits-for chain,
//! finds the cycle and reports it instead of hanging forever.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example debug_deadlock
//! ```

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use gls::{GlsConfig, GlsService};

fn main() {
    let service = Arc::new(GlsService::with_config(
        GlsConfig::debug().with_deadlock_check_after(Duration::from_millis(200)),
    ));

    // Two shared resources; as usual with GLS, no lock objects in sight.
    let accounts_table = 0xA000_usize;
    let audit_log = 0xB000_usize;

    let barrier = Arc::new(Barrier::new(2));

    let t1 = {
        let service = Arc::clone(&service);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            service.lock_addr(accounts_table).unwrap();
            barrier.wait(); // make sure both threads hold their first lock
            match service.lock_addr(audit_log) {
                Ok(()) => {
                    service.unlock_addr(audit_log).unwrap();
                    service.unlock_addr(accounts_table).unwrap();
                    None
                }
                Err(issue) => {
                    service.unlock_addr(accounts_table).unwrap();
                    Some(issue)
                }
            }
        })
    };

    let t2 = {
        let service = Arc::clone(&service);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            service.lock_addr(audit_log).unwrap();
            barrier.wait();
            match service.lock_addr(accounts_table) {
                Ok(()) => {
                    service.unlock_addr(accounts_table).unwrap();
                    service.unlock_addr(audit_log).unwrap();
                    None
                }
                Err(issue) => {
                    service.unlock_addr(audit_log).unwrap();
                    Some(issue)
                }
            }
        })
    };

    let reports: Vec<_> = [t1.join().unwrap(), t2.join().unwrap()]
        .into_iter()
        .flatten()
        .collect();

    println!(
        "debug_deadlock: {} thread(s) reported a deadlock",
        reports.len()
    );
    for report in &reports {
        println!("  {report}");
    }
    println!("issues recorded by the service:");
    for issue in service.issues() {
        println!("  [{}] {}", issue.category(), issue);
    }
    assert!(
        !reports.is_empty(),
        "the deadlock should have been detected by at least one thread"
    );
}
