//! Carrier package for the workspace-level integration tests (`tests/`) and
//! runnable examples (`examples/`). All library code lives in the `crates/*`
//! members; see `gls` (crates/core) for the public entry point.
