//! Shared runtime substrate for the GLS locking-middleware reproduction.
//!
//! The paper "Locking Made Easy" (Middleware'16) builds its adaptive lock
//! (GLK) and locking service (GLS) on top of a handful of small runtime
//! facilities that are not themselves lock algorithms:
//!
//! * a cheap way to measure short durations in **CPU cycles** and to busy-wait
//!   for a given number of cycles (critical-section simulation, latency
//!   measurements) — [`cycles`];
//! * an **exponential moving average** used to smooth the per-lock queuing
//!   statistics that drive adaptation — [`ema`];
//! * small, dense, reusable **thread identifiers** used by the debug and
//!   deadlock-detection machinery — [`thread_id`];
//! * knowledge of how many **hardware contexts** the machine offers —
//!   [`topology`];
//! * the **system-load monitor**, the paper's background thread that detects
//!   multiprogramming (more runnable tasks than hardware contexts) and tells
//!   every GLK lock in the process to consider switching to its blocking
//!   mutex mode — [`sysload`];
//! * per-lock **statistics counters** and a tiny log-scaled **histogram**
//!   used by the GLS profiler — [`stats`] and [`histogram`];
//! * a per-thread **flight recorder** ring of recent lock events, drained
//!   into telemetry snapshots and deadlock reports — [`flight`].
//!
//! Everything in this crate is dependency-free and usable from both the core
//! `gls` crate and the benchmark harness.
//!
//! # Example
//!
//! ```
//! use gls_runtime::cycles;
//!
//! let start = cycles::now();
//! cycles::spin_for(1_000); // simulate a 1000-cycle critical section
//! assert!(cycles::now() >= start);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cycles;
pub mod ema;
pub mod flight;
pub mod histogram;
pub mod stats;
pub mod sysload;
pub mod thread_id;
pub mod topology;

pub use cycles::{now as cycles_now, spin_for as spin_cycles};
pub use ema::Ema;
pub use flight::{FlightEvent, FlightEventKind};
pub use histogram::{AtomicLatencyHistogram, LatencyHistogram};
pub use stats::LockStats;
pub use sysload::{SystemLoadMonitor, SystemLoadSnapshot};
pub use thread_id::ThreadId;
pub use topology::{cache_domains, current_domain, domain_of, hardware_contexts, pin_to};
