//! System-load monitoring: the multiprogramming detector.
//!
//! Queue length behind a single lock says nothing about whether the *machine*
//! is oversubscribed — multiprogramming may be caused by other threads or
//! other applications entirely. The paper therefore spawns, on the first GLK
//! invocation, one **background thread shared by all GLK locks** that wakes up
//! roughly every 100 µs, compares the number of runnable tasks to the number
//! of hardware contexts and, when the machine is oversubscribed, raises a
//! library-wide flag telling locks to switch to their blocking mutex mode the
//! next time they adapt (§3).
//!
//! This module reproduces that component. Two load sources are supported:
//!
//! * [`LoadSource::ProcessRegistry`] (default): worker threads register
//!   themselves as *runnable* through [`SystemLoadMonitor::runnable_guard`];
//!   the monitor counts registered threads. This is deterministic and ignores
//!   unrelated activity on a shared CI machine.
//! * [`LoadSource::ProcStat`]: read `procs_running` from `/proc/stat`, which
//!   is the closest portable equivalent of the paper's system-wide check and
//!   also sees *other* processes.
//!
//! The hysteresis for *leaving* mutex mode (exponentially more calm rounds
//! required after each bounce) lives in the GLK lock itself; this monitor only
//! reports the current state plus a monotonically increasing epoch counter of
//! "calm" observations that GLK uses for that hold-off.

use std::fs;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use crate::topology;

/// Where the monitor gets its runnable-task count from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadSource {
    /// Count only threads registered through [`SystemLoadMonitor::runnable_guard`].
    #[default]
    ProcessRegistry,
    /// Use the kernel's `procs_running` counter from `/proc/stat` when it is
    /// available, falling back to the process registry otherwise.
    ProcStat,
    /// Take the maximum of both sources.
    Max,
}

/// A point-in-time view of the system load as seen by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemLoadSnapshot {
    /// Number of runnable tasks observed.
    pub runnable_tasks: usize,
    /// Number of hardware contexts on the machine.
    pub hardware_contexts: usize,
    /// Whether the machine is currently considered multiprogrammed.
    pub multiprogrammed: bool,
    /// Number of consecutive monitor ticks without oversubscription.
    pub calm_ticks: u64,
}

/// Configuration for the system-load monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemLoadConfig {
    /// Polling period of the background thread. Paper default: ~100 µs.
    pub poll_interval: Duration,
    /// Load source to use.
    pub source: LoadSource,
    /// Extra slack: the machine counts as multiprogrammed only if
    /// `runnable_tasks > hardware_contexts + slack`.
    pub slack: usize,
}

impl Default for SystemLoadConfig {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_micros(100),
            source: LoadSource::default(),
            slack: 0,
        }
    }
}

#[derive(Debug, Default)]
struct Shared {
    /// Threads currently registered as runnable.
    runnable: AtomicUsize,
    /// Library-wide multiprogramming flag.
    multiprogrammed: AtomicBool,
    /// Consecutive calm (non-oversubscribed) monitor ticks.
    calm_ticks: AtomicU64,
    /// Total monitor ticks (diagnostics / tests).
    ticks: AtomicU64,
    /// Set to ask the background thread to exit.
    shutdown: AtomicBool,
}

/// The multiprogramming detector shared by every GLK lock in the process.
///
/// # Example
///
/// ```
/// use gls_runtime::SystemLoadMonitor;
///
/// let monitor = SystemLoadMonitor::global();
/// let _guard = monitor.runnable_guard(); // this thread counts as runnable
/// let snap = monitor.snapshot();
/// assert!(snap.runnable_tasks >= 1);
/// ```
#[derive(Debug)]
pub struct SystemLoadMonitor {
    config: SystemLoadConfig,
    shared: Arc<Shared>,
    /// Whether a background thread was spawned for this monitor.
    background: bool,
}

impl SystemLoadMonitor {
    /// Returns the process-wide monitor, spawning its background thread on
    /// first use (mirroring "on the first GLK invocation, a background thread
    /// is spawned").
    pub fn global() -> &'static SystemLoadMonitor {
        static GLOBAL: OnceLock<SystemLoadMonitor> = OnceLock::new();
        GLOBAL.get_or_init(|| SystemLoadMonitor::spawn(SystemLoadConfig::default()))
    }

    /// Creates a monitor **without** a background thread; callers must invoke
    /// [`SystemLoadMonitor::poll_once`] themselves. Useful for deterministic
    /// unit tests of the adaptation logic.
    pub fn manual(config: SystemLoadConfig) -> Self {
        Self {
            config,
            shared: Arc::new(Shared::default()),
            background: false,
        }
    }

    /// Creates a monitor backed by a background polling thread.
    pub fn spawn(config: SystemLoadConfig) -> Self {
        let shared = Arc::new(Shared::default());
        let thread_shared = Arc::clone(&shared);
        let interval = config.poll_interval;
        let source = config.source;
        let slack = config.slack;
        thread::Builder::new()
            .name("gls-sysload-monitor".into())
            .spawn(move || {
                while !thread_shared.shutdown.load(Ordering::Relaxed) {
                    Self::poll_shared(&thread_shared, source, slack);
                    // The background sampler is wall-clock paced by design
                    // and never runs under the model explorer.
                    #[allow(clippy::disallowed_methods)]
                    thread::sleep(interval);
                }
            })
            .expect("failed to spawn the GLS system-load monitor thread");
        Self {
            config,
            shared,
            background: true,
        }
    }

    /// The configuration this monitor runs with.
    pub fn config(&self) -> SystemLoadConfig {
        self.config
    }

    /// Registers the calling thread as runnable until the returned guard is
    /// dropped. Benchmark workers and background spinners use this so that the
    /// default (process-registry) load source sees them.
    pub fn runnable_guard(&self) -> RunnableGuard<'_> {
        self.shared.runnable.fetch_add(1, Ordering::Relaxed);
        RunnableGuard { monitor: self }
    }

    /// Number of currently registered runnable threads.
    pub fn registered_runnable(&self) -> usize {
        self.shared.runnable.load(Ordering::Relaxed)
    }

    /// Performs one polling step immediately (in addition to, or instead of,
    /// the background thread).
    pub fn poll_once(&self) {
        Self::poll_shared(&self.shared, self.config.source, self.config.slack);
    }

    fn poll_shared(shared: &Shared, source: LoadSource, slack: usize) {
        let registered = shared.runnable.load(Ordering::Relaxed);
        let runnable = match source {
            LoadSource::ProcessRegistry => registered,
            LoadSource::ProcStat => procs_running().unwrap_or(registered),
            LoadSource::Max => procs_running().unwrap_or(0).max(registered),
        };
        let hw = topology::hardware_contexts();
        let over = runnable > hw + slack;
        shared.multiprogrammed.store(over, Ordering::Relaxed);
        if over {
            shared.calm_ticks.store(0, Ordering::Relaxed);
        } else {
            shared.calm_ticks.fetch_add(1, Ordering::Relaxed);
        }
        shared.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the machine is currently considered multiprogrammed.
    pub fn is_multiprogrammed(&self) -> bool {
        self.shared.multiprogrammed.load(Ordering::Relaxed)
    }

    /// Number of consecutive calm monitor ticks.
    pub fn calm_ticks(&self) -> u64 {
        self.shared.calm_ticks.load(Ordering::Relaxed)
    }

    /// Total number of monitor ticks so far.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// A consistent snapshot of the current state.
    pub fn snapshot(&self) -> SystemLoadSnapshot {
        SystemLoadSnapshot {
            runnable_tasks: self.registered_runnable(),
            hardware_contexts: topology::hardware_contexts(),
            multiprogrammed: self.is_multiprogrammed(),
            calm_ticks: self.calm_ticks(),
        }
    }
}

impl Drop for SystemLoadMonitor {
    fn drop(&mut self) {
        if self.background {
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
    }
}

/// Guard returned by [`SystemLoadMonitor::runnable_guard`]; unregisters the
/// thread when dropped.
#[derive(Debug)]
pub struct RunnableGuard<'a> {
    monitor: &'a SystemLoadMonitor,
}

impl Drop for RunnableGuard<'_> {
    fn drop(&mut self) {
        self.monitor.shared.runnable.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Reads the kernel's count of currently runnable tasks from `/proc/stat`
/// (the `procs_running` line). Returns `None` on platforms or sandboxes where
/// the file is unavailable.
pub fn procs_running() -> Option<usize> {
    let stat = fs::read_to_string("/proc/stat").ok()?;
    for line in stat.lines() {
        if let Some(rest) = line.strip_prefix("procs_running") {
            return rest.trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;

    fn manual_monitor() -> SystemLoadMonitor {
        SystemLoadMonitor::manual(SystemLoadConfig {
            poll_interval: Duration::from_micros(100),
            source: LoadSource::ProcessRegistry,
            slack: 0,
        })
    }

    #[test]
    fn registry_counts_guards() {
        let m = manual_monitor();
        assert_eq!(m.registered_runnable(), 0);
        let g1 = m.runnable_guard();
        let g2 = m.runnable_guard();
        assert_eq!(m.registered_runnable(), 2);
        drop(g1);
        assert_eq!(m.registered_runnable(), 1);
        drop(g2);
        assert_eq!(m.registered_runnable(), 0);
    }

    #[test]
    fn no_multiprogramming_without_oversubscription() {
        let m = manual_monitor();
        let _g = m.runnable_guard();
        m.poll_once();
        assert!(!m.is_multiprogrammed());
        assert!(m.calm_ticks() >= 1);
    }

    #[test]
    fn detects_oversubscription_and_recovers() {
        let m = manual_monitor();
        let hw = topology::hardware_contexts();
        let guards: Vec<_> = (0..hw * 2 + 1).map(|_| m.runnable_guard()).collect();
        m.poll_once();
        assert!(m.is_multiprogrammed());
        assert_eq!(m.calm_ticks(), 0);
        drop(guards);
        m.poll_once();
        assert!(!m.is_multiprogrammed());
        assert!(m.calm_ticks() >= 1);
    }

    #[test]
    fn calm_ticks_accumulate() {
        let m = manual_monitor();
        for _ in 0..5 {
            m.poll_once();
        }
        assert!(m.calm_ticks() >= 5);
        assert!(m.ticks() >= 5);
    }

    #[test]
    fn snapshot_is_consistent_with_accessors() {
        let m = manual_monitor();
        let _g = m.runnable_guard();
        m.poll_once();
        let s = m.snapshot();
        assert_eq!(s.runnable_tasks, m.registered_runnable());
        assert_eq!(s.multiprogrammed, m.is_multiprogrammed());
        assert_eq!(s.hardware_contexts, topology::hardware_contexts());
    }

    #[test]
    fn background_monitor_ticks_on_its_own() {
        let m = SystemLoadMonitor::spawn(SystemLoadConfig {
            poll_interval: Duration::from_micros(200),
            ..Default::default()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(m.ticks() > 0);
    }

    #[test]
    fn global_monitor_is_a_singleton() {
        let a = SystemLoadMonitor::global() as *const _;
        let b = SystemLoadMonitor::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn procs_running_parses_when_available() {
        // On Linux this should parse to some small number; elsewhere (or in
        // stripped-down sandboxes) None is fine. Sanity-bound the value only.
        if let Some(n) = procs_running() {
            assert!(n < 1_000_000);
        }
    }
}
