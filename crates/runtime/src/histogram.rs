//! A small log-scaled latency histogram used by the GLS profiler.
//!
//! The profiler (§4.3) reports per-lock acquisition latency and
//! critical-section duration. A fixed-size power-of-two-bucketed histogram
//! gives percentiles with constant memory and no allocation on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket `i` holds samples in `[2^i, 2^(i+1))` cycles,
/// with bucket 0 holding `[0, 2)` and the last bucket holding everything
/// larger.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of cycle counts.
///
/// # Example
///
/// ```
/// use gls_runtime::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [10, 20, 30, 40, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.mean() > 0.0);
/// assert!(h.percentile(0.5) <= h.percentile(0.99));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < 2 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize - 1).min(BUCKETS - 1)
        }
    }

    /// Records one sample (in cycles).
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (`0.0` if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`0` if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (`0` if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (`q` in `[0, 1]`), reported as the upper bound
    /// of the bucket containing the q-th sample. Returns `0` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0.0, 1.0]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bound of bucket i.
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        self.max
    }

    /// Median (the 50th percentile); see [`LatencyHistogram::percentile`]
    /// for the bucket-upper-bound semantics.
    pub fn p50(&self) -> u64 {
        self.percentile(0.5)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A concurrently recordable [`LatencyHistogram`]: same log₂ buckets, but
/// every field is a relaxed atomic so lock holders on different threads can
/// record into one shared instance without synchronization. The profiler
/// keeps one per profile shard, so recording stays uncontended on the hot
/// path; [`AtomicLatencyHistogram::fold_into`] merges shards into a plain
/// [`LatencyHistogram`] at snapshot time.
///
/// `min`/`max`/`count`/`sum` are each individually exact, but a reader
/// racing recorders can observe them at slightly different instants; the
/// telemetry consumer tolerates that (the counters feed reports, not
/// correctness decisions).
#[derive(Debug)]
pub struct AtomicLatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` while empty, so `fetch_min` needs no empty special case.
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicLatencyHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (in cycles).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[LatencyHistogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Merges this histogram's current contents into `target`.
    pub fn fold_into(&self, target: &mut LatencyHistogram) {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        for (t, b) in target.buckets.iter_mut().zip(self.buckets.iter()) {
            *t += b.load(Ordering::Relaxed);
        }
        target.count += count;
        target.sum += self.sum.load(Ordering::Relaxed) as u128;
        target.min = target.min.min(self.min.load(Ordering::Relaxed));
        target.max = target.max.max(self.max.load(Ordering::Relaxed));
    }

    /// A point-in-time copy as a plain [`LatencyHistogram`].
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        self.fold_into(&mut out);
        out
    }
}

impl Default for AtomicLatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn single_sample_statistics() {
        let mut h = LatencyHistogram::new();
        h.record(100);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 100.0);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 100);
        assert!(h.percentile(1.0) >= 100);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_validates_range() {
        LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn quantile_shorthands_match_percentile() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), h.percentile(0.5));
        assert_eq!(h.p99(), h.percentile(0.99));
        assert_eq!(h.p999(), h.percentile(0.999));
        assert!(h.p50() <= h.p99() && h.p99() <= h.p999());
    }

    #[test]
    fn atomic_histogram_matches_plain_recording() {
        let atomic = AtomicLatencyHistogram::new();
        let mut plain = LatencyHistogram::new();
        for v in [3u64, 17, 17, 900, 65_000] {
            atomic.record(v);
            plain.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.mean(), plain.mean());
        assert_eq!(snap.p50(), plain.p50());
        assert_eq!(snap.p999(), plain.p999());
    }

    #[test]
    fn atomic_histogram_folds_across_shards() {
        let a = AtomicLatencyHistogram::new();
        let b = AtomicLatencyHistogram::new();
        a.record(10);
        b.record(1000);
        let mut merged = LatencyHistogram::new();
        a.fold_into(&mut merged);
        b.fold_into(&mut merged);
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.min(), 10);
        assert_eq!(merged.max(), 1000);
        // Folding an empty histogram changes nothing.
        AtomicLatencyHistogram::new().fold_into(&mut merged);
        assert_eq!(merged.count(), 2);
    }

    #[test]
    fn atomic_histogram_concurrent_records_are_all_counted() {
        use std::sync::Arc;
        let h = Arc::new(AtomicLatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i % (100 * (t + 1)));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn reset_empties() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.reset();
        assert!(h.is_empty());
    }

    proptest! {
        /// Percentiles are monotone in q and bounded by min/max buckets.
        #[test]
        fn percentiles_are_monotone(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            let p50 = h.percentile(0.5);
            let p90 = h.percentile(0.9);
            let p99 = h.percentile(0.99);
            prop_assert!(p50 <= p90);
            prop_assert!(p90 <= p99);
            prop_assert!(h.mean() >= h.min() as f64);
            prop_assert!(h.mean() <= h.max() as f64);
        }

        /// Mean equals the true arithmetic mean (exact sums are kept).
        #[test]
        fn mean_is_exact(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            let expect = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
            prop_assert!((h.mean() - expect).abs() < 1e-6);
        }
    }
}
