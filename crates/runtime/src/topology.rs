//! Hardware-context topology information: context counts, thread pinning and
//! cache-domain grouping.
//!
//! GLK's multiprogramming detector compares the number of runnable tasks to
//! the number of available hardware contexts (§3, "Measuring Contention").
//! This module provides the latter, with an environment-variable override so
//! experiments can emulate a smaller machine (e.g. the paper's 20- and
//! 48-context Xeons) without changing code.
//!
//! Beyond the passive count, the module exposes an *active* topology API:
//!
//! * [`pin_to`] pins the calling thread to one hardware context
//!   (`sched_setaffinity` on Linux, a no-op elsewhere), so benchmarks can
//!   measure genuine multi-core behaviour instead of whatever placement the
//!   scheduler happens to pick;
//! * [`cache_domains`] groups contexts that share a last-level cache, and
//!   [`domain_of`] / [`current_domain`] answer "which cohort is this thread
//!   in?" — the input to the topology-aware (cohort) handoff policy in
//!   `gls_locks`.
//!
//! Domains are deliberately read once and cached: the handoff fast path asks
//! for the current thread's domain on every park, so the answer must be a
//! thread-local load, not a sysfs parse.

use std::cell::Cell;
use std::sync::OnceLock;

/// Environment variable that overrides the detected number of hardware
/// contexts. Useful for reproducing multiprogramming behaviour on machines
/// with a different core count than the paper's.
pub const HW_CONTEXTS_ENV: &str = "GLS_HW_CONTEXTS";

/// Environment variable that overrides the detected cache-domain layout.
///
/// Format: `|`-separated groups of comma/range context lists, e.g.
/// `"0-3|4-7"` describes two domains of four contexts each. Contexts not
/// mentioned fall into an implicit trailing domain. This exists so the
/// cohort-handoff policy can be tested deterministically on any machine,
/// including single-core CI runners.
pub const CACHE_DOMAINS_ENV: &str = "GLS_CACHE_DOMAINS";

/// Returns the number of hardware contexts (logical CPUs) available to this
/// process.
///
/// Resolution order:
/// 1. the [`HW_CONTEXTS_ENV`] environment variable, if set and parseable;
/// 2. [`std::thread::available_parallelism`];
/// 3. a conservative fallback of `1`.
///
/// The value is computed once and cached for the lifetime of the process.
pub fn hardware_contexts() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(detect)
}

/// Detects the hardware context count without caching (used by tests).
pub fn detect() -> usize {
    if let Ok(v) = std::env::var(HW_CONTEXTS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A suggested thread-count sweep for contention experiments: 1, 2, 3, ... up
/// to `factor` times the number of hardware contexts, thinning out the large
/// counts to keep sweeps tractable.
///
/// The paper sweeps 1..60 threads on a 48-context machine (1.25x
/// oversubscription); `sweep(1.25)` reproduces that shape on any host.
pub fn sweep(factor: f64) -> Vec<usize> {
    let hw = hardware_contexts();
    let max = ((hw as f64) * factor).ceil() as usize;
    let max = max.max(2);
    let mut out = Vec::new();
    let mut t = 1usize;
    while t <= max {
        out.push(t);
        // Dense at the low end (where ticket/mcs crossovers live), sparser
        // towards the top.
        let step = if t < 4 {
            1
        } else if t < 16 {
            2
        } else {
            4
        };
        t += step;
    }
    if *out.last().unwrap() != max {
        out.push(max);
    }
    out
}

// ---------------------------------------------------------------------------
// Thread pinning
// ---------------------------------------------------------------------------

thread_local! {
    /// The context this thread was last pinned to via [`pin_to`], if any.
    static PINNED_CONTEXT: Cell<Option<usize>> = const { Cell::new(None) };
    /// Cached cache-domain of this thread (`usize::MAX` = not yet computed).
    static THREAD_DOMAIN: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Model-build override: a virtual thread's declared cache domain.
    #[cfg(gls_model)]
    static MODEL_DOMAIN: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Declares the calling thread's cache domain for the model build: the
/// concurrency explorer's virtual threads all run wherever the OS puts
/// them, so cohort policies would see one domain and never branch. Tests
/// assign domains explicitly instead, keeping schedules hardware
/// -independent. `None` removes the override.
#[cfg(gls_model)]
pub fn set_model_domain(domain: Option<usize>) {
    MODEL_DOMAIN.with(|d| d.set(domain));
}

/// Pins the calling thread to hardware context `ctx`.
///
/// Returns `true` if the kernel accepted the affinity change. On platforms
/// without an affinity syscall (or when the kernel rejects the mask — e.g.
/// `ctx` is outside the process's cpuset) this returns `false` and the
/// thread keeps its previous placement; callers must treat pinning as
/// best-effort.
///
/// On success the thread's cached cache-domain ([`current_domain`]) is
/// updated to `domain_of(ctx)`.
pub fn pin_to(ctx: usize) -> bool {
    if sched_setaffinity_single(ctx) {
        PINNED_CONTEXT.with(|c| c.set(Some(ctx)));
        THREAD_DOMAIN.with(|d| d.set(domain_of(ctx)));
        true
    } else {
        false
    }
}

/// Pins the calling thread round-robin over the hardware contexts: worker
/// `index` goes to context `index % hardware_contexts()`. The standard
/// placement used by every measurement driver in the harness.
pub fn pin_worker(index: usize) -> bool {
    pin_to(index % hardware_contexts())
}

/// The context the calling thread was last successfully pinned to via
/// [`pin_to`], if any. This does not query the kernel; it records intent.
pub fn pinned_context() -> Option<usize> {
    PINNED_CONTEXT.with(|c| c.get())
}

/// The hardware context the calling thread is executing on right now, if the
/// platform can tell us (`getcpu` on Linux). `None` on other platforms.
pub fn current_context() -> Option<usize> {
    getcpu()
}

/// Whether [`pin_to`] can possibly succeed on this platform.
pub fn pinning_supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn sched_setaffinity_single(ctx: usize) -> bool {
    // Raw syscall: the workspace is std-only (no libc crate), and
    // sched_setaffinity has a stable ABI. Mask is a u64 array; contexts
    // beyond 1024 are out of scope for this reproduction.
    if ctx >= 1024 {
        return false;
    }
    let mut mask = [0u64; 16];
    mask[ctx / 64] = 1u64 << (ctx % 64);
    let ret: isize;
    // SAFETY: raw syscall; the kernel only reads/writes the stack-local
    // buffer passed in, and nothing escapes the call.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // SYS_sched_setaffinity
            in("rdi") 0usize,                 // pid 0 = calling thread
            in("rsi") core::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn sched_setaffinity_single(ctx: usize) -> bool {
    if ctx >= 1024 {
        return false;
    }
    let mut mask = [0u64; 16];
    mask[ctx / 64] = 1u64 << (ctx % 64);
    let ret: isize;
    // SAFETY: raw syscall; the kernel only reads/writes the stack-local
    // buffer passed in, and nothing escapes the call.
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") 122usize, // SYS_sched_setaffinity
            inlateout("x0") 0usize => ret,
            in("x1") core::mem::size_of_val(&mask),
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn sched_setaffinity_single(_ctx: usize) -> bool {
    false
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn getcpu() -> Option<usize> {
    let mut cpu: u32 = 0;
    let ret: isize;
    // SAFETY: raw syscall; the kernel only reads/writes the stack-local
    // buffer passed in, and nothing escapes the call.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 309isize => ret, // SYS_getcpu
            in("rdi") &mut cpu as *mut u32,
            in("rsi") 0usize,
            in("rdx") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    if ret == 0 {
        Some(cpu as usize)
    } else {
        None
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
fn getcpu() -> Option<usize> {
    let mut cpu: u32 = 0;
    let ret: isize;
    // SAFETY: raw syscall; the kernel only reads/writes the stack-local
    // buffer passed in, and nothing escapes the call.
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") 168usize, // SYS_getcpu
            inlateout("x0") &mut cpu as *mut u32 => ret,
            in("x1") 0usize,
            in("x2") 0usize,
            options(nostack),
        );
    }
    if ret == 0 {
        Some(cpu as usize)
    } else {
        None
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn getcpu() -> Option<usize> {
    None
}

// ---------------------------------------------------------------------------
// Cache domains
// ---------------------------------------------------------------------------

/// Groups of hardware contexts that share a last-level cache.
///
/// Resolution order:
/// 1. the [`CACHE_DOMAINS_ENV`] environment variable, if set and parseable;
/// 2. sysfs (`/sys/devices/system/cpu/cpuN/cache/index*/shared_cpu_list`,
///    highest cache level present) on Linux;
/// 3. a single domain containing every context.
///
/// Every context in `0..hardware_contexts()` appears in exactly one domain.
/// The result is computed once and cached for the lifetime of the process.
pub fn cache_domains() -> &'static [Vec<usize>] {
    static CACHED: OnceLock<Vec<Vec<usize>>> = OnceLock::new();
    CACHED.get_or_init(detect_cache_domains)
}

/// Number of cache domains ([`cache_domains`]`.len()`).
pub fn domain_count() -> usize {
    cache_domains().len()
}

/// The index (into [`cache_domains`]) of the domain containing context
/// `ctx`. Contexts outside the detected topology map to domain 0.
pub fn domain_of(ctx: usize) -> usize {
    for (i, dom) in cache_domains().iter().enumerate() {
        if dom.contains(&ctx) {
            return i;
        }
    }
    0
}

/// The cache domain of the calling thread.
///
/// Uses the pinned context if [`pin_to`] succeeded on this thread, else the
/// context reported by the platform ([`current_context`]), else domain 0.
/// The answer is cached per thread (and refreshed by [`pin_to`]) so it is
/// cheap enough for lock release paths.
pub fn current_domain() -> usize {
    #[cfg(gls_model)]
    if let Some(domain) = MODEL_DOMAIN.with(|d| d.get()) {
        return domain;
    }
    THREAD_DOMAIN.with(|d| {
        let cached = d.get();
        if cached != usize::MAX {
            return cached;
        }
        let ctx = pinned_context().or_else(current_context).unwrap_or(0);
        let dom = domain_of(ctx);
        d.set(dom);
        dom
    })
}

fn detect_cache_domains() -> Vec<Vec<usize>> {
    let n = hardware_contexts();
    if let Ok(spec) = std::env::var(CACHE_DOMAINS_ENV) {
        if let Some(domains) = parse_domain_spec(&spec, n) {
            return domains;
        }
    }
    #[cfg(target_os = "linux")]
    if let Some(domains) = sysfs_cache_domains(n) {
        return domains;
    }
    vec![(0..n).collect()]
}

/// Parses a domain spec like `"0-3|4-7"` or `"0,2|1,3"`. Returns `None` if
/// nothing parses. Contexts `< n` not mentioned join a trailing domain.
fn parse_domain_spec(spec: &str, n: usize) -> Option<Vec<Vec<usize>>> {
    let mut domains: Vec<Vec<usize>> = Vec::new();
    let mut seen = vec![false; n.max(1)];
    for group in spec.split('|') {
        let mut dom = Vec::new();
        for part in group.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((lo, hi)) = part.split_once('-') {
                let lo = lo.trim().parse::<usize>().ok()?;
                let hi = hi.trim().parse::<usize>().ok()?;
                if lo > hi {
                    return None;
                }
                for c in lo..=hi {
                    dom.push(c);
                }
            } else {
                dom.push(part.parse::<usize>().ok()?);
            }
        }
        for &c in &dom {
            if c < seen.len() {
                seen[c] = true;
            }
        }
        if !dom.is_empty() {
            domains.push(dom);
        }
    }
    if domains.is_empty() {
        return None;
    }
    let leftover: Vec<usize> = (0..n).filter(|&c| !seen[c]).collect();
    if !leftover.is_empty() {
        domains.push(leftover);
    }
    Some(domains)
}

/// Reads the last-level-cache sharing lists from sysfs. Returns `None` if
/// sysfs is unreadable (containers often mask it) or describes nothing.
#[cfg(target_os = "linux")]
fn sysfs_cache_domains(n: usize) -> Option<Vec<Vec<usize>>> {
    let mut domain_of_ctx: Vec<Option<usize>> = vec![None; n];
    let mut domains: Vec<Vec<usize>> = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    for ctx in 0..n {
        if domain_of_ctx[ctx].is_some() {
            continue;
        }
        let base = format!("/sys/devices/system/cpu/cpu{ctx}/cache");
        // Highest index = outermost (last-level) cache.
        let mut best: Option<String> = None;
        for index in (0..8).rev() {
            let path = format!("{base}/index{index}/shared_cpu_list");
            if let Ok(list) = std::fs::read_to_string(&path) {
                best = Some(list.trim().to_string());
                break;
            }
        }
        let list = best?;
        let members = parse_cpu_list(&list)?;
        let dom = match keys.iter().position(|k| *k == list) {
            Some(i) => i,
            None => {
                keys.push(list);
                domains.push(Vec::new());
                domains.len() - 1
            }
        };
        for &m in &members {
            if m < n && domain_of_ctx[m].is_none() {
                domain_of_ctx[m] = Some(dom);
                domains[dom].push(m);
            }
        }
        if domain_of_ctx[ctx].is_none() {
            domain_of_ctx[ctx] = Some(dom);
            domains[dom].push(ctx);
        }
    }
    // Contexts sysfs didn't cover (e.g. GLS_HW_CONTEXTS > real cpus) join
    // the last domain.
    let stragglers: Vec<usize> = (0..n).filter(|&c| domain_of_ctx[c].is_none()).collect();
    if !stragglers.is_empty() {
        if domains.is_empty() {
            domains.push(stragglers);
        } else {
            let last = domains.len() - 1;
            domains[last].extend(stragglers);
        }
    }
    domains.retain(|d| !d.is_empty());
    if domains.is_empty() {
        None
    } else {
        Some(domains)
    }
}

/// Parses a kernel cpu list like `"0-3,8,10-11"`.
#[cfg(target_os = "linux")]
fn parse_cpu_list(list: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    for part in list.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            let lo = lo.trim().parse::<usize>().ok()?;
            let hi = hi.trim().parse::<usize>().ok()?;
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                out.push(c);
            }
        } else {
            out.push(part.parse::<usize>().ok()?);
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_contexts_is_positive_and_cached() {
        let a = hardware_contexts();
        let b = hardware_contexts();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    #[test]
    fn detect_is_positive() {
        assert!(detect() >= 1);
    }

    #[test]
    fn sweep_is_sorted_and_starts_at_one() {
        let s = sweep(1.25);
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_covers_oversubscription() {
        let s = sweep(1.5);
        let hw = hardware_contexts();
        assert!(*s.last().unwrap() >= hw.max(2));
    }

    #[test]
    fn cache_domains_cover_every_context() {
        let n = hardware_contexts();
        let domains = cache_domains();
        assert!(!domains.is_empty());
        let mut covered = vec![false; n];
        for dom in domains {
            for &c in dom {
                if c < n {
                    assert!(!covered[c], "context {c} in two domains");
                    covered[c] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "some context in no domain");
    }

    #[test]
    fn domain_of_is_consistent_with_cache_domains() {
        for (i, dom) in cache_domains().iter().enumerate() {
            for &c in dom {
                assert_eq!(domain_of(c), i);
            }
        }
    }

    #[test]
    fn parse_domain_spec_ranges_and_leftovers() {
        let d = parse_domain_spec("0-1|2", 4).unwrap();
        assert_eq!(d, vec![vec![0, 1], vec![2], vec![3]]);
        let d = parse_domain_spec("0,2|1,3", 4).unwrap();
        assert_eq!(d, vec![vec![0, 2], vec![1, 3]]);
        assert!(parse_domain_spec("garbage", 4).is_none());
        assert!(parse_domain_spec("", 4).is_none());
    }

    #[test]
    fn pin_to_roundtrip_or_unsupported() {
        if !pinning_supported() {
            assert!(!pin_to(0));
            return;
        }
        // Pinning to context 0 must succeed on any Linux box whose cpuset
        // includes cpu 0; if the cpuset excludes it, pin_to reports false
        // rather than lying.
        if pin_to(0) {
            assert_eq!(pinned_context(), Some(0));
            if let Some(ctx) = current_context() {
                assert_eq!(ctx, 0);
            }
            assert_eq!(current_domain(), domain_of(0));
        }
    }

    #[test]
    fn current_domain_is_stable() {
        let a = current_domain();
        let b = current_domain();
        assert_eq!(a, b);
        assert!(a < domain_count());
    }
}
