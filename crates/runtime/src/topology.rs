//! Hardware-context topology information.
//!
//! GLK's multiprogramming detector compares the number of runnable tasks to
//! the number of available hardware contexts (§3, "Measuring Contention").
//! This module provides the latter, with an environment-variable override so
//! experiments can emulate a smaller machine (e.g. the paper's 20- and
//! 48-context Xeons) without changing code.

use std::sync::OnceLock;

/// Environment variable that overrides the detected number of hardware
/// contexts. Useful for reproducing multiprogramming behaviour on machines
/// with a different core count than the paper's.
pub const HW_CONTEXTS_ENV: &str = "GLS_HW_CONTEXTS";

/// Returns the number of hardware contexts (logical CPUs) available to this
/// process.
///
/// Resolution order:
/// 1. the [`HW_CONTEXTS_ENV`] environment variable, if set and parseable;
/// 2. [`std::thread::available_parallelism`];
/// 3. a conservative fallback of `1`.
///
/// The value is computed once and cached for the lifetime of the process.
pub fn hardware_contexts() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(detect)
}

/// Detects the hardware context count without caching (used by tests).
pub fn detect() -> usize {
    if let Ok(v) = std::env::var(HW_CONTEXTS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A suggested thread-count sweep for contention experiments: 1, 2, 3, ... up
/// to `factor` times the number of hardware contexts, thinning out the large
/// counts to keep sweeps tractable.
///
/// The paper sweeps 1..60 threads on a 48-context machine (1.25x
/// oversubscription); `sweep(1.25)` reproduces that shape on any host.
pub fn sweep(factor: f64) -> Vec<usize> {
    let hw = hardware_contexts();
    let max = ((hw as f64) * factor).ceil() as usize;
    let max = max.max(2);
    let mut out = Vec::new();
    let mut t = 1usize;
    while t <= max {
        out.push(t);
        // Dense at the low end (where ticket/mcs crossovers live), sparser
        // towards the top.
        let step = if t < 4 {
            1
        } else if t < 16 {
            2
        } else {
            4
        };
        t += step;
    }
    if *out.last().unwrap() != max {
        out.push(max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_contexts_is_positive_and_cached() {
        let a = hardware_contexts();
        let b = hardware_contexts();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    #[test]
    fn detect_is_positive() {
        assert!(detect() >= 1);
    }

    #[test]
    fn sweep_is_sorted_and_starts_at_one() {
        let s = sweep(1.25);
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_covers_oversubscription() {
        let s = sweep(1.5);
        let hw = hardware_contexts();
        assert!(*s.last().unwrap() >= hw.max(2));
    }
}
