//! Per-thread lock-event flight recorder.
//!
//! A fixed-size ring buffer of the most recent lock events on each thread:
//! slow-path acquisitions, park/unpark, handoffs, GLK mode transitions,
//! blocking-backend migrations and deadlock candidates. Recording is a few
//! plain stores into thread-local memory (no atomics, no allocation, no
//! branches beyond the ring index mask), so the recorder can stay on in
//! production builds; the cost is only paid on paths that are already slow
//! (a thread about to park, a mode transition, a deadlock walk).
//!
//! The ring is drained on demand ([`drain`]) by the owning thread — most
//! importantly by the deadlock detector, which dumps the confirming
//! thread's trail the moment a cycle is confirmed, turning "we deadlocked"
//! into a replayable event sequence.

use std::cell::Cell;

use crate::cycles;

/// Number of events each thread's ring retains (a power of two so the
/// monotonic write index can be masked instead of wrapped by division).
pub const RING_CAPACITY: usize = 128;

/// What happened. The discriminants are stable (they appear in telemetry
/// dumps and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightEventKind {
    /// A lock acquisition left the fast path (parked or blocked in debug
    /// mode). `info` is unused.
    SlowPathAcquire = 1,
    /// The thread parked on an address. `info` is the park token.
    Park = 2,
    /// The thread was unparked. `info` is the unpark token it woke with.
    Unpark = 3,
    /// A release handed the lock directly to a waiter. `info` is 1 when the
    /// queue head was bypassed for a same-domain waiter, 0 otherwise.
    Handoff = 4,
    /// A GLK lock changed modes. `info` packs `from` in the high byte and
    /// `to` in the low byte of the low 16 bits.
    ModeTransition = 5,
    /// An Auto blocking backend migrated. `info` is 1 when the lock moved
    /// onto the shared parking lot, 0 when it moved back to per-lock state.
    BackendMigration = 6,
    /// The deadlock detector recorded a candidate cycle involving the
    /// address. `info` is the cycle length.
    DeadlockCandidate = 7,
}

impl FlightEventKind {
    /// Stable lower-case name (used by the human/JSON exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            FlightEventKind::SlowPathAcquire => "slow_path_acquire",
            FlightEventKind::Park => "park",
            FlightEventKind::Unpark => "unpark",
            FlightEventKind::Handoff => "handoff",
            FlightEventKind::ModeTransition => "mode_transition",
            FlightEventKind::BackendMigration => "backend_migration",
            FlightEventKind::DeadlockCandidate => "deadlock_candidate",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// What happened.
    pub kind: FlightEventKind,
    /// The lock (or parking) address the event concerns; 0 when unknown.
    pub addr: usize,
    /// Kind-specific payload (see [`FlightEventKind`]).
    pub info: u64,
    /// [`cycles::now`] at recording time.
    pub at: u64,
}

/// The per-thread ring. `head` counts every event ever recorded on this
/// thread; the slot for event `n` is `n % RING_CAPACITY`.
struct Ring {
    events: [Cell<Option<FlightEvent>>; RING_CAPACITY],
    head: Cell<u64>,
}

impl Ring {
    fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: Cell<Option<FlightEvent>> = Cell::new(None);
        Self {
            events: [EMPTY; RING_CAPACITY],
            head: Cell::new(0),
        }
    }
}

thread_local! {
    static RING: Ring = Ring::new();
}

/// Records one event into the calling thread's ring, overwriting the oldest
/// entry once the ring is full.
#[inline]
pub fn record(kind: FlightEventKind, addr: usize, info: u64) {
    RING.with(|ring| {
        let head = ring.head.get();
        ring.events[(head as usize) & (RING_CAPACITY - 1)].set(Some(FlightEvent {
            kind,
            addr,
            info,
            at: cycles::now(),
        }));
        ring.head.set(head + 1);
    });
}

/// Total number of events ever recorded on the calling thread (including
/// ones already overwritten or drained).
pub fn recorded() -> u64 {
    RING.with(|ring| ring.head.get())
}

/// Removes and returns the calling thread's retained events, oldest first
/// (at most [`RING_CAPACITY`] of them).
pub fn drain() -> Vec<FlightEvent> {
    RING.with(|ring| {
        let head = ring.head.get();
        let retained = (head as usize).min(RING_CAPACITY);
        let mut out = Vec::with_capacity(retained);
        for n in (head - retained as u64)..head {
            if let Some(event) = ring.events[(n as usize) & (RING_CAPACITY - 1)].take() {
                out.push(event);
            }
        }
        out
    })
}

/// Copies the calling thread's retained events, oldest first, without
/// clearing them.
pub fn snapshot() -> Vec<FlightEvent> {
    RING.with(|ring| {
        let head = ring.head.get();
        let retained = (head as usize).min(RING_CAPACITY);
        let mut out = Vec::with_capacity(retained);
        for n in (head - retained as u64)..head {
            let slot = &ring.events[(n as usize) & (RING_CAPACITY - 1)];
            if let Some(event) = slot.get() {
                out.push(event);
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test runs on its own thread in `cargo test`, but be defensive:
    // start from a drained ring so leftover events from a shared thread
    // cannot skew counts.

    #[test]
    fn records_and_drains_in_order() {
        let _ = drain();
        record(FlightEventKind::Park, 0x10, 7);
        record(FlightEventKind::Unpark, 0x10, 0);
        let events = drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, FlightEventKind::Park);
        assert_eq!(events[0].addr, 0x10);
        assert_eq!(events[0].info, 7);
        assert_eq!(events[1].kind, FlightEventKind::Unpark);
        assert!(events[0].at <= events[1].at);
        // Drained: nothing left.
        assert!(drain().is_empty());
    }

    #[test]
    fn ring_wraps_and_keeps_the_most_recent_events() {
        let _ = drain();
        let before = recorded();
        let extra = 10u64;
        for i in 0..(RING_CAPACITY as u64 + extra) {
            record(FlightEventKind::SlowPathAcquire, 0x20, i);
        }
        assert_eq!(recorded(), before + RING_CAPACITY as u64 + extra);
        let events = drain();
        assert_eq!(
            events.len(),
            RING_CAPACITY,
            "ring retains exactly its capacity"
        );
        // The oldest retained event is the first one that was not
        // overwritten: number `extra` of this batch.
        assert_eq!(events[0].info, extra);
        assert_eq!(
            events[RING_CAPACITY - 1].info,
            RING_CAPACITY as u64 + extra - 1
        );
    }

    #[test]
    fn snapshot_does_not_clear() {
        let _ = drain();
        record(FlightEventKind::Handoff, 0x30, 1);
        assert_eq!(snapshot().len(), 1);
        assert_eq!(snapshot().len(), 1);
        assert_eq!(drain().len(), 1);
    }

    #[test]
    fn rings_are_per_thread() {
        let _ = drain();
        record(FlightEventKind::Park, 0x40, 0);
        let other = std::thread::spawn(|| drain().len()).join().unwrap();
        assert_eq!(other, 0, "a fresh thread has an empty ring");
        assert_eq!(drain().len(), 1);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(FlightEventKind::Park.as_str(), "park");
        assert_eq!(FlightEventKind::ModeTransition.as_str(), "mode_transition");
        assert_eq!(
            FlightEventKind::DeadlockCandidate.as_str(),
            "deadlock_candidate"
        );
    }
}
