//! Per-lock statistics counters shared by GLK adaptation and the GLS profiler.
//!
//! The GLK structure (paper Fig. 3) carries two counters — `num_acquired`
//! (completed critical sections) and `queue_total` (accumulated queuing behind
//! the lock) — which together yield the average queuing used by the
//! adaptation policy. The GLS profiler (§4.3) additionally reports per-lock
//! lock-acquisition latency and critical-section duration.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-local statistics, updated by lock holders and read by the adaptation
/// logic and the profiler.
///
/// All fields are plain atomics with relaxed ordering: the values feed
/// heuristics, not correctness-critical decisions, exactly as in the paper.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Number of completed critical sections (paper: `num_acquired`).
    acquisitions: AtomicU64,
    /// Sum of queue-length samples (paper: `queue_total`).
    queue_total: AtomicU64,
    /// Number of queue-length samples contributing to `queue_total`.
    queue_samples: AtomicU64,
    /// Sum of lock-acquisition latencies in cycles (profiler).
    lock_latency_total: AtomicU64,
    /// Number of latency samples.
    lock_latency_samples: AtomicU64,
    /// Sum of critical-section durations in cycles (profiler).
    cs_latency_total: AtomicU64,
    /// Number of critical-section samples.
    cs_latency_samples: AtomicU64,
    /// Number of mode transitions performed (GLK diagnostics).
    transitions: AtomicU64,
}

impl LockStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed acquisition and returns the *new* total.
    #[inline]
    pub fn record_acquisition(&self) -> u64 {
        self.acquisitions.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Total completed acquisitions.
    #[inline]
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Records one sample of the queue length behind the lock.
    #[inline]
    pub fn record_queue_sample(&self, queued: u64) {
        self.queue_total.fetch_add(queued, Ordering::Relaxed);
        self.queue_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Average queue length over the samples recorded so far (`0.0` if none).
    pub fn average_queue(&self) -> f64 {
        let samples = self.queue_samples.load(Ordering::Relaxed);
        if samples == 0 {
            0.0
        } else {
            self.queue_total.load(Ordering::Relaxed) as f64 / samples as f64
        }
    }

    /// Number of queue samples recorded.
    pub fn queue_samples(&self) -> u64 {
        self.queue_samples.load(Ordering::Relaxed)
    }

    /// Sum of queue-length samples (the numerator of [`average_queue`]).
    ///
    /// [`average_queue`]: Self::average_queue
    pub fn queue_total(&self) -> u64 {
        self.queue_total.load(Ordering::Relaxed)
    }

    /// Resets the queue statistics (done after each adaptation decision so
    /// the next decision sees a fresh window).
    pub fn reset_queue_window(&self) {
        self.queue_total.store(0, Ordering::Relaxed);
        self.queue_samples.store(0, Ordering::Relaxed);
    }

    /// Records a lock-acquisition latency sample (profiler).
    #[inline]
    pub fn record_lock_latency(&self, cycles: u64) {
        self.lock_latency_total.fetch_add(cycles, Ordering::Relaxed);
        self.lock_latency_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of lock-acquisition latency samples, in cycles.
    pub fn lock_latency_total(&self) -> u64 {
        self.lock_latency_total.load(Ordering::Relaxed)
    }

    /// Number of lock-acquisition latency samples recorded.
    pub fn lock_latency_samples(&self) -> u64 {
        self.lock_latency_samples.load(Ordering::Relaxed)
    }

    /// Average lock-acquisition latency in cycles.
    pub fn average_lock_latency(&self) -> f64 {
        let n = self.lock_latency_samples.load(Ordering::Relaxed);
        if n == 0 {
            0.0
        } else {
            self.lock_latency_total.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Records a critical-section duration sample (profiler).
    #[inline]
    pub fn record_cs_latency(&self, cycles: u64) {
        self.cs_latency_total.fetch_add(cycles, Ordering::Relaxed);
        self.cs_latency_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Sum of critical-section duration samples, in cycles.
    pub fn cs_latency_total(&self) -> u64 {
        self.cs_latency_total.load(Ordering::Relaxed)
    }

    /// Number of critical-section samples recorded.
    pub fn cs_latency_samples(&self) -> u64 {
        self.cs_latency_samples.load(Ordering::Relaxed)
    }

    /// Average critical-section duration in cycles.
    pub fn average_cs_latency(&self) -> f64 {
        let n = self.cs_latency_samples.load(Ordering::Relaxed);
        if n == 0 {
            0.0
        } else {
            self.cs_latency_total.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Records one GLK mode transition.
    #[inline]
    pub fn record_transition(&self) {
        self.transitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of GLK mode transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.acquisitions.store(0, Ordering::Relaxed);
        self.queue_total.store(0, Ordering::Relaxed);
        self.queue_samples.store(0, Ordering::Relaxed);
        self.lock_latency_total.store(0, Ordering::Relaxed);
        self.lock_latency_samples.store(0, Ordering::Relaxed);
        self.cs_latency_total.store(0, Ordering::Relaxed);
        self.cs_latency_samples.store(0, Ordering::Relaxed);
        self.transitions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquisitions_count_up() {
        let s = LockStats::new();
        assert_eq!(s.record_acquisition(), 1);
        assert_eq!(s.record_acquisition(), 2);
        assert_eq!(s.acquisitions(), 2);
    }

    #[test]
    fn average_queue_over_samples() {
        let s = LockStats::new();
        assert_eq!(s.average_queue(), 0.0);
        s.record_queue_sample(2);
        s.record_queue_sample(4);
        assert_eq!(s.queue_samples(), 2);
        assert!((s.average_queue() - 3.0).abs() < 1e-9);
        s.reset_queue_window();
        assert_eq!(s.average_queue(), 0.0);
        assert_eq!(s.queue_samples(), 0);
    }

    #[test]
    fn latencies_average_correctly() {
        let s = LockStats::new();
        s.record_lock_latency(100);
        s.record_lock_latency(300);
        s.record_cs_latency(50);
        assert!((s.average_lock_latency() - 200.0).abs() < 1e-9);
        assert!((s.average_cs_latency() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn transitions_and_reset() {
        let s = LockStats::new();
        s.record_transition();
        s.record_transition();
        s.record_acquisition();
        assert_eq!(s.transitions(), 2);
        s.reset();
        assert_eq!(s.transitions(), 0);
        assert_eq!(s.acquisitions(), 0);
        assert_eq!(s.average_lock_latency(), 0.0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = std::sync::Arc::new(LockStats::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        s.record_acquisition();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.acquisitions(), 80_000);
    }
}
