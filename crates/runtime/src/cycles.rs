//! Cycle-granularity time measurement and busy waiting.
//!
//! The paper expresses critical-section durations, adaptation periods and
//! latency overheads in CPU cycles. On x86-64 we read the time-stamp counter
//! directly (`rdtsc`); on other targets we fall back to [`std::time::Instant`]
//! scaled by a calibrated cycles-per-nanosecond factor so that the same
//! numeric scale is preserved.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Returns the current value of the cycle counter.
///
/// The value is only meaningful as a difference between two calls on the same
/// thread (or across threads on platforms with synchronized TSCs, which is
/// every x86-64 machine the paper targets).
///
/// # Example
///
/// ```
/// let a = gls_runtime::cycles::now();
/// let b = gls_runtime::cycles::now();
/// assert!(b >= a);
/// ```
#[inline]
pub fn now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `_rdtsc` has no preconditions; it merely reads the TSC.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        fallback_now()
    }
}

/// Monotonic epoch used by the non-TSC fallback.
#[allow(dead_code)]
fn fallback_now() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    let nanos = epoch.elapsed().as_nanos() as u64;
    // Scale nanoseconds by the calibrated frequency so that "cycles" keep the
    // same order of magnitude as on x86-64.
    let cpns = cycles_per_nanosecond();
    (nanos as f64 * cpns) as u64
}

/// Returns the calibrated number of TSC cycles per nanosecond.
///
/// The calibration runs once per process: it measures how many cycles elapse
/// over a short wall-clock window. The result is cached.
pub fn cycles_per_nanosecond() -> f64 {
    static CPNS: OnceLock<f64> = OnceLock::new();
    *CPNS.get_or_init(calibrate)
}

fn calibrate() -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        let wall_start = Instant::now();
        let c_start = now();
        // Busy wait ~2ms of wall time; long enough to average out noise,
        // short enough not to be noticeable at process start.
        while wall_start.elapsed() < Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        let c_end = now();
        let nanos = wall_start.elapsed().as_nanos() as f64;
        let cycles = (c_end - c_start) as f64;
        let cpns = cycles / nanos;
        if cpns.is_finite() && cpns > 0.01 {
            cpns
        } else {
            1.0
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Treat one "cycle" as one nanosecond on platforms without a TSC.
        1.0
    }
}

/// Converts a duration to (approximate) cycles using the calibrated frequency.
pub fn duration_to_cycles(d: Duration) -> u64 {
    (d.as_nanos() as f64 * cycles_per_nanosecond()) as u64
}

/// Converts a cycle count to an (approximate) duration.
pub fn cycles_to_duration(cycles: u64) -> Duration {
    let nanos = cycles as f64 / cycles_per_nanosecond();
    Duration::from_nanos(nanos as u64)
}

/// Busy-waits for approximately `cycles` CPU cycles.
///
/// This is the paper's "critical section of N cycles" primitive: the calling
/// thread stays on its hardware context and spins, pausing the pipeline with
/// [`std::hint::spin_loop`] between polls of the cycle counter.
///
/// A `cycles` value of zero returns immediately (the paper's "empty critical
/// section").
#[inline]
pub fn spin_for(cycles: u64) {
    if cycles == 0 {
        return;
    }
    let start = now();
    // For very short waits, polling the TSC in a tight loop is accurate
    // enough; no need for fancier pacing.
    while now().wrapping_sub(start) < cycles {
        std::hint::spin_loop();
    }
}

/// Measures the number of cycles taken by `f` and returns `(result, cycles)`.
///
/// # Example
///
/// ```
/// let (sum, cycles) = gls_runtime::cycles::measure(|| (0..100u64).sum::<u64>());
/// assert_eq!(sum, 4950);
/// let _ = cycles;
/// ```
#[inline]
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = now();
    let out = f();
    let end = now();
    (out, end.wrapping_sub(start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic_enough() {
        let a = now();
        let b = now();
        let c = now();
        assert!(b >= a);
        assert!(c >= b);
    }

    #[test]
    fn spin_for_zero_is_noop() {
        let (_, cycles) = measure(|| spin_for(0));
        // An empty spin should be far below a millisecond worth of cycles.
        assert!(cycles < duration_to_cycles(Duration::from_millis(1)).max(1_000_000));
    }

    #[test]
    fn spin_for_waits_at_least_requested() {
        let want = 10_000;
        let (_, took) = measure(|| spin_for(want));
        assert!(
            took >= want,
            "spun for {took} cycles, wanted at least {want}"
        );
    }

    #[test]
    fn calibration_is_positive_and_cached() {
        let a = cycles_per_nanosecond();
        let b = cycles_per_nanosecond();
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn duration_cycle_roundtrip_is_close() {
        let d = Duration::from_micros(500);
        let c = duration_to_cycles(d);
        let back = cycles_to_duration(c);
        let diff = back.as_nanos().abs_diff(d.as_nanos());
        assert!(diff < 50_000, "round trip drifted by {diff} ns");
    }

    #[test]
    fn measure_returns_value() {
        let (v, c) = measure(|| 42);
        assert_eq!(v, 42);
        let _ = c;
    }
}
