//! Exponential moving average used to smooth per-lock contention statistics.
//!
//! GLK keeps "the exponential moving average of the statistics in order to
//! hide possible short-term workload fluctuations" (§3). The adaptation
//! decision (ticket ↔ mcs) is made on the smoothed queue length, not on the
//! raw per-period sample.

/// An exponential moving average over `f64` samples.
///
/// The smoothing factor `alpha` is the weight of the newest sample:
/// `ema_new = alpha * sample + (1 - alpha) * ema_old`. Before the first
/// sample is observed the average reports `0.0` and [`Ema::is_empty`] is true.
///
/// # Example
///
/// ```
/// use gls_runtime::Ema;
///
/// let mut ema = Ema::new(0.5);
/// ema.record(4.0);
/// ema.record(0.0);
/// assert!((ema.value() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ema {
    alpha: f64,
    value: f64,
    samples: u64,
}

impl Ema {
    /// Creates a new average with the given smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0.0, 1.0]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EMA smoothing factor must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            value: 0.0,
            samples: 0,
        }
    }

    /// The smoothing factor this average was created with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records one sample.
    ///
    /// The first sample initializes the average directly (no bias towards the
    /// zero starting value).
    pub fn record(&mut self, sample: f64) {
        if self.samples == 0 {
            self.value = sample;
        } else {
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value;
        }
        self.samples += 1;
    }

    /// Current value of the average (`0.0` before any sample).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// True if no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Clears the average back to its initial state.
    pub fn reset(&mut self) {
        self.value = 0.0;
        self.samples = 0;
    }
}

impl Default for Ema {
    /// An EMA with the smoothing factor used by the GLK defaults (0.5).
    fn default() -> Self {
        Self::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn starts_empty() {
        let ema = Ema::new(0.3);
        assert!(ema.is_empty());
        assert_eq!(ema.value(), 0.0);
        assert_eq!(ema.samples(), 0);
    }

    #[test]
    fn first_sample_initializes_directly() {
        let mut ema = Ema::new(0.1);
        ema.record(10.0);
        assert_eq!(ema.value(), 10.0);
    }

    #[test]
    fn alpha_one_tracks_last_sample() {
        let mut ema = Ema::new(1.0);
        for s in [3.0, 7.0, 1.0, 9.0] {
            ema.record(s);
            assert_eq!(ema.value(), s);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut ema = Ema::new(0.5);
        ema.record(5.0);
        ema.reset();
        assert!(ema.is_empty());
        assert_eq!(ema.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn zero_alpha_rejected() {
        let _ = Ema::new(0.0);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn large_alpha_rejected() {
        let _ = Ema::new(1.5);
    }

    #[test]
    fn converges_towards_constant_input() {
        let mut ema = Ema::new(0.25);
        ema.record(0.0);
        for _ in 0..200 {
            ema.record(8.0);
        }
        assert!((ema.value() - 8.0).abs() < 1e-6);
    }

    proptest! {
        /// The EMA always stays within the [min, max] envelope of its inputs.
        #[test]
        fn stays_within_input_envelope(
            alpha in 0.01f64..=1.0,
            samples in proptest::collection::vec(-1e6f64..1e6, 1..64)
        ) {
            let mut ema = Ema::new(alpha);
            for &s in &samples {
                ema.record(s);
            }
            let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(ema.value() >= min - 1e-9);
            prop_assert!(ema.value() <= max + 1e-9);
        }

        /// Recording the same value repeatedly keeps the average at that value.
        #[test]
        fn constant_input_is_fixed_point(alpha in 0.01f64..=1.0, v in -1e6f64..1e6, n in 1usize..50) {
            let mut ema = Ema::new(alpha);
            for _ in 0..n {
                ema.record(v);
            }
            prop_assert!((ema.value() - v).abs() < 1e-6);
        }
    }
}
