//! Small, dense, reusable thread identifiers.
//!
//! The GLS debug mode records "which thread owns this lock" and "which lock
//! this thread is waiting on" in fixed-size arrays indexed by thread id, so
//! ids must be small integers rather than the opaque [`std::thread::ThreadId`].
//! Ids are assigned on first use, cached in a thread-local, and recycled when
//! the thread exits so that long-running processes with thread churn do not
//! exhaust the id space.

// Deadlock-detector bookkeeping stays off the gls_sync facade so the
// model explorer never schedules around it (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::cell::Cell;
use std::collections::BinaryHeap;
use std::sync::Mutex;

/// Maximum number of concurrently-live thread ids supported by the debug and
/// deadlock-detection machinery.
///
/// The paper's platforms have at most 48 hardware contexts; 4096 leaves ample
/// room for heavily oversubscribed configurations.
pub const MAX_THREADS: usize = 4096;

/// A dense per-thread identifier in `0..MAX_THREADS`.
///
/// # Example
///
/// ```
/// use gls_runtime::ThreadId;
///
/// let me = ThreadId::current();
/// assert_eq!(me, ThreadId::current());
/// assert!(me.as_usize() < gls_runtime::thread_id::MAX_THREADS);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Returns the identifier of the calling thread, assigning one if needed.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_THREADS`] threads are alive simultaneously.
    pub fn current() -> Self {
        CURRENT.with(|slot| {
            if let Some(id) = slot.id.get() {
                return id;
            }
            let id = allocate();
            slot.id.set(Some(id));
            id
        })
    }

    /// The id as an array index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The id as a raw `u32`.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Builds a `ThreadId` from a raw index.
    ///
    /// Intended for tests and for decoding ids stored in atomics; no liveness
    /// check is performed.
    pub fn from_raw(raw: u32) -> Self {
        ThreadId(raw)
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

struct Registry {
    /// Min-heap of recycled ids (stored negated via `Reverse` would be nicer,
    /// but a plain max-heap of negatives keeps it dependency-free).
    free: BinaryHeap<std::cmp::Reverse<u32>>,
    next: u32,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    free: BinaryHeap::new(),
    next: 0,
});

fn allocate() -> ThreadId {
    let mut reg = REGISTRY.lock().expect("thread-id registry poisoned");
    if let Some(std::cmp::Reverse(id)) = reg.free.pop() {
        return ThreadId(id);
    }
    let id = reg.next;
    assert!(
        (id as usize) < MAX_THREADS,
        "too many concurrently live threads for the GLS debug machinery \
         (limit: {MAX_THREADS})"
    );
    reg.next += 1;
    ThreadId(id)
}

fn release(id: ThreadId) {
    if let Ok(mut reg) = REGISTRY.lock() {
        reg.free.push(std::cmp::Reverse(id.0));
    }
}

struct Slot {
    id: Cell<Option<ThreadId>>,
}

impl Drop for Slot {
    fn drop(&mut self) {
        if let Some(id) = self.id.get() {
            release(id);
        }
    }
}

thread_local! {
    static CURRENT: Slot = const { Slot { id: Cell::new(None) } };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_is_stable_within_a_thread() {
        let a = ThreadId::current();
        let b = ThreadId::current();
        assert_eq!(a, b);
    }

    #[test]
    fn different_threads_get_different_ids() {
        let mine = ThreadId::current();
        let theirs = std::thread::spawn(ThreadId::current).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn ids_are_recycled_after_thread_exit() {
        // Spawn sequentially many more threads than MAX_THREADS; without
        // recycling this would panic.
        for _ in 0..MAX_THREADS + 64 {
            std::thread::spawn(|| {
                let _ = ThreadId::current();
            })
            .join()
            .unwrap();
        }
    }

    #[test]
    fn ids_stay_dense_under_concurrency() {
        let handles: Vec<_> = (0..32)
            .map(|_| std::thread::spawn(|| ThreadId::current().as_usize()))
            .collect();
        for h in handles {
            let id = h.join().unwrap();
            assert!(id < MAX_THREADS);
        }
    }

    #[test]
    fn display_is_compact() {
        let id = ThreadId::from_raw(7);
        assert_eq!(id.to_string(), "T7");
    }
}
