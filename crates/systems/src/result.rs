//! Common result shape for the system experiments.

use std::time::Duration;

/// Outcome of running one workload configuration on one simulated system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemResult {
    /// System name (e.g. `"HamsterDB"`).
    pub system: &'static str,
    /// Configuration name (e.g. `"RD"`, `"CACHE"`, `"GET"`, `"32 CON"`).
    pub config: String,
    /// Lock provider label (e.g. `"MUTEX"`, `"GLK"`).
    pub lock: String,
    /// Completed operations.
    pub operations: u64,
    /// Wall-clock time of the measurement.
    pub elapsed: Duration,
}

impl SystemResult {
    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.operations as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Throughput of `self` normalized to `baseline` (the "normalized to
    /// MUTEX" presentation of Figures 13–15).
    pub fn normalized_to(&self, baseline: &SystemResult) -> f64 {
        let base = baseline.ops_per_sec();
        if base == 0.0 {
            0.0
        } else {
            self.ops_per_sec() / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(ops: u64, ms: u64) -> SystemResult {
        SystemResult {
            system: "Test",
            config: "CFG".into(),
            lock: "MUTEX".into(),
            operations: ops,
            elapsed: Duration::from_millis(ms),
        }
    }

    #[test]
    fn throughput_is_ops_over_time() {
        let r = result(5_000, 500);
        assert!((r.ops_per_sec() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn normalization_is_relative_throughput() {
        let base = result(1_000, 1_000);
        let faster = result(1_300, 1_000);
        assert!((faster.normalized_to(&base) - 1.3).abs() < 1e-9);
        assert_eq!(faster.normalized_to(&result(0, 1_000)), 0.0);
    }

    #[test]
    fn zero_duration_reports_zero_throughput() {
        let r = result(100, 0);
        assert_eq!(r.ops_per_sec(), 0.0);
    }
}
