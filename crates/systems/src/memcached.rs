//! Memcached-like in-memory cache, including the two latent locking bugs and
//! the GLS re-implementations of §5.1.
//!
//! The locking architecture kept from Memcached 1.4.x:
//!
//! * a hash table of items protected by an array of **item locks** (one per
//!   group of buckets) — individually lightly contended;
//! * a global **stats lock** touched by every request — the contended one;
//! * a global **slabs lock** (allocation) and **LRU lock** taken on stores;
//! * a **slabs-rebalance lock** used by a background maintenance path;
//! * a configurable number of worker threads serving a Twitter-like
//!   geT/set mix over zipfian-popular keys.
//!
//! With `legacy_bugs` enabled the constructor reproduces the two §5.1 issues:
//! (1) the statistics path touches the `stats_lock` before it is ever
//! initialized (here: an unlock of a never-locked address), and (2) the slab
//! maintenance path releases the `slabs_rebalance_lock` without having
//! acquired it. Both are invisible with plain mutexes but are flagged by the
//! GLS debug mode.

// The simulated system busy-loops and sleeps stand in for real I/O and
// compute latencies; wall-clock pacing is the point (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gls_workloads::Zipfian;

use crate::lock_provider::{AppCondvar, AppMutex, LockProvider};
use crate::result::SystemResult;

/// Number of item-lock groups (Memcached uses a power of two depending on
/// thread count; 64 keeps per-lock contention low like the real system).
const ITEM_LOCKS: usize = 64;
/// Number of hash-table buckets.
const BUCKETS: usize = 4096;

/// Configuration of the Memcached workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemcachedConfig {
    /// Worker threads (the paper uses 8).
    pub threads: usize,
    /// Percentage of GET operations (10 = "SET", 50 = "SET/GET", 90 = "GET").
    pub get_percent: u32,
    /// Number of distinct keys.
    pub keys: u64,
    /// Zipfian skew of key popularity (Twitter-like traffic is skewed).
    pub zipf_alpha: f64,
    /// Measurement duration.
    pub duration: Duration,
    /// Whether to reproduce the two latent locking bugs of §5.1.
    pub legacy_bugs: bool,
}

impl Default for MemcachedConfig {
    fn default() -> Self {
        Self {
            threads: 8,
            get_percent: 90,
            keys: 100_000,
            zipf_alpha: 0.9,
            duration: Duration::from_millis(300),
            legacy_bugs: false,
        }
    }
}

impl MemcachedConfig {
    /// The paper's three workload mixes: (label, GET percentage).
    pub fn paper_configs() -> [(&'static str, u32); 3] {
        [("SET", 10), ("SET/GET", 50), ("GET", 90)]
    }

    /// Enables or disables the two seeded legacy bugs.
    pub fn with_legacy_bugs(mut self, enabled: bool) -> Self {
        self.legacy_bugs = enabled;
        self
    }
}

/// Aggregate server statistics (protected by the global stats lock).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Completed GET requests.
    pub gets: u64,
    /// GETs that found the key.
    pub hits: u64,
    /// Completed SET requests.
    pub sets: u64,
    /// Bytes currently stored (approximate).
    pub bytes: u64,
}

/// The simulated Memcached server.
pub struct Memcached {
    item_locks: Vec<AppMutex>,
    buckets: Vec<UnsafeCell<HashMap<u64, Vec<u8>>>>,
    stats_lock: AppMutex,
    stats: UnsafeCell<Stats>,
    slabs_lock: AppMutex,
    lru_lock: AppMutex,
    slabs_rebalance_lock: AppMutex,
    /// Signal flag for the background rebalancer, protected by
    /// `slabs_rebalance_lock` (memcached's `slab_rebalance_signal`).
    rebalance_requested: UnsafeCell<bool>,
    /// The rebalancer's condition variable (memcached's
    /// `slab_rebalance_cond`), paired with `slabs_rebalance_lock`.
    rebalance_cond: AppCondvar,
    /// Completed background rebalance steps.
    rebalances: AtomicU64,
    allocated: AtomicU64,
}

// SAFETY: buckets are only accessed under their item lock; `stats` only under
// the stats lock.
unsafe impl Sync for Memcached {}
unsafe impl Send for Memcached {}

impl std::fmt::Debug for Memcached {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memcached")
            .field("item_locks", &self.item_locks.len())
            .field("buckets", &self.buckets.len())
            .finish_non_exhaustive()
    }
}

impl Memcached {
    /// Creates a server whose locks come from `provider`.
    pub fn new(provider: &LockProvider, config: &MemcachedConfig) -> Self {
        let server = Self {
            item_locks: (0..ITEM_LOCKS).map(|_| provider.new_mutex()).collect(),
            buckets: (0..BUCKETS)
                .map(|_| UnsafeCell::new(HashMap::new()))
                .collect(),
            // Every request touches the stats lock: the known-hot one.
            stats_lock: provider.new_contended_mutex(),
            stats: UnsafeCell::new(Stats::default()),
            slabs_lock: provider.new_mutex(),
            lru_lock: provider.new_mutex(),
            slabs_rebalance_lock: provider.new_mutex(),
            rebalance_requested: UnsafeCell::new(false),
            rebalance_cond: provider.new_condvar(),
            rebalances: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
        };
        if config.legacy_bugs {
            server.startup_with_legacy_bugs();
        } else {
            server.startup();
        }
        server
    }

    /// Correct startup: initialize the rebalance path by taking and releasing
    /// its lock once.
    fn startup(&self) {
        self.slabs_rebalance_lock.lock();
        self.slabs_rebalance_lock.unlock();
    }

    /// Startup reproducing the two §5.1 issues. They are only *observable*
    /// when the locks are GLS-backed (the debug mode reports them); with
    /// plain mutexes they are silently tolerated, exactly as in the paper.
    fn startup_with_legacy_bugs(&self) {
        // Bug 1: the stats path releases `stats_lock` before the lock was
        // ever initialized/acquired (memcached/thread.c:662 + assoc.c:72).
        self.stats_lock.unlock();
        // Legitimate use of the rebalance lock first...
        self.slabs_rebalance_lock.lock();
        self.slabs_rebalance_lock.unlock();
        // Bug 2: ...and then the slab maintenance path unlocks
        // `slabs_rebalance_lock` without having acquired it
        // (memcached/slabs.c:836 + assoc.c:249).
        self.slabs_rebalance_lock.unlock();
    }

    fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % BUCKETS
    }

    fn item_lock_of(&self, bucket: usize) -> &AppMutex {
        &self.item_locks[bucket % ITEM_LOCKS]
    }

    /// GET: item lock for the bucket, then global stats update.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let bucket = self.bucket_of(key);
        let value = self.item_lock_of(bucket).with(|| {
            // SAFETY: the bucket's item lock is held.
            unsafe { (*self.buckets[bucket].get()).get(&key).cloned() }
        });
        self.stats_lock.with(|| {
            // SAFETY: stats lock held.
            let stats = unsafe { &mut *self.stats.get() };
            stats.gets += 1;
            if value.is_some() {
                stats.hits += 1;
            }
        });
        value
    }

    /// SET: slab allocation, item-lock insert, LRU update, stats update.
    pub fn set(&self, key: u64, value: Vec<u8>) {
        let len = value.len() as u64;
        // Slab allocation under the global slabs lock.
        self.slabs_lock.with(|| {
            self.allocated.fetch_add(len, Ordering::Relaxed);
        });
        let bucket = self.bucket_of(key);
        self.item_lock_of(bucket).with(|| {
            // SAFETY: the bucket's item lock is held.
            unsafe {
                (*self.buckets[bucket].get()).insert(key, value);
            }
        });
        // LRU bookkeeping under the global LRU lock.
        self.lru_lock.with(|| {
            gls_runtime::spin_cycles(50);
        });
        self.stats_lock.with(|| {
            // SAFETY: stats lock held.
            let stats = unsafe { &mut *self.stats.get() };
            stats.sets += 1;
            stats.bytes += len;
        });
    }

    /// Background slab-rebalance step (the foreground variant used before
    /// the condvar-driven maintenance thread existed; kept for direct
    /// benchmarking of the rebalance lock).
    pub fn rebalance(&self) {
        self.slabs_rebalance_lock.with(|| {
            gls_runtime::spin_cycles(200);
        });
    }

    /// Asks the background maintenance thread to run a rebalance step:
    /// raise the signal flag under the rebalance lock, then notify its
    /// condvar — the shape of memcached's `slabs_reassign` →
    /// `slab_rebalance_cond` handoff.
    pub fn request_rebalance(&self) {
        self.slabs_rebalance_lock.with(|| {
            // SAFETY: the rebalance lock is held.
            unsafe { *self.rebalance_requested.get() = true };
        });
        self.rebalance_cond.notify_one();
    }

    /// The background maintenance loop: wait (with a timeout, so a stop
    /// request can never be missed) for a rebalance signal, consume it,
    /// and run the step. Runs until `stop` is raised; workers drive it
    /// through [`Memcached::request_rebalance`].
    pub fn rebalance_worker(&self, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            self.slabs_rebalance_lock.lock();
            // SAFETY (here and below): the rebalance lock is held.
            while !unsafe { *self.rebalance_requested.get() } && !stop.load(Ordering::Relaxed) {
                self.rebalance_cond
                    .wait_timeout(&self.slabs_rebalance_lock, Duration::from_millis(20));
            }
            let signaled = unsafe {
                let requested = &mut *self.rebalance_requested.get();
                std::mem::take(requested)
            };
            if signaled {
                // The actual rebalance work, still under the rebalance lock
                // like `slab_rebalance_move`.
                gls_runtime::spin_cycles(200);
            }
            self.slabs_rebalance_lock.unlock();
            if signaled {
                self.rebalances.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Completed background rebalance steps.
    pub fn rebalances(&self) -> u64 {
        self.rebalances.load(Ordering::Relaxed)
    }

    /// A snapshot of the server statistics.
    pub fn stats(&self) -> Stats {
        self.stats_lock.with(|| {
            // SAFETY: stats lock held.
            unsafe { *self.stats.get() }
        })
    }

    /// Bytes handed out by the slab allocator.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }
}

/// Runs the Twitter-like workload against a fresh server and reports
/// throughput (Figure 13 / the Memcached columns of Figures 14–15).
pub fn run(provider: &LockProvider, config: &MemcachedConfig) -> SystemResult {
    let server = Arc::new(Memcached::new(provider, config));
    // Warm the cache with every key so GET hit rates are realistic.
    for key in 0..config.keys.min(20_000) {
        server.set(key, vec![0u8; 64]);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let zipf = Arc::new(Zipfian::new(config.keys as usize, config.zipf_alpha));
    let start = Instant::now();
    // Background maintenance: a dedicated thread sleeps on the rebalance
    // condvar and runs the steps the workers request (memcached's
    // slab-rebalance thread).
    let rebalancer = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || server.rebalance_worker(&stop))
    };
    let handles: Vec<_> = (0..config.threads)
        .map(|t| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let zipf = Arc::clone(&zipf);
            let get_percent = config.get_percent;
            std::thread::spawn(move || {
                // Count this worker towards the process-wide runnable-task
                // count so GLK's multiprogramming detector can see it.
                let _runnable = gls_runtime::SystemLoadMonitor::global().runnable_guard();
                let mut rng = StdRng::seed_from_u64(0x3C + t as u64);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = zipf.sample(&mut rng) as u64;
                    if rng.gen_range(0u32..100) < get_percent {
                        let _ = server.get(key);
                    } else {
                        server.set(key, vec![0u8; 64]);
                    }
                    if ops.is_multiple_of(1024) {
                        server.request_rebalance();
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let operations = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // The rebalancer re-checks `stop` at least every wait-timeout tick.
    rebalancer.join().unwrap();

    let label = match config.get_percent {
        p if p <= 25 => "SET",
        p if p <= 75 => "SET/GET",
        _ => "GET",
    };
    SystemResult {
        system: "Memcached",
        config: label.to_string(),
        lock: provider.label(),
        operations,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gls::{GlsConfig, GlsService};
    use gls_locks::LockKind;

    #[test]
    fn get_set_roundtrip_and_stats() {
        let server = Memcached::new(&LockProvider::mutex(), &MemcachedConfig::default());
        assert_eq!(server.get(1), None);
        server.set(1, vec![1, 2, 3]);
        assert_eq!(server.get(1), Some(vec![1, 2, 3]));
        let stats = server.stats();
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.sets, 1);
        assert_eq!(stats.bytes, 3);
        assert_eq!(server.allocated_bytes(), 3);
    }

    #[test]
    fn concurrent_workers_never_lose_their_own_keys() {
        let server = Arc::new(Memcached::new(
            &LockProvider::Direct(LockKind::Ticket),
            &MemcachedConfig::default(),
        ));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let key = t as u64 * 1_000_000 + i;
                        server.set(key, key.to_le_bytes().to_vec());
                        assert_eq!(server.get(key), Some(key.to_le_bytes().to_vec()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.sets, 8_000);
        assert_eq!(stats.hits, 8_000);
    }

    #[test]
    fn workload_runs_for_all_figure13_providers() {
        let config = MemcachedConfig {
            threads: 4,
            keys: 5_000,
            duration: Duration::from_millis(60),
            ..Default::default()
        };
        for provider in [
            LockProvider::mutex(),
            LockProvider::glk(),
            LockProvider::gls(),
            LockProvider::gls_specialized(),
        ] {
            let result = run(&provider, &config);
            assert!(result.operations > 0, "{}", provider.label());
            assert_eq!(result.system, "Memcached");
            assert_eq!(result.config, "GET");
        }
    }

    #[test]
    fn legacy_bugs_are_detected_by_gls_debug_mode() {
        // Build the server on a GLS service in debug mode; the two seeded
        // §5.1 bugs must show up in the issue log with the same categories
        // the paper reports (uninitialized lock, unlocking an already free
        // lock).
        let service = Arc::new(GlsService::with_config(GlsConfig::debug()));
        let provider = LockProvider::Gls(Arc::clone(&service));
        let _server = Memcached::new(
            &provider,
            &MemcachedConfig::default().with_legacy_bugs(true),
        );
        let categories: Vec<_> = service.issues().iter().map(|i| i.category()).collect();
        assert!(
            categories.contains(&"uninitialized-lock"),
            "expected the stats_lock bug, got {categories:?}"
        );
        assert!(
            categories.contains(&"release-free-lock"),
            "expected the slabs_rebalance_lock bug, got {categories:?}"
        );
    }

    #[test]
    fn correct_startup_reports_no_issues() {
        let service = Arc::new(GlsService::with_config(GlsConfig::debug()));
        let provider = LockProvider::Gls(Arc::clone(&service));
        let server = Memcached::new(&provider, &MemcachedConfig::default());
        server.set(1, vec![9]);
        assert_eq!(server.get(1), Some(vec![9]));
        assert!(
            service.issues().is_empty(),
            "bug-free startup must not trigger the debug mode: {:?}",
            service.issues()
        );
    }

    #[test]
    fn background_rebalancer_serves_requests() {
        let server = Arc::new(Memcached::new(
            &LockProvider::mutex(),
            &MemcachedConfig::default(),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || server.rebalance_worker(&stop))
        };
        for _ in 0..10 {
            server.request_rebalance();
            std::thread::sleep(Duration::from_millis(5));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.rebalances() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        assert!(
            server.rebalances() > 0,
            "the condvar-driven maintenance thread must have run"
        );
    }

    #[test]
    fn condvar_maintenance_is_clean_under_debug_mode() {
        // The rebalancer sleeps on a condvar while workers hammer GLS
        // locks in debug mode: the sleeping waiter must not surface as a
        // deadlock (phantom or otherwise), and the ownership churn of
        // wait's unlock/relock must be bug-free.
        let service = Arc::new(GlsService::with_config(
            gls::GlsConfig::default()
                .with_mode(gls::GlsMode::Debug)
                .with_deadlock_check_after(Duration::from_millis(50)),
        ));
        let provider = LockProvider::Gls(Arc::clone(&service));
        let config = MemcachedConfig {
            threads: 4,
            keys: 2_000,
            duration: Duration::from_millis(150),
            ..Default::default()
        };
        let result = run(&provider, &config);
        assert!(result.operations > 0);
        assert!(
            service.issues().is_empty(),
            "condvar-driven maintenance must not trip the debug mode: {:?}",
            service.issues()
        );
    }

    #[test]
    fn paper_configs_cover_three_mixes() {
        let configs = MemcachedConfig::paper_configs();
        assert_eq!(configs, [("SET", 10), ("SET/GET", 50), ("GET", 90)]);
    }
}
