//! The pluggable locking facade used by every simulated system.
//!
//! In the paper, "modifying locks is as simple as overloading the pthread
//! mutex functions with our own lock implementations" (§5). [`LockProvider`]
//! plays that role here: a system asks the provider for its mutexes and
//! reader-writer locks, and the experiment harness decides whether those are
//! MUTEX, TICKET, MCS, GLK, or GLS-mediated locks — without the system code
//! changing.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use std::time::Duration;

use gls::glk::{GlkConfig, GlkLock, MonitorHandle};
use gls::{GlsCondvar, GlsConfig, GlsService, WaitOutcome};
use gls_locks::{
    ClhLock, LockKind, McsLock, MutexLock, RawLock, RawTryLock, RwTtasLock, TasLock, TicketLock,
    TtasLock,
};

/// Distinct synthetic addresses handed to GLS-backed locks.
static NEXT_ADDR: AtomicUsize = AtomicUsize::new(0x4000_0000);

fn fresh_addr() -> usize {
    NEXT_ADDR.fetch_add(64, Ordering::Relaxed)
}

/// Chooses which lock implementation the simulated systems receive.
#[derive(Clone)]
pub enum LockProvider {
    /// A concrete algorithm used directly (the "overload pthread mutex with
    /// algorithm X" configuration of Figures 14/15). `LockKind::Mutex` is the
    /// systems' default/baseline.
    Direct(LockKind),
    /// GLK used directly with a custom configuration and load monitor.
    Glk {
        /// GLK configuration for every created lock.
        config: GlkConfig,
        /// System-load monitor consulted for multiprogramming.
        monitor: MonitorHandle,
    },
    /// Locks obtained through a shared GLS service using its default
    /// algorithm (the "GLS" rewrite of Memcached in Figure 13).
    Gls(Arc<GlsService>),
    /// Locks obtained through a shared GLS service with an explicitly chosen
    /// algorithm per lock *purpose* (the "GLS SPECIALIZED" configuration):
    /// `contended_kind` for locks the caller marks as hot, `default_kind`
    /// for the rest.
    GlsSpecialized {
        /// The shared service.
        service: Arc<GlsService>,
        /// Algorithm for hot (contended) locks.
        contended_kind: LockKind,
        /// Algorithm for everything else.
        default_kind: LockKind,
    },
}

impl fmt::Debug for LockProvider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LockProvider({})", self.label())
    }
}

impl LockProvider {
    /// Baseline provider: the systems' default blocking mutex.
    pub fn mutex() -> Self {
        LockProvider::Direct(LockKind::Mutex)
    }

    /// GLK provider with paper-default settings and the global load monitor.
    pub fn glk() -> Self {
        LockProvider::Glk {
            config: GlkConfig::default(),
            monitor: MonitorHandle::Global,
        }
    }

    /// GLS provider with a fresh service using the default (GLK) algorithm.
    pub fn gls() -> Self {
        LockProvider::Gls(Arc::new(GlsService::with_config(GlsConfig::default())))
    }

    /// GLS provider whose service runs in profiler mode, so every mutex and
    /// rwlock the system creates shows up in
    /// [`GlsService::profile_report`] with queue and latency statistics.
    pub fn gls_profiling() -> Self {
        LockProvider::Gls(Arc::new(GlsService::with_config(GlsConfig::profile())))
    }

    /// GLS provider with explicit per-purpose algorithms (MCS for contended
    /// locks, TICKET elsewhere — the choice §5.1 arrives at for Memcached).
    pub fn gls_specialized() -> Self {
        LockProvider::GlsSpecialized {
            service: Arc::new(GlsService::with_config(GlsConfig::default())),
            contended_kind: LockKind::Mcs,
            default_kind: LockKind::Ticket,
        }
    }

    /// Display label used in experiment output.
    pub fn label(&self) -> String {
        match self {
            LockProvider::Direct(kind) => kind.name().to_string(),
            LockProvider::Glk { .. } => "GLK".to_string(),
            LockProvider::Gls(_) => "GLS".to_string(),
            LockProvider::GlsSpecialized { .. } => "GLS SPECIALIZED".to_string(),
        }
    }

    /// Creates a mutex for ordinary (not known-hot) use.
    pub fn new_mutex(&self) -> AppMutex {
        self.make_mutex(false)
    }

    /// Creates a mutex for a lock the system knows is highly contended
    /// (e.g. a global stats lock). Only the `GlsSpecialized` provider treats
    /// this differently.
    pub fn new_contended_mutex(&self) -> AppMutex {
        self.make_mutex(true)
    }

    fn make_mutex(&self, contended: bool) -> AppMutex {
        let inner = match self {
            LockProvider::Direct(kind) => MutexImpl::Raw(make_raw(*kind)),
            LockProvider::Glk { config, monitor } => MutexImpl::Raw(Arc::new(GlkRaw(
                GlkLock::with_config_and_monitor(config.clone(), monitor.clone()),
            ))),
            LockProvider::Gls(service) => MutexImpl::Gls {
                service: Arc::clone(service),
                addr: fresh_addr(),
                kind: None,
            },
            LockProvider::GlsSpecialized {
                service,
                contended_kind,
                default_kind,
            } => MutexImpl::Gls {
                service: Arc::clone(service),
                addr: fresh_addr(),
                kind: Some(if contended {
                    *contended_kind
                } else {
                    *default_kind
                }),
            },
        };
        AppMutex { inner }
    }

    /// Creates a reader-writer lock.
    ///
    /// * The MUTEX baseline uses the standard blocking rwlock.
    /// * The GLS providers route it through the shared [`GlsService`] rw
    ///   interface, so Kyoto/SQLite rw traffic gets address mapping,
    ///   profiling, debug checking and GLK-RW adaptivity like every mutex.
    /// * Every other provider uses the TTAS-based rwlock the paper
    ///   substitutes for `pthread_rwlock` (§5.2, footnote 7) directly.
    // The MUTEX baseline's contract is "whatever the system gives you",
    // which for rw traffic is std's rwlock (see clippy.toml).
    #[allow(clippy::disallowed_types)]
    pub fn new_rwlock(&self) -> AppRwLock {
        match self {
            LockProvider::Direct(LockKind::Mutex) => AppRwLock {
                inner: RwImpl::Blocking(std::sync::RwLock::new(())),
            },
            LockProvider::Gls(service) | LockProvider::GlsSpecialized { service, .. } => {
                AppRwLock {
                    inner: RwImpl::Gls {
                        service: Arc::clone(service),
                        addr: fresh_addr(),
                    },
                }
            }
            _ => AppRwLock {
                inner: RwImpl::Ttas(RwTtasLock::new(())),
            },
        }
    }

    /// Creates a condition variable usable with any [`AppMutex`] from this
    /// provider. The condvar parks its waiters in the shared parking lot;
    /// for GLS-backed mutexes the wait releases/re-acquires through the
    /// service (full debug/profile integration), for direct locks through
    /// the raw lock interface.
    pub fn new_condvar(&self) -> AppCondvar {
        AppCondvar {
            cv: GlsCondvar::new(),
        }
    }

    /// The GLS service backing this provider, if any (used by the Memcached
    /// experiment to pull profiler reports and issue logs).
    pub fn service(&self) -> Option<&Arc<GlsService>> {
        match self {
            LockProvider::Gls(service) => Some(service),
            LockProvider::GlsSpecialized { service, .. } => Some(service),
            _ => None,
        }
    }
}

/// Object-safe raw-lock facade for the direct providers.
trait RawFacade: Send + Sync {
    fn lock(&self);
    fn unlock(&self);
    fn try_lock(&self) -> bool;
}

struct Raw<L>(L);

impl<L: RawLock + RawTryLock> RawFacade for Raw<L> {
    fn lock(&self) {
        self.0.lock()
    }
    fn unlock(&self) {
        self.0.unlock()
    }
    fn try_lock(&self) -> bool {
        self.0.try_lock()
    }
}

struct GlkRaw(GlkLock);

impl RawFacade for GlkRaw {
    fn lock(&self) {
        self.0.lock()
    }
    fn unlock(&self) {
        self.0.unlock()
    }
    fn try_lock(&self) -> bool {
        self.0.try_lock()
    }
}

fn make_raw(kind: LockKind) -> Arc<dyn RawFacade> {
    match kind {
        LockKind::Tas => Arc::new(Raw(TasLock::new())),
        LockKind::Ttas => Arc::new(Raw(TtasLock::new())),
        LockKind::Ticket => Arc::new(Raw(TicketLock::new())),
        LockKind::Mcs => Arc::new(Raw(McsLock::new())),
        LockKind::Clh => Arc::new(Raw(ClhLock::new())),
        LockKind::Mutex => Arc::new(Raw(MutexLock::new())),
        LockKind::Futex => Arc::new(Raw(gls_locks::FutexLock::new())),
        LockKind::FutexRw => Arc::new(Raw(gls_locks::FutexRwLock::new())),
        LockKind::Glk => Arc::new(GlkRaw(GlkLock::new())),
        // A direct RW provider hands out the adaptive rwlock used in
        // exclusive (write) mode.
        LockKind::Rw => Arc::new(GlkRwRaw(gls::glk::GlkRwLock::new())),
    }
}

struct GlkRwRaw(gls::glk::GlkRwLock);

impl RawFacade for GlkRwRaw {
    fn lock(&self) {
        self.0.write_lock()
    }
    fn unlock(&self) {
        self.0.write_unlock()
    }
    fn try_lock(&self) -> bool {
        self.0.try_write_lock()
    }
}

enum MutexImpl {
    Raw(Arc<dyn RawFacade>),
    Gls {
        service: Arc<GlsService>,
        addr: usize,
        /// `None` = the service's default interface (GLK); `Some(kind)` = the
        /// explicit per-algorithm interface.
        kind: Option<LockKind>,
    },
}

/// A mutex handle handed to the simulated systems.
pub struct AppMutex {
    inner: MutexImpl,
}

impl fmt::Debug for AppMutex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            MutexImpl::Raw(_) => write!(f, "AppMutex(raw)"),
            MutexImpl::Gls { addr, .. } => write!(f, "AppMutex(gls @ {addr:#x})"),
        }
    }
}

impl AppMutex {
    /// Acquires the mutex.
    ///
    /// When the lock is GLS-backed and the service runs in debug mode, a
    /// detected misuse (e.g. double locking) is recorded in the service's
    /// issue log and the call returns without acquiring — the "warn and
    /// continue" behaviour of the paper's debug mode.
    pub fn lock(&self) {
        match &self.inner {
            MutexImpl::Raw(raw) => raw.lock(),
            MutexImpl::Gls {
                service,
                addr,
                kind,
            } => {
                let _ = match kind {
                    None => service.lock_addr(*addr),
                    Some(k) => service.lock_with(*k, *addr),
                };
            }
        }
    }

    /// Releases the mutex. Misuse detected by a debug-mode GLS service is
    /// recorded in its issue log rather than panicking (see [`AppMutex::lock`]).
    pub fn unlock(&self) {
        match &self.inner {
            MutexImpl::Raw(raw) => raw.unlock(),
            MutexImpl::Gls { service, addr, .. } => {
                let _ = service.unlock_addr(*addr);
            }
        }
    }

    /// Attempts to acquire the mutex without waiting.
    pub fn try_lock(&self) -> bool {
        match &self.inner {
            MutexImpl::Raw(raw) => raw.try_lock(),
            MutexImpl::Gls {
                service,
                addr,
                kind,
            } => match kind {
                None => service.try_lock_addr(*addr).unwrap_or(false),
                Some(k) => service.try_lock_with(*k, *addr).unwrap_or(false),
            },
        }
    }

    /// Runs `f` while holding the mutex.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock();
        let out = f();
        self.unlock();
        out
    }
}

/// A condition variable handle handed to the simulated systems, pairing
/// with the provider's [`AppMutex`]es (the real Memcached couples
/// `slab_rebalance_cond` with its maintenance mutex the same way).
#[derive(Debug, Default)]
pub struct AppCondvar {
    cv: GlsCondvar,
}

impl AppCondvar {
    /// Releases `mutex`, parks until notified, re-acquires `mutex`. The
    /// caller must hold `mutex`; re-check the predicate in a loop (spurious
    /// wakeups are possible).
    ///
    /// GLS-backed mutexes wait through [`GlsService::wait_addr`], so debug
    /// mode checks that the caller really holds the mutex (misuse is
    /// recorded in the service's issue log and the wait becomes a no-op —
    /// the "warn and continue" behaviour of every GLS-backed handle).
    pub fn wait(&self, mutex: &AppMutex) {
        match &mutex.inner {
            MutexImpl::Gls { service, addr, .. } => {
                let _ = service.wait_addr(&self.cv, *addr);
            }
            MutexImpl::Raw(_) => {
                self.cv.wait_with(|| mutex.unlock(), || mutex.lock(), None);
            }
        }
    }

    /// Like [`AppCondvar::wait`] with a timeout; returns whether the wait
    /// timed out. The mutex is re-acquired either way (a debug-mode misuse
    /// that aborts the wait reports as a timeout, so predicate loops keep
    /// re-checking).
    pub fn wait_timeout(&self, mutex: &AppMutex, timeout: Duration) -> bool {
        match &mutex.inner {
            MutexImpl::Gls { service, addr, .. } => service
                .wait_timeout_addr(&self.cv, *addr, timeout)
                .map(|outcome| outcome.timed_out())
                .unwrap_or(true),
            MutexImpl::Raw(_) => {
                self.cv
                    .wait_with(|| mutex.unlock(), || mutex.lock(), Some(timeout))
                    == WaitOutcome::TimedOut
            }
        }
    }

    /// Wakes one waiter, if any.
    pub fn notify_one(&self) -> bool {
        self.cv.notify_one()
    }

    /// Wakes every waiter; returns how many were woken.
    pub fn notify_all(&self) -> usize {
        self.cv.notify_all()
    }

    /// Number of threads currently parked on this condvar (diagnostics).
    pub fn waiters(&self) -> u64 {
        self.cv.waiters()
    }
}

enum RwImpl {
    // The system-baseline arm (see `new_rwlock` and clippy.toml).
    #[allow(clippy::disallowed_types)]
    Blocking(std::sync::RwLock<()>),
    Ttas(RwTtasLock<()>),
    Gls {
        service: Arc<GlsService>,
        addr: usize,
    },
}

/// A reader-writer lock handle handed to the simulated systems.
pub struct AppRwLock {
    inner: RwImpl,
}

impl fmt::Debug for AppRwLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            RwImpl::Blocking(_) => write!(f, "AppRwLock(blocking)"),
            RwImpl::Ttas(_) => write!(f, "AppRwLock(ttas)"),
            RwImpl::Gls { addr, .. } => write!(f, "AppRwLock(gls @ {addr:#x})"),
        }
    }
}

impl AppRwLock {
    /// Runs `f` while holding shared (read) access.
    ///
    /// For GLS-backed locks, debug-mode misuse is recorded in the service's
    /// issue log and the call continues (see [`AppMutex::lock`]).
    pub fn with_read<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.inner {
            RwImpl::Blocking(l) => {
                let _g = l.read().expect("rwlock poisoned");
                f()
            }
            RwImpl::Ttas(l) => {
                let _g = l.read();
                f()
            }
            RwImpl::Gls { service, addr } => {
                let held = service.read_lock_addr(*addr).is_ok();
                let out = f();
                if held {
                    let _ = service.read_unlock_addr(*addr);
                }
                out
            }
        }
    }

    /// Runs `f` while holding exclusive (write) access. Debug-mode misuse of
    /// GLS-backed locks is logged, not panicked on (see [`AppRwLock::with_read`]).
    pub fn with_write<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.inner {
            RwImpl::Blocking(l) => {
                let _g = l.write().expect("rwlock poisoned");
                f()
            }
            RwImpl::Ttas(l) => {
                let _g = l.write();
                f()
            }
            RwImpl::Gls { service, addr } => {
                let held = service.write_lock_addr(*addr).is_ok();
                let out = f();
                if held {
                    let _ = service.write_unlock_addr(*addr);
                }
                out
            }
        }
    }
}

/// The four lock configurations compared in Figures 14 and 15.
pub fn figure14_providers() -> Vec<LockProvider> {
    vec![
        LockProvider::Direct(LockKind::Mutex),
        LockProvider::Direct(LockKind::Ticket),
        LockProvider::Direct(LockKind::Mcs),
        LockProvider::glk(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn all_providers() -> Vec<LockProvider> {
        vec![
            LockProvider::Direct(LockKind::Mutex),
            LockProvider::Direct(LockKind::Ticket),
            LockProvider::Direct(LockKind::Mcs),
            LockProvider::Direct(LockKind::Tas),
            LockProvider::glk(),
            LockProvider::gls(),
            LockProvider::gls_specialized(),
        ]
    }

    #[test]
    fn every_provider_produces_working_mutexes() {
        for provider in all_providers() {
            let m = provider.new_mutex();
            m.lock();
            assert!(!m.try_lock(), "{}", provider.label());
            m.unlock();
            assert!(m.try_lock(), "{}", provider.label());
            m.unlock();
            m.with(|| ());
        }
    }

    #[test]
    fn every_provider_produces_working_rwlocks() {
        for provider in all_providers() {
            let rw = provider.new_rwlock();
            rw.with_read(|| ());
            rw.with_write(|| ());
        }
    }

    #[test]
    fn mutexes_provide_mutual_exclusion_for_every_provider() {
        for provider in all_providers() {
            let m = StdArc::new(provider.new_mutex());
            struct Cell(std::cell::UnsafeCell<u64>);
            // SAFETY: the cell is only touched while holding the lock under
            // test; that exclusion is exactly what the test verifies.
            unsafe impl Sync for Cell {}
            let value = StdArc::new(Cell(std::cell::UnsafeCell::new(0)));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = StdArc::clone(&m);
                    let value = StdArc::clone(&value);
                    std::thread::spawn(move || {
                        for _ in 0..5_000 {
                            // SAFETY: written while holding the lock under test.
                            m.with(|| unsafe { *value.0.get() += 1 });
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(
                // SAFETY: all worker threads are joined; nothing races this read.
                unsafe { *value.0.get() },
                20_000,
                "provider {}",
                provider.label()
            );
        }
    }

    #[test]
    fn specialized_provider_assigns_kinds_by_purpose() {
        let provider = LockProvider::gls_specialized();
        let hot = provider.new_contended_mutex();
        let cold = provider.new_mutex();
        hot.lock();
        hot.unlock();
        cold.lock();
        cold.unlock();
        let service = provider.service().unwrap();
        // Hot locks are MCS, cold locks are TICKET.
        let (hot_addr, cold_addr) = match (&hot.inner, &cold.inner) {
            (MutexImpl::Gls { addr: a, .. }, MutexImpl::Gls { addr: b, .. }) => (*a, *b),
            _ => panic!("specialized provider must produce GLS-backed mutexes"),
        };
        assert_eq!(service.algorithm_of(hot_addr), Some(LockKind::Mcs));
        assert_eq!(service.algorithm_of(cold_addr), Some(LockKind::Ticket));
    }

    #[test]
    fn gls_providers_route_rwlocks_through_the_service() {
        for provider in [LockProvider::gls(), LockProvider::gls_specialized()] {
            let service = StdArc::clone(provider.service().unwrap());
            let before = service.lock_count();
            let rw = provider.new_rwlock();
            rw.with_read(|| ());
            rw.with_write(|| ());
            assert_eq!(
                service.lock_count(),
                before + 1,
                "{}: the rwlock must create a service entry",
                provider.label()
            );
            let addr = match &rw.inner {
                RwImpl::Gls { addr, .. } => *addr,
                _ => panic!("{}: rwlock must be GLS-backed", provider.label()),
            };
            assert_eq!(service.algorithm_of(addr), Some(LockKind::Rw));
        }
    }

    #[test]
    fn direct_providers_keep_ttas_rwlocks() {
        let rw = LockProvider::Direct(LockKind::Ticket).new_rwlock();
        assert!(matches!(rw.inner, RwImpl::Ttas(_)));
        let rw = LockProvider::mutex().new_rwlock();
        assert!(matches!(rw.inner, RwImpl::Blocking(_)));
    }

    #[test]
    fn profiling_provider_reports_rw_and_mutex_entries() {
        let provider = LockProvider::gls_profiling();
        let rw = provider.new_rwlock();
        let m = provider.new_mutex();
        for _ in 0..20 {
            rw.with_read(|| ());
            rw.with_write(|| ());
            m.with(|| ());
        }
        let report = provider.service().unwrap().profile_report();
        assert!(
            report
                .locks
                .iter()
                .any(|l| l.algorithm == LockKind::Rw && l.acquisitions == 40),
            "profiler report must show the rw lock entry: {report:?}"
        );
        assert!(
            report
                .locks
                .iter()
                .any(|l| l.algorithm != LockKind::Rw && l.acquisitions == 20),
            "profiler report must show the mutex entry: {report:?}"
        );
    }

    #[test]
    fn condvars_pair_with_every_provider_mutex() {
        use std::sync::atomic::AtomicBool;
        for provider in all_providers() {
            let label = provider.label();
            let m = StdArc::new(provider.new_mutex());
            let cv = StdArc::new(provider.new_condvar());
            // A timed wait with no notifier expires and re-acquires.
            m.lock();
            assert!(
                cv.wait_timeout(&m, Duration::from_millis(20)),
                "{label}: wait should time out"
            );
            assert!(!m.try_lock(), "{label}: mutex re-acquired after timeout");
            m.unlock();
            // A full wait/notify roundtrip.
            let flag = StdArc::new(AtomicBool::new(false));
            let waiter = {
                let (m, cv, flag) = (StdArc::clone(&m), StdArc::clone(&cv), StdArc::clone(&flag));
                std::thread::spawn(move || {
                    m.lock();
                    while !flag.load(Ordering::Relaxed) {
                        cv.wait(&m);
                    }
                    m.unlock();
                })
            };
            while cv.waiters() == 0 {
                std::thread::yield_now();
            }
            m.lock();
            flag.store(true, Ordering::Relaxed);
            m.unlock();
            cv.notify_one();
            waiter.join().unwrap();
        }
    }

    #[test]
    fn gls_condvar_wait_without_holding_is_flagged_in_debug_mode() {
        let service = StdArc::new(GlsService::with_config(GlsConfig::debug()));
        let provider = LockProvider::Gls(StdArc::clone(&service));
        let m = provider.new_mutex();
        let cv = provider.new_condvar();
        // Initialize the entry, then wait without holding: the service-level
        // ownership check must record the misuse instead of parking.
        m.lock();
        m.unlock();
        assert!(
            cv.wait_timeout(&m, Duration::from_millis(200)),
            "aborted wait reports as a timeout"
        );
        assert!(
            service
                .issues()
                .iter()
                .any(|i| i.category() == "release-free-lock"),
            "waiting without holding must be flagged: {:?}",
            service.issues()
        );
    }

    #[test]
    fn labels_and_figure14_set() {
        assert_eq!(LockProvider::mutex().label(), "MUTEX");
        assert_eq!(LockProvider::glk().label(), "GLK");
        assert_eq!(LockProvider::gls().label(), "GLS");
        let providers = figure14_providers();
        assert_eq!(providers.len(), 4);
        assert_eq!(providers[0].label(), "MUTEX");
        assert_eq!(providers[3].label(), "GLK");
    }
}
