//! SQLite/TPC-C-like relational engine.
//!
//! SQLite's locking architecture as described in §5.2: "SQLite uses a MUTEX
//! for each database (e.g., each new connection), another for memory
//! allocation, and a last one for protecting the database cache. However, the
//! nodes of the B-tree are protected by custom reader-writer locks. The
//! mutexes of SQLite become contended as we increase the number of
//! connections." The paper drives it with TPC-C at 8–64 concurrent
//! connections; 64 connections oversubscribe the machine.
//!
//! The miniature keeps: one mutex per connection, one global allocator mutex,
//! one global page-cache mutex, reader-writer locks over B-tree "pages", and
//! a TPC-C-flavoured transaction mix (new-order / payment / stock-level) over
//! a warehouse/district/stock schema stored in B-trees.

// The simulated system busy-loops and sleeps stand in for real I/O and
// compute latencies; wall-clock pacing is the point (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lock_provider::{AppMutex, AppRwLock, LockProvider};
use crate::result::SystemResult;

/// Number of B-tree page groups, each with its own reader-writer lock.
const PAGE_GROUPS: usize = 32;
/// Number of warehouses (TPC-C scale factor; the paper uses 100).
const WAREHOUSES: u64 = 100;
/// Districts per warehouse (TPC-C constant).
const DISTRICTS: u64 = 10;
/// Stock items per warehouse kept in the miniature.
const ITEMS: u64 = 1_000;

/// Configuration of the SQLite/TPC-C experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqliteConfig {
    /// Number of concurrent connections (each served by one thread). The
    /// paper sweeps 8, 16, 32, 64.
    pub connections: usize,
    /// Measurement duration.
    pub duration: Duration,
}

impl Default for SqliteConfig {
    fn default() -> Self {
        Self {
            connections: 8,
            duration: Duration::from_millis(300),
        }
    }
}

impl SqliteConfig {
    /// The paper's connection sweep.
    pub fn paper_connection_counts() -> [usize; 4] {
        [8, 16, 32, 64]
    }
}

#[derive(Debug, Default)]
struct Tables {
    /// `(warehouse, district) -> next order id`.
    districts: BTreeMap<(u64, u64), u64>,
    /// `(warehouse, item) -> stock quantity`.
    stock: BTreeMap<(u64, u64), i64>,
    /// `(warehouse, district) -> year-to-date payment amount (cents)`.
    ytd: BTreeMap<(u64, u64), u64>,
}

/// The simulated SQLite database.
pub struct SqliteDb {
    /// One mutex per connection.
    connection_locks: Vec<AppMutex>,
    /// Global memory-allocator mutex.
    alloc_lock: AppMutex,
    /// Global page-cache mutex (the contended one as connections grow).
    cache_lock: AppMutex,
    /// Reader-writer locks over groups of B-tree pages.
    page_locks: Vec<AppRwLock>,
    /// Table rows, partitioned by page group: group `g` holds the rows of
    /// every warehouse with `warehouse % PAGE_GROUPS == g`, and is only
    /// accessed under `page_locks[g]`.
    tables: Vec<UnsafeCell<Tables>>,
}

// SAFETY: each table partition is only touched under the page-group rwlock
// covering it (writers take write access).
unsafe impl Sync for SqliteDb {}
unsafe impl Send for SqliteDb {}

impl std::fmt::Debug for SqliteDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SqliteDb")
            .field("connections", &self.connection_locks.len())
            .finish_non_exhaustive()
    }
}

impl SqliteDb {
    /// Creates a database with `connections` connection mutexes and loads the
    /// TPC-C-lite schema.
    pub fn new(provider: &LockProvider, connections: usize) -> Self {
        let db = Self {
            connection_locks: (0..connections.max(1))
                .map(|_| provider.new_mutex())
                .collect(),
            alloc_lock: provider.new_mutex(),
            // The page cache is the mutex that becomes contended as the
            // number of connections grows.
            cache_lock: provider.new_contended_mutex(),
            page_locks: (0..PAGE_GROUPS).map(|_| provider.new_rwlock()).collect(),
            tables: (0..PAGE_GROUPS)
                .map(|_| UnsafeCell::new(Tables::default()))
                .collect(),
        };
        db.load();
        db
    }

    fn load(&self) {
        for w in 0..WAREHOUSES {
            let group = Self::group_of(w);
            self.page_locks[group].with_write(|| {
                // SAFETY: write lock on this partition's page group.
                let tables = unsafe { &mut *self.tables[group].get() };
                for d in 0..DISTRICTS {
                    tables.districts.insert((w, d), 1);
                    tables.ytd.insert((w, d), 0);
                }
                for i in 0..ITEMS {
                    tables.stock.insert((w, i), 100);
                }
            });
        }
    }

    fn group_of(warehouse: u64) -> usize {
        (warehouse as usize) % PAGE_GROUPS
    }

    fn page_lock_for(&self, warehouse: u64) -> &AppRwLock {
        &self.page_locks[Self::group_of(warehouse)]
    }

    /// TPC-C new-order transaction (simplified): allocates memory, pins cache
    /// pages, increments the district order counter and decrements stock for
    /// a handful of items.
    pub fn new_order(&self, connection: usize, warehouse: u64, district: u64, rng: &mut StdRng) {
        let conn_lock = &self.connection_locks[connection % self.connection_locks.len()];
        conn_lock.lock();
        self.alloc_lock.with(|| gls_runtime::spin_cycles(40));
        self.cache_lock.with(|| gls_runtime::spin_cycles(80));
        self.page_lock_for(warehouse).with_write(|| {
            // SAFETY: write lock on this warehouse's page group.
            let tables = unsafe { &mut *self.tables[Self::group_of(warehouse)].get() };
            let order_id = tables.districts.entry((warehouse, district)).or_insert(1);
            *order_id += 1;
            for _ in 0..5 {
                let item = rng.gen_range(0..ITEMS);
                let stock = tables.stock.entry((warehouse, item)).or_insert(100);
                *stock -= 1;
                if *stock < 10 {
                    *stock += 91; // restock, as TPC-C does
                }
            }
        });
        conn_lock.unlock();
    }

    /// TPC-C payment transaction (simplified).
    pub fn payment(&self, connection: usize, warehouse: u64, district: u64, amount: u64) {
        let conn_lock = &self.connection_locks[connection % self.connection_locks.len()];
        conn_lock.lock();
        self.cache_lock.with(|| gls_runtime::spin_cycles(60));
        self.page_lock_for(warehouse).with_write(|| {
            // SAFETY: write lock on this warehouse's page group.
            let tables = unsafe { &mut *self.tables[Self::group_of(warehouse)].get() };
            *tables.ytd.entry((warehouse, district)).or_insert(0) += amount;
        });
        conn_lock.unlock();
    }

    /// TPC-C stock-level transaction (read-only, simplified).
    pub fn stock_level(&self, connection: usize, warehouse: u64) -> usize {
        let conn_lock = &self.connection_locks[connection % self.connection_locks.len()];
        conn_lock.lock();
        self.cache_lock.with(|| gls_runtime::spin_cycles(60));
        let low = self.page_lock_for(warehouse).with_read(|| {
            // SAFETY: read lock on this warehouse's page group; read-only.
            let tables = unsafe { &*self.tables[Self::group_of(warehouse)].get() };
            tables
                .stock
                .range((warehouse, 0)..(warehouse, ITEMS))
                .filter(|(_, &qty)| qty < 50)
                .count()
        });
        conn_lock.unlock();
        low
    }

    /// Sum of all district order counters (test helper).
    pub fn total_orders(&self) -> u64 {
        (0..PAGE_GROUPS)
            .map(|group| {
                self.page_locks[group].with_read(|| {
                    // SAFETY: read lock on this partition's page group.
                    let tables = unsafe { &*self.tables[group].get() };
                    tables.districts.values().map(|&v| v - 1).sum::<u64>()
                })
            })
            .sum()
    }

    /// Total year-to-date payments across all districts (test helper).
    pub fn total_ytd(&self) -> u64 {
        (0..PAGE_GROUPS)
            .map(|group| {
                self.page_locks[group].with_read(|| {
                    // SAFETY: read lock on this partition's page group.
                    let tables = unsafe { &*self.tables[group].get() };
                    tables.ytd.values().sum::<u64>()
                })
            })
            .sum()
    }
}

/// Runs the TPC-C-lite mix with one thread per connection.
pub fn run(provider: &LockProvider, config: &SqliteConfig) -> SystemResult {
    let db = Arc::new(SqliteDb::new(provider, config.connections));
    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..config.connections)
        .map(|conn| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                // Count this worker towards the process-wide runnable-task
                // count so GLK's multiprogramming detector can see it.
                let _runnable = gls_runtime::SystemLoadMonitor::global().runnable_guard();
                let mut rng = StdRng::seed_from_u64(0x59_1173 + conn as u64);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let warehouse = rng.gen_range(0..WAREHOUSES);
                    let district = rng.gen_range(0..DISTRICTS);
                    match rng.gen_range(0..100) {
                        0..=44 => db.new_order(conn, warehouse, district, &mut rng),
                        45..=87 => db.payment(conn, warehouse, district, 500),
                        _ => {
                            let _ = db.stock_level(conn, warehouse);
                        }
                    }
                    local += 1;
                }
                committed.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    SystemResult {
        system: "SQLite",
        config: format!("{} CON", config.connections),
        lock: provider.label(),
        operations: committed.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gls_locks::LockKind;

    #[test]
    fn schema_is_loaded() {
        let db = SqliteDb::new(&LockProvider::mutex(), 4);
        assert_eq!(db.total_orders(), 0);
        assert_eq!(db.total_ytd(), 0);
        assert_eq!(
            db.stock_level(0, 0),
            0,
            "fresh stock is all above the threshold"
        );
    }

    #[test]
    fn transactions_update_the_tables() {
        let db = SqliteDb::new(&LockProvider::mutex(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        db.new_order(0, 3, 2, &mut rng);
        db.new_order(1, 3, 2, &mut rng);
        db.payment(0, 3, 2, 1_000);
        assert_eq!(db.total_orders(), 2);
        assert_eq!(db.total_ytd(), 1_000);
    }

    #[test]
    fn concurrent_connections_do_not_lose_payments() {
        let db = Arc::new(SqliteDb::new(&LockProvider::Direct(LockKind::Mcs), 8));
        let handles: Vec<_> = (0..8)
            .map(|conn| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        db.payment(conn, (conn % 4) as u64, 0, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.total_ytd(), 8 * 500);
    }

    #[test]
    fn workload_runs_for_every_provider_at_8_connections() {
        let config = SqliteConfig {
            connections: 8,
            duration: Duration::from_millis(60),
        };
        for provider in [
            LockProvider::mutex(),
            LockProvider::Direct(LockKind::Ticket),
            LockProvider::Direct(LockKind::Mcs),
            LockProvider::glk(),
        ] {
            let result = run(&provider, &config);
            assert!(result.operations > 0, "{}", provider.label());
            assert_eq!(result.config, "8 CON");
        }
    }

    #[test]
    fn gls_provider_profiles_sqlite_page_rwlocks() {
        let provider = LockProvider::gls_profiling();
        let result = run(
            &provider,
            &SqliteConfig {
                connections: 4,
                duration: Duration::from_millis(60),
            },
        );
        assert!(result.operations > 0);
        let report = provider.service().unwrap().profile_report();
        let rw_acquisitions: u64 = report
            .locks
            .iter()
            .filter(|l| l.algorithm == gls_locks::LockKind::Rw)
            .map(|l| l.acquisitions)
            .sum();
        assert!(
            rw_acquisitions > 0,
            "page-group rwlocks must be profiled through GLS: {report:?}"
        );
    }

    #[test]
    fn paper_connection_sweep_is_8_to_64() {
        assert_eq!(SqliteConfig::paper_connection_counts(), [8, 16, 32, 64]);
    }
}
