//! HamsterDB-like embedded key-value store: one global lock.
//!
//! "The HamsterDB embedded key-value store relies on a global lock. Of
//! course, the contention on that lock is very high. [...] Consequently, we
//! use just two threads as the application cannot scale further." (§5.2)
//!
//! The store is a B-tree (here a `BTreeMap`) guarded by a single mutex from
//! the [`LockProvider`]; the workload issues random reads and writes with a
//! configurable read ratio (the paper's WT / WT-RD / RD configurations are
//! 10%, 50% and 90% reads).

// The simulated system busy-loops and sleeps stand in for real I/O and
// compute latencies; wall-clock pacing is the point (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lock_provider::{AppMutex, LockProvider};
use crate::result::SystemResult;

/// Workload configuration for the HamsterDB experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HamsterConfig {
    /// Number of worker threads (the paper uses 2).
    pub threads: usize,
    /// Fraction of read operations, in percent (10 = WT, 50 = WT/RD, 90 = RD).
    pub read_percent: u32,
    /// Number of keys pre-loaded into the store.
    pub keys: u64,
    /// Measurement duration.
    pub duration: Duration,
}

impl Default for HamsterConfig {
    fn default() -> Self {
        Self {
            threads: 2,
            read_percent: 50,
            keys: 100_000,
            duration: Duration::from_millis(300),
        }
    }
}

impl HamsterConfig {
    /// The paper's three configurations: (label, read percentage).
    pub fn paper_configs() -> [(&'static str, u32); 3] {
        [("WT", 10), ("WT/RD", 50), ("RD", 90)]
    }
}

/// The embedded store: a B-tree entirely serialized by one global lock.
#[derive(Debug)]
pub struct HamsterDb {
    global_lock: AppMutex,
    tree: UnsafeCell<BTreeMap<u64, u64>>,
}

// SAFETY: all access to `tree` happens under `global_lock`.
unsafe impl Sync for HamsterDb {}
unsafe impl Send for HamsterDb {}

impl HamsterDb {
    /// Creates an empty store whose global lock comes from `provider`.
    pub fn new(provider: &LockProvider) -> Self {
        Self {
            // The global lock is, by construction, the hottest lock in the
            // system.
            global_lock: provider.new_contended_mutex(),
            tree: UnsafeCell::new(BTreeMap::new()),
        }
    }

    /// Loads `keys` sequential keys.
    pub fn load(&self, keys: u64) {
        self.global_lock.with(|| {
            // SAFETY: global lock held.
            let tree = unsafe { &mut *self.tree.get() };
            for k in 0..keys {
                tree.insert(k, k.wrapping_mul(31));
            }
        });
    }

    /// Reads one key.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.global_lock.with(|| {
            // SAFETY: global lock held.
            unsafe { (*self.tree.get()).get(&key).copied() }
        })
    }

    /// Writes one key.
    pub fn put(&self, key: u64, value: u64) {
        self.global_lock.with(|| {
            // SAFETY: global lock held.
            unsafe {
                (*self.tree.get()).insert(key, value);
            }
        });
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.global_lock.with(|| {
            // SAFETY: global lock held.
            unsafe { (*self.tree.get()).len() }
        })
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Runs the HamsterDB workload and reports throughput.
pub fn run(provider: &LockProvider, config: &HamsterConfig) -> SystemResult {
    let db = Arc::new(HamsterDb::new(provider));
    db.load(config.keys);

    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let handles: Vec<_> = (0..config.threads)
        .map(|t| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let read_percent = config.read_percent;
            let keys = config.keys;
            std::thread::spawn(move || {
                // Count this worker towards the process-wide runnable-task
                // count so GLK's multiprogramming detector can see it.
                let _runnable = gls_runtime::SystemLoadMonitor::global().runnable_guard();
                let mut rng = StdRng::seed_from_u64(0xDB + t as u64);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..keys);
                    if rng.gen_range(0u32..100) < read_percent {
                        let _ = db.get(key);
                    } else {
                        db.put(key, ops);
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let operations = handles.into_iter().map(|h| h.join().unwrap()).sum();

    SystemResult {
        system: "HamsterDB",
        config: format!("{}% reads", config.read_percent),
        lock: provider.label(),
        operations,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gls_locks::LockKind;

    #[test]
    fn store_get_put_roundtrip() {
        let db = HamsterDb::new(&LockProvider::mutex());
        assert!(db.is_empty());
        db.put(7, 70);
        assert_eq!(db.get(7), Some(70));
        assert_eq!(db.get(8), None);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn load_populates_sequential_keys() {
        let db = HamsterDb::new(&LockProvider::mutex());
        db.load(1_000);
        assert_eq!(db.len(), 1_000);
        assert_eq!(db.get(999), Some(999u64.wrapping_mul(31)));
    }

    #[test]
    fn concurrent_updates_are_serialized_by_the_global_lock() {
        let db = Arc::new(HamsterDb::new(&LockProvider::Direct(LockKind::Ticket)));
        db.put(0, 0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for _ in 0..2_500 {
                        let current = db.get(0).unwrap();
                        db.put(0, current + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Read-modify-write across two critical sections can lose updates,
        // but the structure itself must stay consistent and non-empty.
        assert!(db.get(0).unwrap() > 0);
    }

    #[test]
    fn workload_produces_throughput_for_all_providers() {
        let config = HamsterConfig {
            threads: 2,
            read_percent: 90,
            keys: 10_000,
            duration: Duration::from_millis(80),
        };
        for provider in [
            LockProvider::mutex(),
            LockProvider::Direct(LockKind::Ticket),
            LockProvider::Direct(LockKind::Mcs),
            LockProvider::glk(),
        ] {
            let result = run(&provider, &config);
            assert!(
                result.operations > 100,
                "{} produced {} ops",
                provider.label(),
                result.operations
            );
            assert_eq!(result.system, "HamsterDB");
        }
    }

    #[test]
    fn paper_configs_cover_three_read_ratios() {
        let configs = HamsterConfig::paper_configs();
        assert_eq!(configs.len(), 3);
        assert_eq!(configs[0], ("WT", 10));
        assert_eq!(configs[2], ("RD", 90));
    }
}
