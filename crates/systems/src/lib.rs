//! Miniature lock-based systems for the GLS/GLK evaluation (§5 of the paper).
//!
//! The paper plugs its locks into five real systems by overloading the
//! `pthread` mutex (and reader-writer lock) functions. This crate rebuilds
//! laptop-scale versions of those systems that preserve the property the
//! experiments depend on — each system's **locking architecture** (how many
//! locks, which are global, how skewed the traffic, how deep the nesting,
//! whether threads are oversubscribed) — while shrinking the data plane. Each
//! system is parameterized over a [`LockProvider`], the Rust equivalent of
//! swapping the `pthread` library underneath an unmodified application:
//!
//! | Module | Paper system | Locking architecture kept |
//! |---|---|---|
//! | [`hamsterdb`] | HamsterDB 2.1.7 | one global lock in front of the whole store |
//! | [`kyoto`] | Kyoto Cabinet 1.2.76 | global reader-writer lock + 16 bucket-group mutexes (+ nesting for CACHE); B+-tree node rwlocks + contended node-cache mutexes |
//! | [`memcached`] | Memcached 1.4.22 | per-bucket item locks, global stats/slabs/LRU/rebalance locks, worker threads; plus the two latent locking bugs of §5.1 |
//! | [`mysql`] | MySQL 5.6 + LinkBench | custom semaphore-style buffer-pool locks with oversubscribed worker threads (MEM and SSD configurations) |
//! | [`sqlite`] | SQLite 3.8.5 + TPC-C | per-connection mutex, allocator mutex, cache mutex, B-tree node rwlocks; 8–64 connections |
//!
//! All systems share the [`SystemResult`] output shape consumed by the
//! figure-reproduction binaries in `gls-bench`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hamsterdb;
pub mod kyoto;
pub mod lock_provider;
pub mod memcached;
pub mod mysql;
pub mod result;
pub mod sqlite;

pub use lock_provider::{AppMutex, AppRwLock, LockProvider};
pub use result::SystemResult;
