//! MySQL/LinkBench-like engine: custom buffer-pool "semaphore" locks and
//! oversubscribed worker threads.
//!
//! The paper's MySQL experiments (Facebook LinkBench, MEM and SSD
//! configurations) are the case where fair spinlocks fall over: "In both
//! workloads, MySQL oversubscribes threads to hardware contexts. The result
//! is a livelock for both MCS and TICKET that deliver less than 100
//! operations per second" (§5.2). Blocking (or GLK switching its contended
//! locks to mutex mode) is required; at the same time many of the engine's
//! locks are lightly contended, which is where GLK's ticket mode gains over
//! MUTEX on the SSD workload.
//!
//! The miniature keeps: a graph store (nodes + typed edges, LinkBench's data
//! model) partitioned over buffer-pool pages, each page protected by one of a
//! fixed array of page latches; a small set of hot index latches taken by
//! every transaction; and a worker pool that deliberately oversubscribes the
//! machine. The SSD configuration adds per-transaction "I/O" time spent
//! outside any lock, which lowers lock traffic exactly like a disk-bound
//! LinkBench run.

// The simulated system busy-loops and sleeps stand in for real I/O and
// compute latencies; wall-clock pacing is the point (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lock_provider::{AppMutex, LockProvider};
use crate::result::SystemResult;

/// Number of buffer-pool pages (and page latches).
const PAGES: usize = 128;
/// Number of hot index latches taken by every transaction.
const INDEX_LATCHES: usize = 2;

/// MEM vs SSD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MysqlWorkload {
    /// In-memory LinkBench: no I/O time, lock-dominated.
    Mem,
    /// SSD LinkBench: every transaction pays an out-of-lock "I/O" cost, so
    /// individual locks are lightly contended.
    Ssd,
}

impl MysqlWorkload {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            MysqlWorkload::Mem => "MEM",
            MysqlWorkload::Ssd => "SSD",
        }
    }

    /// Simulated out-of-lock I/O time per transaction, in cycles.
    fn io_cycles(self) -> u64 {
        match self {
            MysqlWorkload::Mem => 0,
            MysqlWorkload::Ssd => 20_000,
        }
    }
}

/// Configuration of the MySQL/LinkBench experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MysqlConfig {
    /// Worker threads. The paper oversubscribes; use
    /// [`MysqlConfig::oversubscribed`] to derive a value from the host.
    pub threads: usize,
    /// MEM or SSD workload.
    pub workload: MysqlWorkload,
    /// Number of graph nodes pre-loaded.
    pub nodes: u64,
    /// Measurement duration.
    pub duration: Duration,
}

impl MysqlConfig {
    /// A configuration that oversubscribes the current machine by 50%, the
    /// regime the paper's MySQL runs operate in.
    pub fn oversubscribed(workload: MysqlWorkload) -> Self {
        Self {
            threads: gls_runtime::hardware_contexts() * 3 / 2 + 2,
            workload,
            nodes: 50_000,
            duration: Duration::from_millis(300),
        }
    }
}

impl Default for MysqlConfig {
    fn default() -> Self {
        Self::oversubscribed(MysqlWorkload::Mem)
    }
}

/// A LinkBench-style edge: `(source node, edge type) -> targets`.
type EdgeKey = (u64, u8);

/// The simulated storage engine.
pub struct MysqlEngine {
    /// One latch per buffer-pool page.
    page_latches: Vec<AppMutex>,
    /// Hot index latches taken by every transaction (these are the ones GLK
    /// keeps in — or moves to — mutex mode under oversubscription).
    index_latches: Vec<AppMutex>,
    nodes: Vec<UnsafeCell<HashMap<u64, u64>>>,
    edges: Vec<UnsafeCell<HashMap<EdgeKey, Vec<u64>>>>,
}

// SAFETY: page data is only accessed while holding the page's latch.
unsafe impl Sync for MysqlEngine {}
unsafe impl Send for MysqlEngine {}

impl std::fmt::Debug for MysqlEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MysqlEngine")
            .field("pages", &PAGES)
            .finish_non_exhaustive()
    }
}

impl MysqlEngine {
    /// Creates an engine whose latches come from `provider`.
    pub fn new(provider: &LockProvider) -> Self {
        Self {
            page_latches: (0..PAGES).map(|_| provider.new_mutex()).collect(),
            index_latches: (0..INDEX_LATCHES)
                .map(|_| provider.new_contended_mutex())
                .collect(),
            nodes: (0..PAGES)
                .map(|_| UnsafeCell::new(HashMap::new()))
                .collect(),
            edges: (0..PAGES)
                .map(|_| UnsafeCell::new(HashMap::new()))
                .collect(),
        }
    }

    fn page_of(&self, node: u64) -> usize {
        (node as usize) % PAGES
    }

    /// Runs `f` with the page latch of `node` held.
    fn with_page<R>(&self, node: u64, f: impl FnOnce(usize) -> R) -> R {
        let page = self.page_of(node);
        self.page_latches[page].lock();
        let out = f(page);
        self.page_latches[page].unlock();
        out
    }

    /// Inserts or updates a node.
    pub fn add_node(&self, id: u64, version: u64) {
        self.index_latches[0].with(|| gls_runtime::spin_cycles(30));
        self.with_page(id, |page| {
            // SAFETY: page latch held.
            unsafe {
                (*self.nodes[page].get()).insert(id, version);
            }
        });
    }

    /// Reads a node.
    pub fn get_node(&self, id: u64) -> Option<u64> {
        self.index_latches[0].with(|| gls_runtime::spin_cycles(30));
        self.with_page(id, |page| {
            // SAFETY: page latch held.
            unsafe { (*self.nodes[page].get()).get(&id).copied() }
        })
    }

    /// Adds a directed edge of `edge_type` from `src` to `dst`.
    pub fn add_edge(&self, src: u64, edge_type: u8, dst: u64) {
        self.index_latches[1].with(|| gls_runtime::spin_cycles(30));
        self.with_page(src, |page| {
            // SAFETY: page latch held.
            unsafe {
                (*self.edges[page].get())
                    .entry((src, edge_type))
                    .or_default()
                    .push(dst);
            }
        });
    }

    /// Lists the out-edges of `src` with the given type.
    pub fn get_edges(&self, src: u64, edge_type: u8) -> Vec<u64> {
        self.index_latches[1].with(|| gls_runtime::spin_cycles(30));
        self.with_page(src, |page| {
            // SAFETY: page latch held.
            unsafe {
                (*self.edges[page].get())
                    .get(&(src, edge_type))
                    .cloned()
                    .unwrap_or_default()
            }
        })
    }

    /// Total node count (test helper; takes every page latch in order).
    pub fn node_count(&self) -> usize {
        let mut total = 0;
        for page in 0..PAGES {
            self.page_latches[page].lock();
            // SAFETY: page latch held.
            total += unsafe { (*self.nodes[page].get()).len() };
            self.page_latches[page].unlock();
        }
        total
    }
}

/// Runs the LinkBench-like transaction mix and reports throughput.
pub fn run(provider: &LockProvider, config: &MysqlConfig) -> SystemResult {
    let engine = Arc::new(MysqlEngine::new(provider));
    for id in 0..config.nodes {
        engine.add_node(id, 1);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let io_cycles = config.workload.io_cycles();
    let start = Instant::now();
    let handles: Vec<_> = (0..config.threads)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let nodes = config.nodes;
            std::thread::spawn(move || {
                // Count this worker towards the process-wide runnable-task
                // count so GLK's multiprogramming detector can see it.
                let _runnable = gls_runtime::SystemLoadMonitor::global().runnable_guard();
                let mut rng = StdRng::seed_from_u64(0x5A1 + t as u64);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // LinkBench mix: ~70% reads, ~30% writes.
                    let src = rng.gen_range(0..nodes);
                    let dice = rng.gen_range(0..100);
                    if dice < 50 {
                        let _ = engine.get_node(src);
                    } else if dice < 70 {
                        let _ = engine.get_edges(src, 1);
                    } else if dice < 85 {
                        engine.add_node(src, ops);
                    } else {
                        engine.add_edge(src, 1, rng.gen_range(0..nodes));
                    }
                    // Out-of-lock I/O time (SSD configuration only).
                    gls_runtime::spin_cycles(io_cycles);
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let operations = handles.into_iter().map(|h| h.join().unwrap()).sum();

    SystemResult {
        system: "MySQL",
        config: config.workload.label().to_string(),
        lock: provider.label(),
        operations,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gls_locks::LockKind;

    #[test]
    fn graph_roundtrip() {
        let engine = MysqlEngine::new(&LockProvider::mutex());
        engine.add_node(1, 7);
        engine.add_node(2, 9);
        engine.add_edge(1, 3, 2);
        assert_eq!(engine.get_node(1), Some(7));
        assert_eq!(engine.get_node(99), None);
        assert_eq!(engine.get_edges(1, 3), vec![2]);
        assert!(engine.get_edges(2, 3).is_empty());
        assert_eq!(engine.node_count(), 2);
    }

    #[test]
    fn concurrent_transactions_keep_their_writes() {
        let engine = Arc::new(MysqlEngine::new(&LockProvider::glk()));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        let id = t as u64 * 100_000 + i;
                        engine.add_node(id, i);
                        engine.add_edge(id, 1, id + 1);
                        assert_eq!(engine.get_node(id), Some(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.node_count(), 4_000);
    }

    #[test]
    fn workload_labels_match_the_paper() {
        assert_eq!(MysqlWorkload::Mem.label(), "MEM");
        assert_eq!(MysqlWorkload::Ssd.label(), "SSD");
        assert!(MysqlWorkload::Ssd.io_cycles() > MysqlWorkload::Mem.io_cycles());
    }

    #[test]
    fn oversubscribed_config_exceeds_hardware_contexts() {
        let config = MysqlConfig::oversubscribed(MysqlWorkload::Mem);
        assert!(config.threads > gls_runtime::hardware_contexts());
    }

    #[test]
    fn short_run_produces_results_for_mutex_and_glk() {
        // Only the blocking-capable providers are exercised here: a fully
        // oversubscribed fair-spinlock run is exactly the pathological case
        // the paper reports as a livelock and would make the test too slow.
        let config = MysqlConfig {
            threads: 4,
            workload: MysqlWorkload::Ssd,
            nodes: 2_000,
            duration: Duration::from_millis(60),
        };
        for provider in [
            LockProvider::mutex(),
            LockProvider::glk(),
            LockProvider::Direct(LockKind::Ticket),
        ] {
            let result = run(&provider, &config);
            assert!(result.operations > 0, "{}", provider.label());
            assert_eq!(result.config, "SSD");
        }
    }
}
