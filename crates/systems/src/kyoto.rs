//! Kyoto-Cabinet-like NoSQL store: CACHE, HT DB and B+-TREE flavors.
//!
//! The paper evaluates Kyoto Cabinet's three database flavors (§5.2):
//!
//! * the **hash-table** versions (a cache and a persistent store) protect the
//!   main structure with a highly contended global reader-writer lock and
//!   additionally use 16 mutexes, each protecting a group of buckets, with
//!   very low per-lock contention but — for the cache — up to ~10 levels of
//!   lock nesting (which is what makes MCS expensive there);
//! * the **B+-tree** version uses reader-writer locks on tree nodes plus
//!   mutexes for a node cache, and those cache mutexes are highly contended.
//!
//! The miniatures below keep exactly those lock populations and access
//! skews; the data plane is a set of in-memory hash maps / a B-tree.

// The simulated system busy-loops and sleeps stand in for real I/O and
// compute latencies; wall-clock pacing is the point (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lock_provider::{AppMutex, AppRwLock, LockProvider};
use crate::result::SystemResult;

/// Which Kyoto flavor to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KyotoFlavor {
    /// In-memory cache hash DB: high lock traffic, deep nesting.
    Cache,
    /// Persistent hash DB: same locking, roughly 10× less lock traffic
    /// (each operation does more non-locking work).
    HashDb,
    /// B+-tree DB: node rwlocks plus contended node-cache mutexes.
    BTree,
}

impl KyotoFlavor {
    /// Paper label for this flavor.
    pub fn label(self) -> &'static str {
        match self {
            KyotoFlavor::Cache => "CACHE",
            KyotoFlavor::HashDb => "HT DB",
            KyotoFlavor::BTree => "B+-TREE",
        }
    }

    /// All three flavors in the paper's order.
    pub const ALL: [KyotoFlavor; 3] = [KyotoFlavor::Cache, KyotoFlavor::HashDb, KyotoFlavor::BTree];
}

/// Number of bucket-group mutexes in the hash flavors (as in Kyoto Cabinet).
const BUCKET_GROUPS: usize = 16;
/// Nesting depth of the cache flavor's per-operation lock chain.
const CACHE_NESTING: usize = 6;
/// Number of node-cache mutexes in the B+-tree flavor.
const TREE_CACHE_LOCKS: usize = 4;

/// Workload configuration for the Kyoto experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KyotoConfig {
    /// Worker threads (the paper uses 4).
    pub threads: usize,
    /// Flavor under test.
    pub flavor: KyotoFlavor,
    /// Pre-loaded keys.
    pub keys: u64,
    /// Measurement duration.
    pub duration: Duration,
}

impl Default for KyotoConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            flavor: KyotoFlavor::Cache,
            keys: 100_000,
            duration: Duration::from_millis(300),
        }
    }
}

/// The hash-table flavors (CACHE and HT DB).
#[derive(Debug)]
pub struct KyotoHashDb {
    /// Highly contended global reader-writer lock over the whole structure.
    global: AppRwLock,
    /// 16 bucket-group mutexes, each lightly contended.
    bucket_locks: Vec<AppMutex>,
    /// Extra nested locks taken by the cache flavor (LRU segments etc.).
    nested_locks: Vec<AppMutex>,
    buckets: Vec<UnsafeCell<HashMap<u64, u64>>>,
    /// Non-locking work performed per operation, in cycles (models the
    /// heavier data plane of the persistent HT DB).
    work_cycles: u64,
    nesting: usize,
}

// SAFETY: each bucket is only touched while its bucket-group mutex is held
// (and the global rwlock is held in the corresponding mode).
unsafe impl Sync for KyotoHashDb {}
unsafe impl Send for KyotoHashDb {}

impl KyotoHashDb {
    /// Creates a hash store of the given flavor.
    pub fn new(provider: &LockProvider, flavor: KyotoFlavor) -> Self {
        assert!(
            flavor != KyotoFlavor::BTree,
            "use KyotoBTree for the tree flavor"
        );
        let (work_cycles, nesting) = match flavor {
            KyotoFlavor::Cache => (0, CACHE_NESTING),
            KyotoFlavor::HashDb => (2_000, 1),
            KyotoFlavor::BTree => unreachable!(),
        };
        Self {
            global: provider.new_rwlock(),
            bucket_locks: (0..BUCKET_GROUPS).map(|_| provider.new_mutex()).collect(),
            nested_locks: (0..CACHE_NESTING).map(|_| provider.new_mutex()).collect(),
            buckets: (0..BUCKET_GROUPS)
                .map(|_| UnsafeCell::new(HashMap::new()))
                .collect(),
            work_cycles,
            nesting,
        }
    }

    fn group(&self, key: u64) -> usize {
        (key as usize) % BUCKET_GROUPS
    }

    /// Acquires the nested lock chain (cache flavor), runs `f`, releases in
    /// reverse order.
    fn with_nested<R>(&self, depth: usize, f: impl FnOnce() -> R) -> R {
        for lock in &self.nested_locks[..depth.saturating_sub(1)] {
            lock.lock();
        }
        let out = f();
        for lock in self.nested_locks[..depth.saturating_sub(1)].iter().rev() {
            lock.unlock();
        }
        out
    }

    /// Reads one key.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.global.with_read(|| {
            let group = self.group(key);
            self.bucket_locks[group].with(|| {
                self.with_nested(self.nesting, || {
                    gls_runtime::spin_cycles(self.work_cycles);
                    // SAFETY: bucket-group lock held.
                    unsafe { (*self.buckets[group].get()).get(&key).copied() }
                })
            })
        })
    }

    /// Writes one key.
    pub fn put(&self, key: u64, value: u64) {
        self.global.with_read(|| {
            let group = self.group(key);
            self.bucket_locks[group].with(|| {
                self.with_nested(self.nesting, || {
                    gls_runtime::spin_cycles(self.work_cycles);
                    // SAFETY: bucket-group lock held.
                    unsafe {
                        (*self.buckets[group].get()).insert(key, value);
                    }
                })
            })
        });
    }

    /// Structural maintenance (resize/defrag): takes the global lock in write
    /// mode, excluding every reader.
    pub fn maintain(&self) {
        self.global.with_write(|| {
            gls_runtime::spin_cycles(500);
        });
    }

    /// Total number of stored keys.
    pub fn len(&self) -> usize {
        self.global.with_write(|| {
            self.buckets
                .iter()
                .map(|b| {
                    // SAFETY: global write lock excludes all other users.
                    unsafe { (*b.get()).len() }
                })
                .sum()
        })
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The B+-tree flavor.
#[derive(Debug)]
pub struct KyotoBTree {
    /// Tree structure lock (read for lookups, write for updates) — stands in
    /// for the per-node reader-writer locks.
    tree_lock: AppRwLock,
    /// Node-cache mutexes: few and hot, the bottleneck the paper observes.
    cache_locks: Vec<AppMutex>,
    tree: UnsafeCell<BTreeMap<u64, u64>>,
}

// SAFETY: tree access is guarded by `tree_lock` in the appropriate mode.
unsafe impl Sync for KyotoBTree {}
unsafe impl Send for KyotoBTree {}

impl KyotoBTree {
    /// Creates an empty B+-tree store.
    pub fn new(provider: &LockProvider) -> Self {
        Self {
            tree_lock: provider.new_rwlock(),
            cache_locks: (0..TREE_CACHE_LOCKS)
                .map(|_| provider.new_contended_mutex())
                .collect(),
            tree: UnsafeCell::new(BTreeMap::new()),
        }
    }

    fn with_cache_lock<R>(&self, key: u64, f: impl FnOnce() -> R) -> R {
        self.cache_locks[(key as usize) % TREE_CACHE_LOCKS].with(f)
    }

    /// Reads one key.
    pub fn get(&self, key: u64) -> Option<u64> {
        // Every operation first pins tree pages through the node cache
        // (contended), then traverses the tree under a read lock.
        self.with_cache_lock(key, || {
            self.tree_lock.with_read(|| {
                // SAFETY: read lock held; lookups do not mutate the tree.
                unsafe { (*self.tree.get()).get(&key).copied() }
            })
        })
    }

    /// Writes one key.
    pub fn put(&self, key: u64, value: u64) {
        self.with_cache_lock(key, || {
            self.tree_lock.with_write(|| {
                // SAFETY: write lock held.
                unsafe {
                    (*self.tree.get()).insert(key, value);
                }
            })
        });
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.tree_lock.with_read(|| {
            // SAFETY: read lock held.
            unsafe { (*self.tree.get()).len() }
        })
    }

    /// Whether the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

enum AnyDb {
    Hash(KyotoHashDb),
    Tree(KyotoBTree),
}

impl AnyDb {
    fn get(&self, key: u64) -> Option<u64> {
        match self {
            AnyDb::Hash(db) => db.get(key),
            AnyDb::Tree(db) => db.get(key),
        }
    }

    fn put(&self, key: u64, value: u64) {
        match self {
            AnyDb::Hash(db) => db.put(key, value),
            AnyDb::Tree(db) => db.put(key, value),
        }
    }
}

/// Runs the Kyoto workload: a mix of 70% reads, 25% writes and 5% structural
/// maintenance (hash flavors only), from `threads` workers.
pub fn run(provider: &LockProvider, config: &KyotoConfig) -> SystemResult {
    let db = Arc::new(match config.flavor {
        KyotoFlavor::BTree => AnyDb::Tree(KyotoBTree::new(provider)),
        flavor => AnyDb::Hash(KyotoHashDb::new(provider, flavor)),
    });
    // Pre-load.
    for k in 0..config.keys {
        db.put(k, k);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let handles: Vec<_> = (0..config.threads)
        .map(|t| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let keys = config.keys;
            std::thread::spawn(move || {
                // Count this worker towards the process-wide runnable-task
                // count so GLK's multiprogramming detector can see it.
                let _runnable = gls_runtime::SystemLoadMonitor::global().runnable_guard();
                let mut rng = StdRng::seed_from_u64(0x4B_59 + t as u64);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..keys);
                    let dice = rng.gen_range(0..100);
                    if dice < 70 {
                        let _ = db.get(key);
                    } else if dice < 95 {
                        db.put(key, ops);
                    } else if let AnyDb::Hash(hash) = &*db {
                        hash.maintain();
                    } else {
                        db.put(key, ops);
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let operations = handles.into_iter().map(|h| h.join().unwrap()).sum();

    SystemResult {
        system: "Kyoto",
        config: config.flavor.label().to_string(),
        lock: provider.label(),
        operations,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gls_locks::LockKind;

    #[test]
    fn hash_db_roundtrip_and_len() {
        let db = KyotoHashDb::new(&LockProvider::mutex(), KyotoFlavor::Cache);
        assert!(db.is_empty());
        db.put(1, 10);
        db.put(17, 170); // same bucket group as 1 (17 % 16 == 1)
        assert_eq!(db.get(1), Some(10));
        assert_eq!(db.get(17), Some(170));
        assert_eq!(db.get(2), None);
        assert_eq!(db.len(), 2);
        db.maintain();
    }

    #[test]
    #[should_panic(expected = "KyotoBTree")]
    fn hash_constructor_rejects_tree_flavor() {
        KyotoHashDb::new(&LockProvider::mutex(), KyotoFlavor::BTree);
    }

    #[test]
    fn btree_roundtrip() {
        let db = KyotoBTree::new(&LockProvider::Direct(LockKind::Ticket));
        assert!(db.is_empty());
        for k in 0..100 {
            db.put(k, k * 2);
        }
        assert_eq!(db.len(), 100);
        assert_eq!(db.get(40), Some(80));
        assert_eq!(db.get(200), None);
    }

    #[test]
    fn concurrent_hash_access_keeps_structure_consistent() {
        let db = Arc::new(KyotoHashDb::new(
            &LockProvider::Direct(LockKind::Mcs),
            KyotoFlavor::Cache,
        ));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let key = t as u64 * 10_000 + i;
                        db.put(key, key + 1);
                        assert_eq!(db.get(key), Some(key + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len(), 8_000);
    }

    #[test]
    fn workload_runs_for_all_flavors() {
        for flavor in KyotoFlavor::ALL {
            let result = run(
                &LockProvider::glk(),
                &KyotoConfig {
                    threads: 4,
                    flavor,
                    keys: 5_000,
                    duration: Duration::from_millis(60),
                },
            );
            assert!(result.operations > 0, "flavor {}", flavor.label());
            assert_eq!(result.config, flavor.label());
        }
    }

    #[test]
    fn gls_provider_profiles_kyoto_rw_traffic() {
        let provider = LockProvider::gls_profiling();
        let result = run(
            &provider,
            &KyotoConfig {
                threads: 2,
                flavor: KyotoFlavor::Cache,
                keys: 1_000,
                duration: Duration::from_millis(60),
            },
        );
        assert!(result.operations > 0);
        let report = provider.service().unwrap().profile_report();
        let rw_entries: Vec<_> = report
            .locks
            .iter()
            .filter(|l| l.algorithm == LockKind::Rw)
            .collect();
        assert!(
            !rw_entries.is_empty(),
            "the global rwlock must be profiled through GLS: {report:?}"
        );
        assert!(
            rw_entries.iter().any(|l| l.acquisitions > 0),
            "rw entries must record acquisitions"
        );
    }

    #[test]
    fn flavor_labels_match_the_paper() {
        assert_eq!(KyotoFlavor::Cache.label(), "CACHE");
        assert_eq!(KyotoFlavor::HashDb.label(), "HT DB");
        assert_eq!(KyotoFlavor::BTree.label(), "B+-TREE");
    }
}
