//! The synchronization facade the lock protocols are written against.
//!
//! In a normal build (`cargo build`, `cargo test`) every item here is a
//! zero-cost passthrough to `std`. Under `RUSTFLAGS="--cfg gls_model"` the
//! same paths resolve to the instrumented types from [`gls_model`], whose
//! every operation is a scheduling point for the deterministic concurrency
//! explorer — which is how the protocol model tests in `crates/model/tests`
//! drive `FutexLock`, the parking lot, `AutoCore` migration and the
//! pending-free path through exhaustively many interleavings.
//!
//! The build is switched by a `cfg`, not a feature, on purpose: feature
//! unification would silently flip the whole workspace into model mode for
//! any build that enables it anywhere, whereas `--cfg gls_model` is a
//! deliberate, whole-compilation choice made only by the model-test CI
//! step.
//!
//! `Mutex`/`Condvar` are thin newtypes in the normal build rather than
//! `pub use std::sync::Mutex` re-exports: clippy's `disallowed-types` lint
//! (see `clippy.toml`) matches *resolved* def-paths, so a re-export would
//! flag every consumer of the facade. The newtype keeps the lint meaningful
//! — raw `std::sync::Mutex` anywhere else in the workspace is a violation,
//! while the facade stays the one sanctioned wrapper.

/// Atomic types: instrumented under `--cfg gls_model`, std otherwise.
pub mod atomic {
    #[cfg(gls_model)]
    pub use gls_model::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
    #[cfg(not(gls_model))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Spin hints: a budgeted scheduling point under the model (a spinning
/// virtual thread parks after K hints and yields the baton to the
/// explorer), a CPU hint otherwise.
pub mod hint {
    #[cfg(gls_model)]
    pub use gls_model::hint::spin_loop;
    #[cfg(not(gls_model))]
    pub use std::hint::spin_loop;
}

/// The `UnsafeCell` stand-in for lock-protected plain data. Under the
/// model every access records a read/write epoch against the owning
/// thread's vector clock and fails the exploration when two accesses are
/// unordered by happens-before; the normal build is a zero-cost
/// `UnsafeCell` wrapper with the same closure API.
pub mod cell {
    #[cfg(gls_model)]
    pub use gls_model::cell::ModelCell;
    #[cfg(not(gls_model))]
    pub use passthrough::ModelCell;

    #[cfg(not(gls_model))]
    mod passthrough {
        use std::cell::UnsafeCell;

        /// Passthrough `UnsafeCell` with the model cell's closure API.
        #[derive(Debug, Default)]
        pub struct ModelCell<T> {
            inner: UnsafeCell<T>,
        }

        // SAFETY: a plain-data container like UnsafeCell; sending it moves
        // the value with exclusive access.
        unsafe impl<T: Send> Send for ModelCell<T> {}
        // SAFETY: sharing only hands out raw pointers via `with`/`with_mut`;
        // callers are responsible for synchronizing the dereference (the
        // model build of the same API verifies that they do).
        unsafe impl<T: Send> Sync for ModelCell<T> {}

        impl<T> ModelCell<T> {
            pub const fn new(value: T) -> Self {
                Self {
                    inner: UnsafeCell::new(value),
                }
            }

            /// Runs `f` with a shared raw pointer to the value.
            #[inline]
            pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
                f(self.inner.get())
            }

            /// Runs `f` with an exclusive raw pointer to the value.
            #[inline]
            pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
                f(self.inner.get())
            }

            #[inline]
            pub fn get_mut(&mut self) -> &mut T {
                self.inner.get_mut()
            }

            #[inline]
            pub fn into_inner(self) -> T {
                self.inner.into_inner()
            }
        }
    }
}

/// Thread spawn/join/yield: virtual threads inside a model execution.
pub mod thread {
    #[cfg(gls_model)]
    pub use gls_model::thread::{spawn, yield_now, JoinHandle};
    #[cfg(not(gls_model))]
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Blocking primitives. `WaitTimeoutResult` is the facade's own type in
/// both modes (std's has no public constructor, which the model needs).
pub mod sync {
    #[cfg(gls_model)]
    pub use gls_model::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
    #[cfg(not(gls_model))]
    pub use passthrough::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    // The facade IS the sanctioned wrapper around the raw std primitives
    // (see clippy.toml); this is the one place they may appear.
    #[allow(clippy::disallowed_types)]
    #[cfg(not(gls_model))]
    mod passthrough {
        use std::fmt;
        use std::ops::{Deref, DerefMut};
        use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
        use std::time::Duration;

        /// Passthrough wrapper around the std mutex.
        // The facade is the one sanctioned home for the raw std primitive;
        // everything else goes through this wrapper (see clippy.toml).
        #[allow(clippy::disallowed_types)]
        pub struct Mutex<T: ?Sized> {
            inner: std::sync::Mutex<T>,
        }

        /// Guard for [`Mutex`]; a plain newtype, so dropping it is exactly
        /// a std guard drop.
        pub struct MutexGuard<'a, T: ?Sized> {
            inner: std::sync::MutexGuard<'a, T>,
        }

        impl<T: Default> Default for Mutex<T> {
            fn default() -> Self {
                Self::new(T::default())
            }
        }

        impl<T> Mutex<T> {
            pub const fn new(value: T) -> Self {
                Self {
                    inner: std::sync::Mutex::new(value),
                }
            }

            pub fn into_inner(self) -> LockResult<T> {
                self.inner.into_inner()
            }
        }

        impl<T: ?Sized> Mutex<T> {
            #[inline]
            pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
                match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard { inner: g }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        inner: p.into_inner(),
                    })),
                }
            }

            #[inline]
            pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
                match self.inner.try_lock() {
                    Ok(g) => Ok(MutexGuard { inner: g }),
                    Err(TryLockError::Poisoned(p)) => {
                        Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                            inner: p.into_inner(),
                        })))
                    }
                    Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                }
            }

            #[inline]
            pub fn get_mut(&mut self) -> LockResult<&mut T> {
                self.inner.get_mut()
            }
        }

        impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.inner.fmt(f)
            }
        }

        impl<T: ?Sized> Deref for MutexGuard<'_, T> {
            type Target = T;
            #[inline]
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
            #[inline]
            fn deref_mut(&mut self) -> &mut T {
                &mut self.inner
            }
        }

        /// Result of [`Condvar::wait_timeout`]; mirrors the std API.
        #[derive(Clone, Copy, Debug)]
        pub struct WaitTimeoutResult {
            timed_out: bool,
        }

        impl WaitTimeoutResult {
            pub fn timed_out(&self) -> bool {
                self.timed_out
            }
        }

        /// Passthrough wrapper around the std condvar.
        #[derive(Default)]
        pub struct Condvar {
            inner: std::sync::Condvar,
        }

        impl Condvar {
            pub const fn new() -> Self {
                Self {
                    inner: std::sync::Condvar::new(),
                }
            }

            #[inline]
            pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
                match self.inner.wait(guard.inner) {
                    Ok(g) => Ok(MutexGuard { inner: g }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        inner: p.into_inner(),
                    })),
                }
            }

            #[inline]
            pub fn wait_timeout<'a, T>(
                &self,
                guard: MutexGuard<'a, T>,
                dur: Duration,
            ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
                match self.inner.wait_timeout(guard.inner, dur) {
                    Ok((g, r)) => Ok((
                        MutexGuard { inner: g },
                        WaitTimeoutResult {
                            timed_out: r.timed_out(),
                        },
                    )),
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        Err(PoisonError::new((
                            MutexGuard { inner: g },
                            WaitTimeoutResult {
                                timed_out: r.timed_out(),
                            },
                        )))
                    }
                }
            }

            #[inline]
            pub fn notify_one(&self) {
                self.inner.notify_one();
            }

            #[inline]
            pub fn notify_all(&self) {
                self.inner.notify_all();
            }
        }

        impl fmt::Debug for Condvar {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.pad("Condvar { .. }")
            }
        }
    }
}

/// True when the current thread is a virtual thread of an active model
/// execution (always false outside `--cfg gls_model` builds — the check is
/// compiled out).
#[inline]
pub fn in_model_execution() -> bool {
    #[cfg(gls_model)]
    {
        gls_model::in_execution()
    }
    #[cfg(not(gls_model))]
    {
        false
    }
}
