//! Model checks for the deadlock detector's publish-edge → walk → confirm
//! protocol.
//!
//! The detector's correctness argument (waiting records published SeqCst
//! before any walk reads them; epochs proving a participant never stopped
//! waiting between walk and confirmation) was previously exercised only by
//! the stress suite. Here the same `DebugState` code runs under the
//! exhaustive explorer via the `gls::debug_model` wrappers, checking the
//! two sides of the contract on every interleaving:
//!
//! * **no missed cycle** — when two threads deadlock, whichever publishes
//!   its edge second must see the full cycle on its walk;
//! * **no phantom confirmation** — a candidate assembled from records that
//!   churned (the thread made progress, then re-waited) must fail
//!   confirmation, even when it re-waited on the *same* address.
//!
//! The epoch-skipping confirmation bug the shipped protocol fixed is
//! re-seeded behind `--cfg gls_model` and the explorer rediscovers it.
//!
//! Run with `RUSTFLAGS="--cfg gls_model" cargo test -p gls_model --test
//! detector`.

#![cfg(gls_model)]

use std::sync::Arc;

use gls::debug_model::ModelDetector;
use gls_model::{Explorer, FailureKind};
use gls_sync::atomic::{AtomicBool, Ordering};
use gls_sync::thread;

/// Lock addresses for the two-lock AB-BA scenario. Ownership is fixed for
/// the whole execution: thread 0 holds `LOCK_A`, thread 1 holds `LOCK_B`,
/// and each wants the other's lock — the canonical cycle.
const LOCK_A: usize = 0x10;
const LOCK_B: usize = 0x20;

fn abba_holders(addr: usize) -> Vec<u32> {
    match addr {
        LOCK_A => vec![0],
        LOCK_B => vec![1],
        _ => Vec::new(),
    }
}

/// No missed cycle: both threads publish their waits-for edge and then
/// walk. The SeqCst publish happens strictly before the walk's reads, so
/// whichever thread publishes second is guaranteed to see both edges and
/// close the cycle — on *every* schedule, at least one walk must succeed.
#[test]
fn concurrent_walks_never_miss_the_cycle() {
    Explorer::exhaustive().check("detector-no-missed-cycle", || {
        let detector = Arc::new(ModelDetector::new());
        let walkers: Vec<_> = [(0u32, LOCK_B), (1u32, LOCK_A)]
            .into_iter()
            .map(|(me, wants)| {
                let detector = Arc::clone(&detector);
                thread::spawn(move || {
                    detector.set_waiting(me, wants);
                    detector.detect(me, wants, abba_holders)
                })
            })
            .collect();
        let found: Vec<_> = walkers
            .into_iter()
            .map(|w| w.join().expect("model walker panicked"))
            .collect();
        assert!(
            found.iter().flatten().next().is_some(),
            "a deadlocked pair walked and neither saw the cycle"
        );
        for candidate in found.iter().flatten() {
            assert!(
                candidate.involves(0) && candidate.involves(1),
                "detected cycle omits a participant"
            );
        }
    });
}

/// No phantom confirmation: after the walk captured its epochs, thread 1
/// makes progress and re-waits on the *same* address (the nastiest churn —
/// the waiting record looks identical). The epoch check must reject the
/// stale candidate, and a fresh walk over the now-stable records must
/// produce a candidate that confirms. The churn runs on a virtual thread
/// with a flag handshake, so the explorer also drives every interleaving
/// of the churn's SeqCst stores against the root's bounded-spin wait.
#[test]
fn confirmation_rejects_a_churned_wait() {
    Explorer::exhaustive().check("detector-no-phantom", || {
        let detector = Arc::new(ModelDetector::new());
        detector.set_waiting(1, LOCK_A);
        detector.set_waiting(0, LOCK_B);
        let stale = detector
            .detect(0, LOCK_B, abba_holders)
            .expect("sequential walk must see the full cycle");
        let churned = Arc::new(AtomicBool::new(false));
        let churner = {
            let detector = Arc::clone(&detector);
            let churned = Arc::clone(&churned);
            thread::spawn(move || {
                // Thread 1 briefly acquired (progress!) and re-waited on
                // the same lock: address unchanged, epoch bumped twice.
                detector.clear_waiting(1);
                detector.set_waiting(1, LOCK_A);
                churned.store(true, Ordering::Release);
            })
        };
        while !churned.load(Ordering::Acquire) {
            gls_sync::hint::spin_loop();
        }
        assert!(
            !detector.still_deadlocked(&stale, abba_holders),
            "confirmed a cycle whose participant made progress mid-walk"
        );
        churner.join().expect("model churner panicked");
        // The records are stable again: a fresh walk-then-confirm must
        // still catch the (genuinely re-formed) deadlock.
        let fresh = detector
            .detect(0, LOCK_B, abba_holders)
            .expect("fresh walk must see the re-formed cycle");
        assert!(
            detector.still_deadlocked(&fresh, abba_holders),
            "epoch validation rejected a stable, genuine cycle"
        );
    });
}

/// A walk racing a retraction: while the root walks, thread 1 retracts its
/// edge for good (it acquired the lock and moved on). Depending on the
/// schedule the walk may or may not assemble a candidate — but whenever it
/// does, confirmation must reject it, because the cycle no longer exists.
#[test]
fn walk_racing_a_retraction_yields_no_confirmable_candidate() {
    Explorer::exhaustive().check("detector-walk-vs-retract", || {
        let detector = Arc::new(ModelDetector::new());
        detector.set_waiting(1, LOCK_A);
        detector.set_waiting(0, LOCK_B);
        let retractor = {
            let detector = Arc::clone(&detector);
            thread::spawn(move || {
                detector.clear_waiting(1);
            })
        };
        let candidate = detector.detect(0, LOCK_B, abba_holders);
        retractor.join().expect("model retractor panicked");
        if let Some(candidate) = candidate {
            assert!(
                !detector.still_deadlocked(&candidate, abba_holders),
                "confirmed a cycle after a participant retracted its wait"
            );
        }
    });
}

/// Re-seeds the historical confirmation bug: checking ownership and
/// waiting *addresses* but not epochs. Under churn that re-waits on the
/// same address the buggy confirmation sees records identical to the
/// walk's and reports a phantom deadlock; the explorer must find the
/// interleaving that exposes it (the PR-7 rediscovery bar).
#[test]
fn explorer_rediscovers_epoch_skipping_confirmation() {
    let failure = Explorer::exhaustive()
        .find_failure("detector-epoch-skip", || {
            let detector = Arc::new(ModelDetector::new());
            detector.set_waiting(1, LOCK_A);
            detector.set_waiting(0, LOCK_B);
            let stale = detector
                .detect(0, LOCK_B, abba_holders)
                .expect("sequential walk must see the full cycle");
            let churner = {
                let detector = Arc::clone(&detector);
                thread::spawn(move || {
                    detector.clear_waiting(1);
                    detector.set_waiting(1, LOCK_A);
                })
            };
            churner.join().expect("model churner panicked");
            assert!(
                !detector.still_deadlocked_no_epochs(&stale, abba_holders),
                "epoch-skipping confirmation validated a churned cycle"
            );
        })
        .expect("the explorer must expose the epoch-skipping bug");
    assert_eq!(
        failure.kind,
        FailureKind::Panic,
        "expected the phantom-confirmation assertion, got: {failure}"
    );
}
