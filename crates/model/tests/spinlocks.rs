//! Model checks for the pure spin algorithms (TAS, TTAS, ticket, MCS, CLH).
//!
//! These were stress-only until the bounded-spin shim: a spinning virtual
//! thread used to hold the baton forever, so exhaustive DFS could never
//! get past the first contended acquisition. Now `gls_sync::hint::spin_loop`
//! parks the spinner after a small budget and any other thread's progress
//! re-readies it, so the same five algorithms the stress suite hammers run
//! under the explorer — and, since the critical sections mutate a
//! [`ModelCell`], under the happens-before race detector too: a lock that
//! admitted two holders would fail as a lost increment *and* as a data
//! race, on the exact interleaving that produced it.
//!
//! Run with `RUSTFLAGS="--cfg gls_model" cargo test -p gls_model --test
//! spinlocks`.

#![cfg(gls_model)]

use std::sync::Arc;

use gls_locks::{ClhLock, McsLock, QueueInformed, RawLock, TasLock, TicketLock, TtasLock};
use gls_model::{Explorer, FailureKind};
use gls_sync::cell::ModelCell;
use gls_sync::thread;

/// Exhaustive mutual-exclusion check: two threads increment a plain value
/// under the lock. Any schedule admitting two holders loses an increment
/// (assertion) or, more precisely, races on the cell (race detector).
fn check_mutual_exclusion<L: RawLock + Default + Send + Sync + 'static>(name: &'static str) {
    Explorer::exhaustive().check(name, || {
        let lock = Arc::new(L::default());
        let counter = Arc::new(ModelCell::new(0u64));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    lock.lock();
                    // SAFETY: serialized by the lock under test — the claim
                    // the race detector verifies on every schedule.
                    counter.with_mut(|p| unsafe { *p += 1 });
                    lock.unlock();
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("model worker panicked");
        }
        // SAFETY: every writer has joined.
        let total = counter.with(|p| unsafe { *p });
        assert_eq!(total, 2, "an increment was lost under the lock");
        assert!(!lock.is_locked(), "lock left held after drain");
    });
}

#[test]
fn tas_mutual_exclusion() {
    check_mutual_exclusion::<TasLock>("tas-mutex");
}

#[test]
fn ttas_mutual_exclusion() {
    check_mutual_exclusion::<TtasLock>("ttas-mutex");
}

#[test]
fn ticket_mutual_exclusion() {
    check_mutual_exclusion::<TicketLock>("ticket-mutex");
}

#[test]
fn mcs_mutual_exclusion() {
    check_mutual_exclusion::<McsLock>("mcs-mutex");
}

#[test]
fn clh_mutual_exclusion() {
    check_mutual_exclusion::<ClhLock>("clh-mutex");
}

/// FIFO admission: the root holds the lock while a waiter draws its
/// ticket (the root releases only once `queue_length` shows the draw),
/// then the root re-draws. A FIFO lock must admit the queued waiter
/// before the root's later ticket on every schedule; a lock that let the
/// re-acquirer barge would record the root first.
///
/// Seeded random sweep rather than exhaustive DFS: with both threads in
/// spin loops (the waiter on `owner`, the root on `queue_length`), every
/// schedule point where both are spin-parked forks the tree on which one
/// the scheduler resumes — a *voluntary* switch the preemption bound
/// doesn't cap — so the exhaustive tree is exponential in the spin
/// depth and runs for minutes. A deterministic 1000-schedule sweep
/// covers the handoff window (release store vs waiter probe vs re-draw)
/// many times over, replays bit-for-bit from the fixed seed, and stays
/// well inside the CI runtime budget.
#[test]
fn ticket_admission_is_fifo() {
    Explorer::random(1_000, 0x7160).check("ticket-fifo", || {
        let lock = Arc::new(TicketLock::new());
        let order = Arc::new(ModelCell::new(Vec::new()));
        lock.lock();
        let waiter = {
            let lock = Arc::clone(&lock);
            let order = Arc::clone(&order);
            thread::spawn(move || {
                lock.lock();
                // SAFETY: serialized by the ticket lock.
                order.with_mut(|p| unsafe { (*p).push(1u32) });
                lock.unlock();
            })
        };
        // Hold until the waiter's ticket is visibly drawn, so the draw
        // order (waiter first, root's re-draw second) is pinned on every
        // schedule and only the admission order is left to the lock.
        while lock.queue_length() < 2 {
            gls_sync::hint::spin_loop();
        }
        lock.unlock();
        lock.lock();
        // SAFETY: serialized by the ticket lock.
        order.with_mut(|p| unsafe { (*p).push(2u32) });
        lock.unlock();
        waiter.join().expect("model waiter panicked");
        // SAFETY: every writer has joined.
        let served = order.with(|p| unsafe { (*p).clone() });
        assert_eq!(served, vec![1, 2], "ticket lock admitted out of draw order");
    });
}

/// The race detector covers the spin suites for free: a thread that
/// touches the shared value *without* taking the lock is flagged as a data
/// race — with the schedule — even on interleavings where the final count
/// happens to come out right.
#[test]
fn missing_lock_acquisition_is_flagged_as_a_race() {
    let failure = Explorer::exhaustive()
        .find_failure("tas-missing-lock", || {
            let lock = Arc::new(TasLock::new());
            let counter = Arc::new(ModelCell::new(0u64));
            let disciplined = {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    lock.lock();
                    // SAFETY: serialized by the lock.
                    counter.with_mut(|p| unsafe { *p += 1 });
                    lock.unlock();
                })
            };
            let rogue = {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    // The seeded bug: no lock acquisition around the access.
                    // SAFETY: dereference of a live allocation; the missing
                    // synchronization is exactly what the test expects the
                    // detector to flag.
                    counter.with_mut(|p| unsafe { *p += 1 });
                })
            };
            disciplined.join().expect("model worker panicked");
            rogue.join().expect("model worker panicked");
        })
        .expect("the explorer must flag the unlocked access");
    assert_eq!(
        failure.kind,
        FailureKind::Race,
        "expected a data race, got: {failure}"
    );
}
