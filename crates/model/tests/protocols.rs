//! Model checks for the GLS lock protocols.
//!
//! These tests only exist in model builds: run them with
//!
//! ```sh
//! RUSTFLAGS="--cfg gls_model" cargo test -p gls_model --test protocols
//! ```
//!
//! Every test drives *real* protocol code — `FutexLock`, `FutexRwLock`,
//! `AutoBlockingMutex`, `GlsService` — through the deterministic explorer:
//! exhaustive DFS over thread interleavings with a preemption bound, plus
//! one seeded-random sweep. A "lost wakeup" or "stranded waiter" surfaces
//! as a deadlock the driver detects (no runnable thread, unfinished
//! threads); safety violations surface as assertion panics inside the
//! model. The two `rediscovers_*` tests re-introduce bugs this repository
//! actually shipped and fixed, and check the explorer finds them.
//!
//! Test-design rules (the explorer makes these hard requirements):
//! * orchestration prefers blocking primitives (park, condvar, join);
//!   poll loops are tolerable only through `gls_sync::hint::spin_loop`,
//!   whose model-mode budget parks the spinner after a few iterations —
//!   the shim that also lets the pure spin algorithms run under the
//!   explorer (see the `spinlocks` suite);
//! * GLS service models still pin entries to `LockKind::Futex` (or
//!   `Mutex`) so each test exercises one protocol, not a migration;
//! * shared mutable state lives in a [`ModelCell`], so every admission
//!   bug is caught twice: as a lost update by the final assertion, and as
//!   a data race by the happens-before detector, on the exact schedule
//!   that produced it.

#![cfg(gls_model)]

use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
use std::sync::Arc;

use gls::glk::{AutoBlockingMutex, BlockingDensity};
use gls::{GlsCondvar, GlsService, LockKind};
use gls_locks::cohort::COHORT_BYPASS_LIMIT;
use gls_locks::park::DEFAULT_PARK_TOKEN;
use gls_locks::{
    FutexLock, FutexRwLock, ParkResult, ParkingLot, QueueInformed, RawLock, RawRwLock, RawTryLock,
};
use gls_model::{Explorer, FailureKind};
use gls_sync::cell::ModelCell;
use gls_sync::thread;

/// A counter the model threads mutate through raw, unsynchronized writes.
/// The [`ModelCell`] reports every access to the race detector: if the
/// lock under test ever admits two holders, the explorer flags the data
/// race on the exact interleaving — and, should the accesses merely
/// overlap without racing, the final assertion still catches the lost
/// increment.
struct RacyCounter(ModelCell<u64>);

impl RacyCounter {
    fn new() -> Self {
        RacyCounter(ModelCell::new(0))
    }

    /// A deliberately non-atomic read-modify-write.
    fn bump(&self) {
        // SAFETY: serialized by the lock under test — the claim the race
        // detector verifies on every schedule.
        self.0.with_mut(|p| unsafe { *p += 1 });
    }

    fn get(&self) -> u64 {
        // SAFETY: called after every writer joined.
        self.0.with(|p| unsafe { *p })
    }
}

/// A condvar predicate: a plain bool whose every access must happen under
/// the service lock of the test's address — which is the claim the model
/// (and now the race detector) checks.
struct SharedFlag(ModelCell<bool>);

impl SharedFlag {
    fn new() -> Self {
        SharedFlag(ModelCell::new(false))
    }

    fn read(&self) -> bool {
        // SAFETY: caller holds the service lock.
        self.0.with(|p| unsafe { *p })
    }

    fn set(&self) {
        // SAFETY: caller holds the service lock.
        self.0.with_mut(|p| unsafe { *p = true })
    }
}

/// Property 1 — `FutexLock` provides mutual exclusion and loses no
/// wakeups. Three threads contend for one lock (model spin budget is a
/// single attempt, so park/unpark and the handoff streak — model bound 2 —
/// are all reachable). A lost wakeup is a deadlock; a broken handoff
/// leaves the word dirty.
#[test]
fn futex_lock_mutual_exclusion_and_no_lost_wakeups() {
    Explorer::exhaustive().check("futex-mutex", || {
        let lock = Arc::new(FutexLock::new());
        let counter = Arc::new(RacyCounter::new());
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    lock.lock();
                    counter.bump();
                    lock.unlock();
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("model worker panicked");
        }
        assert_eq!(counter.get(), 3, "an increment was lost under the lock");
        assert!(!lock.is_locked(), "lock word left locked after drain");
        assert_eq!(lock.queue_length(), 0, "waiters left parked after drain");
    });
}

/// Property 2 — cohort handoff never bypasses the queue head more than
/// `COHORT_BYPASS_LIMIT` times in a row, across every interleaving of a
/// topology where bypassing is reachable: a remote waiter at the head of
/// the queue and a same-domain waiter behind it at handoff time.
///
/// The scenario needs four threads because a bypass needs history: an
/// ordinary wake must first advance the streak (H's release), a thief from
/// the local domain (E) must then hold the lock while the woken local
/// waiter re-parks *behind* the remote one, and E's release is the handoff
/// that may bypass. The coverage flag proves the bypass branch actually
/// ran in at least one execution.
#[test]
fn futex_cohort_bypass_is_bounded() {
    static SAW_BYPASS: AtomicBool = AtomicBool::new(false);
    Explorer::exhaustive().check("futex-cohort", || {
        let lock = Arc::new(FutexLock::new());
        let counter = Arc::new(RacyCounter::new());
        // The root holds the lock while the two parkers queue up: its
        // release is the ordinary wake that builds the streak. The thief
        // never parks — a single try-lock in the wake window is enough to
        // reach the re-park-behind-the-remote shape on some schedule.
        gls_runtime::topology::set_model_domain(Some(0));
        lock.lock();
        let parkers: Vec<_> = [0usize, 1] // local, then remote
            .into_iter()
            .map(|domain| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    gls_runtime::topology::set_model_domain(Some(domain));
                    lock.lock();
                    counter.bump();
                    lock.unlock_cohort(true);
                })
            })
            .collect();
        let thief = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                gls_runtime::topology::set_model_domain(Some(0));
                if lock.try_lock() {
                    lock.unlock_cohort(true);
                }
            })
        };
        lock.unlock_cohort(true);
        for parker in parkers {
            parker.join().expect("model parker panicked");
        }
        thief.join().expect("model thief panicked");
        assert_eq!(counter.get(), 2, "an increment was lost under the lock");
        assert!(!lock.is_locked(), "lock word left locked after drain");
        assert_eq!(lock.queue_length(), 0, "waiters left parked after drain");
        let run = lock.model_max_consecutive_head_bypasses();
        assert!(
            run <= COHORT_BYPASS_LIMIT,
            "cohort handoff bypassed the queue head {run} times in a row \
             (limit {COHORT_BYPASS_LIMIT})"
        );
        if run > 0 {
            SAW_BYPASS.store(true, StdOrdering::Relaxed);
        }
    });
    assert!(
        SAW_BYPASS.load(StdOrdering::Relaxed),
        "no execution reached a head bypass — the scenario no longer \
         exercises the cohort policy"
    );
}

/// Property 3 — the Auto backend never loses a waiter across a backend
/// flip. Two threads fight for an [`AutoBlockingMutex`] while the root
/// thread moves the blocking-density population across the decision
/// threshold, so on some schedules the backend migrates per-lock ⇄ parking
/// mid-contention. A waiter stranded on the abandoned backend is a
/// deadlock the driver reports.
#[test]
fn auto_backend_migration_loses_no_waiter() {
    static SAW_FLIP_TO_PARKING: AtomicBool = AtomicBool::new(false);
    static SAW_FLIP_BACK: AtomicBool = AtomicBool::new(false);
    Explorer::exhaustive().check("auto-migration", || {
        let lock = Arc::new(AutoBlockingMutex::new());
        let density = Arc::new(BlockingDensity::new());
        let counter = Arc::new(RacyCounter::new());
        const THRESHOLD: usize = 1;
        // Pin the first decision: with the population at zero the backend
        // decides per-lock, so any execution that *ends* on the parking
        // backend must have migrated mid-run.
        lock.lock(&density, THRESHOLD);
        lock.unlock(&density, THRESHOLD);
        assert_eq!(lock.uses_parking_lot(), Some(false));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let density = Arc::clone(&density);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    lock.lock(&density, THRESHOLD);
                    counter.bump();
                    lock.unlock(&density, THRESHOLD);
                })
            })
            .collect();
        // Racing with the workers: push the live blocking population over
        // the threshold, so re-decisions taken during the contention above
        // flip the backend and drain waiters off the abandoned one.
        density.enter();
        for worker in workers {
            worker.join().expect("model worker panicked");
        }
        let migrated = lock.uses_parking_lot() == Some(true);
        if migrated {
            SAW_FLIP_TO_PARKING.store(true, StdOrdering::Relaxed);
        }
        // Phase 2 — migrate back (the direction whose release must
        // *broadcast* to the abandoned futex queue) while one more locker
        // races the flip.
        density.leave();
        let straggler = {
            let lock = Arc::clone(&lock);
            let density = Arc::clone(&density);
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                lock.lock(&density, THRESHOLD);
                counter.bump();
                lock.unlock(&density, THRESHOLD);
            })
        };
        lock.lock(&density, THRESHOLD);
        lock.unlock(&density, THRESHOLD);
        straggler.join().expect("model straggler panicked");
        if migrated && lock.uses_parking_lot() == Some(false) {
            SAW_FLIP_BACK.store(true, StdOrdering::Relaxed);
        }
        assert_eq!(counter.get(), 3, "an increment was lost across the flip");
        assert!(!lock.is_locked(), "lock left held after drain");
        assert_eq!(lock.queue_length(), 0, "waiters left parked after drain");
    });
    assert!(
        SAW_FLIP_TO_PARKING.load(StdOrdering::Relaxed),
        "no execution migrated per-lock → parking — the scenario no longer \
         exercises the flip"
    );
    assert!(
        SAW_FLIP_BACK.load(StdOrdering::Relaxed),
        "no execution migrated parking → per-lock — the broadcast drain \
         path was never exercised"
    );
}

/// Property 4 — the pending-free protocol never resurrects a stale entry
/// and never strands a racing user. One thread locks/unlocks an address
/// through the service while another frees it; the root then re-creates
/// the address. Every interleaving must keep all operations well-defined
/// (the racing locker either beats the free or re-creates the entry) and
/// leave the service able to serve the address again.
#[test]
fn pending_free_never_resurrects_stale_entries() {
    static SAW_MARKER_RELEASE: AtomicBool = AtomicBool::new(false);
    Explorer::exhaustive().check("pending-free", || {
        let service = Arc::new(GlsService::new());
        let slot = Arc::new(0u8);
        let addr = Arc::as_ptr(&slot) as usize;
        // Materialize the entry with an explicitly blocking algorithm:
        // spin algorithms are not ported to the model facade.
        service
            .lock_with(LockKind::Futex, addr)
            .expect("create entry");
        service.unlock_addr(addr).expect("release fresh entry");
        let locker = {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                service
                    .lock_with(LockKind::Futex, addr)
                    .expect("racing lock");
                if service.lock_count() == 0 {
                    // The free claimed the address while we hold its lock:
                    // the unlock below must resolve through the pending-
                    // free marker, not the table.
                    SAW_MARKER_RELEASE.store(true, StdOrdering::Relaxed);
                }
                service.unlock_addr(addr).expect("racing unlock");
            })
        };
        let freer = {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                // May observe the entry live or already gone; both are
                // fine — what must never happen is a deadlock or a
                // use-after-retire panic in the locker.
                let _ = service.free_addr(addr);
            })
        };
        locker.join().expect("locker panicked");
        freer.join().expect("freer panicked");
        service
            .lock_with(LockKind::Futex, addr)
            .expect("address must be creatable after a free");
        service.unlock_addr(addr).expect("release re-created entry");
        drop(slot);
    });
    assert!(
        SAW_MARKER_RELEASE.load(StdOrdering::Relaxed),
        "no execution released through the pending-free marker — the \
         scenario no longer exercises the unmap window"
    );
}

/// Property 5 — condvar requeue-on-notify never strands a waiter behind a
/// free mutex. The waiter blocks on the service condvar under a futex
/// entry; the notifier flips the predicate and notifies *while holding the
/// mutex*, so the waiter is requeued onto the mutex word and must be woken
/// by the notifier's unlock on every schedule. A requeue onto a word
/// nobody releases again would deadlock.
#[test]
fn condvar_requeue_strands_no_waiter() {
    Explorer::exhaustive().check("condvar-requeue", || {
        let service = Arc::new(GlsService::new());
        let cv = Arc::new(GlsCondvar::new());
        let flag = Arc::new(SharedFlag::new());
        let slot = Arc::new(0u8);
        let addr = Arc::as_ptr(&slot) as usize;
        service
            .lock_with(LockKind::Futex, addr)
            .expect("create entry");
        service.unlock_addr(addr).expect("release fresh entry");
        let waiter = {
            let service = Arc::clone(&service);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                service.lock_with(LockKind::Futex, addr).expect("lock");
                while !flag.read() {
                    service.wait_addr(&cv, addr).expect("wait");
                }
                service.unlock_addr(addr).expect("unlock");
            })
        };
        let notifier = {
            let service = Arc::clone(&service);
            let cv = Arc::clone(&cv);
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                service.lock_with(LockKind::Futex, addr).expect("lock");
                flag.set();
                // Notify while holding the mutex: the waiter (if already
                // asleep) is requeued onto the mutex word and must ride
                // the unlock below.
                service.notify_one_addr(&cv, addr);
                service.unlock_addr(addr).expect("unlock");
            })
        };
        waiter.join().expect("waiter panicked");
        notifier.join().expect("notifier panicked");
        drop(slot);
    });
}

/// Regression (PR 5) — a release that abandons a futex word must
/// *broadcast*. The one-wake variant this repository originally shipped
/// relied on each woken waiter re-acquiring and re-releasing the word, but
/// a requeued condvar waiter re-acquires through whatever now serves the
/// lock and never touches the abandoned word again — stranding everyone
/// queued behind it. The explorer must rediscover that stranding as a
/// deadlock; the shipped broadcast must pass the same model clean.
#[test]
fn rediscovers_the_abandoned_word_single_wake_bug() {
    // Two parked waiters shaped like requeued condvar waiters: kind-0
    // tokens, and — crucially — no re-release of the word when woken.
    let scenario = |wake_all: bool| {
        move || {
            let lock = Arc::new(FutexLock::new());
            let holder = {
                let lock = Arc::clone(&lock);
                thread::spawn(move || {
                    lock.lock();
                    if wake_all {
                        lock.unlock_and_wake_all();
                    } else {
                        lock.model_unlock_and_wake_one();
                    }
                })
            };
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    thread::spawn(move || {
                        let result = ParkingLot::global().park(
                            lock.park_addr(),
                            DEFAULT_PARK_TOKEN,
                            || lock.is_locked(),
                            || {},
                            None,
                        );
                        // Invalid means the word was already free when we
                        // tried to park — a schedule with nothing to check.
                        assert!(matches!(
                            result,
                            ParkResult::Unparked(_) | ParkResult::Invalid
                        ));
                    })
                })
                .collect();
            holder.join().expect("holder panicked");
            for waiter in waiters {
                waiter.join().expect("waiter panicked");
            }
        }
    };

    let failure = Explorer::exhaustive()
        .cleanup(|| ParkingLot::global().model_purge())
        .find_failure("abandoned-word-single-wake", scenario(false))
        .expect("the explorer must find the stranded waiter the single-wake release leaves");
    assert_eq!(
        failure.kind,
        FailureKind::Deadlock,
        "expected a stranded-waiter deadlock, got: {failure}"
    );

    // The shipped fix — broadcast on abandonment — passes the same model.
    Explorer::exhaustive()
        .cleanup(|| ParkingLot::global().model_purge())
        .check("abandoned-word-broadcast", scenario(true));
}

/// Regression (PR 6) — `FutexRwLock` releases must run the handoff
/// streak. The pre-streak policy woke the first parked writer with an
/// ordinary token every time and let it re-contend; a barger could steal
/// the word in the wake window again and again, bypassing parked writers
/// without bound. With the streak, an ordinary writer wake needs the
/// streak at zero and leaves it at one, and only a handoff or a queue
/// drain returns it to zero — so ordinary-wake runs are bounded at one.
/// The explorer must find a two-in-a-row run under the old policy and
/// verify the bound under the shipped one.
#[test]
fn rediscovers_the_writer_wake_streak_bug() {
    let scenario = |pre_handoff: bool| {
        move || {
            let rw = Arc::new(FutexRwLock::new());
            let unlock = move |rw: &FutexRwLock| {
                if pre_handoff {
                    rw.model_write_unlock_pre_handoff();
                } else {
                    rw.write_unlock();
                }
            };
            // The root holds the lock while two victim writers park: two
            // victims keep the queue non-empty across a wake, which is
            // what lets an unbounded policy string ordinary wakes together
            // without an intervening drain.
            rw.write_lock();
            let victims: Vec<_> = (0..2)
                .map(|_| {
                    let rw = Arc::clone(&rw);
                    thread::spawn(move || {
                        rw.write_lock();
                        unlock(&rw);
                    })
                })
                .collect();
            // The barger: one try-lock (never parks), stealing the word
            // inside a wake-to-reacquire window on some schedules.
            let barger = {
                let rw = Arc::clone(&rw);
                thread::spawn(move || {
                    if rw.try_write_lock() {
                        unlock(&rw);
                    }
                })
            };
            unlock(&rw);
            for victim in victims {
                victim.join().expect("victim panicked");
            }
            barger.join().expect("barger panicked");
            assert!(!rw.is_write_locked(), "word left write-locked");
            let run = rw.model_max_consecutive_writer_bypasses();
            assert!(
                run <= 1,
                "{run} consecutive ordinary writer wakes — parked writers \
                 can be bypassed without bound"
            );
        }
    };

    let failure = Explorer::exhaustive()
        .cleanup(|| ParkingLot::global().model_purge())
        .find_failure("rw-pre-streak-release", scenario(true))
        .expect("the explorer must find an unbounded ordinary-wake run under the old policy");
    assert_eq!(
        failure.kind,
        FailureKind::Panic,
        "expected the bypass-bound assertion to fire, got: {failure}"
    );

    // The shipped streak policy holds the bound on every schedule.
    Explorer::exhaustive()
        .cleanup(|| ParkingLot::global().model_purge())
        .check("rw-streak-release", scenario(false));
}

/// Seeded random sweep — long, non-exhaustive schedules over the futex
/// mutex model. `GLS_MODEL_ITERS` scales the iteration count (CI's
/// release lane runs 10 000); `GLS_MODEL_SEED` replays one failing seed
/// printed by a previous run.
#[test]
fn random_sweep_futex_mutex() {
    Explorer::random_from_env(2_000).check("futex-mutex-random", || {
        let lock = Arc::new(FutexLock::new());
        let counter = Arc::new(RacyCounter::new());
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..2 {
                        lock.lock();
                        counter.bump();
                        lock.unlock();
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("model worker panicked");
        }
        assert_eq!(counter.get(), 6, "an increment was lost under the lock");
        assert!(!lock.is_locked(), "lock word left locked after drain");
        assert_eq!(lock.queue_length(), 0, "waiters left parked after drain");
    });
}
