//! Model checks for the CLHT bucket/resize protocol.
//!
//! The table was stress-only until the bounded-spin shim: writers that lose
//! the race with a resize back off in a spin loop (`wait_for_table_change`),
//! which used to pin the baton forever. With the shim, the full
//! resize-vs-writer dance — flag raise, per-bucket migration under bucket
//! locks, table-pointer publish, writer back-off and retry — runs under the
//! exhaustive explorer on a deliberately tiny table.
//!
//! The suite proves the two properties the stress harness could only
//! sample: no insert is lost across a resize, and wait-free lookups never
//! miss a key that was present before the resize began. It also re-seeds
//! the classic lost-insert bug (publishing a migrated table without ever
//! raising the `resizing` flag) and shows the explorer pinpoints it.
//!
//! Run with `RUSTFLAGS="--cfg gls_model" cargo test -p gls_model --test
//! clht_model`.

#![cfg(gls_model)]

use std::sync::Arc;

use gls_clht::Clht;
use gls_model::{Explorer, FailureKind};
use gls_sync::thread;

/// A writer inserting while another thread resizes: the insert must land in
/// whichever table wins, never in a migrated-and-discarded bucket. This is
/// the no-lost-keys half of the protocol — the `resizing` flag plus the
/// post-lock table re-check make the writer back off and retry on the new
/// table.
#[test]
fn resize_vs_insert_loses_no_keys() {
    Explorer::exhaustive().check("clht-resize-vs-insert", || {
        let map = Arc::new(Clht::model_small(1));
        map.put_if_absent(1, || 10);
        map.put_if_absent(2, || 20);
        let writer = {
            let map = Arc::clone(&map);
            thread::spawn(move || {
                map.put_if_absent(3, || 30);
            })
        };
        map.model_force_resize();
        writer.join().expect("model writer panicked");
        assert_eq!(map.get(1), Some(10), "pre-seeded key lost in migration");
        assert_eq!(map.get(2), Some(20), "pre-seeded key lost in migration");
        assert_eq!(map.get(3), Some(30), "concurrent insert lost by resize");
        assert_eq!(map.len(), 3);
    });
}

/// A wait-free reader racing a resize: keys present before the resize began
/// must be found on every schedule, whether the lookup lands on the old
/// table (kept alive on the retired list) or the new one.
#[test]
fn resize_vs_lookup_always_finds_preexisting_keys() {
    Explorer::exhaustive().check("clht-resize-vs-lookup", || {
        let map = Arc::new(Clht::model_small(1));
        map.put_if_absent(1, || 10);
        map.put_if_absent(2, || 20);
        let reader = {
            let map = Arc::clone(&map);
            thread::spawn(move || {
                assert_eq!(map.get(1), Some(10), "lookup missed a key mid-resize");
                assert_eq!(map.get(2), Some(20), "lookup missed a key mid-resize");
            })
        };
        map.model_force_resize();
        reader.join().expect("model reader panicked");
    });
}

/// Re-seeds the historical lost-insert bug: a resize that migrates and
/// publishes without raising the `resizing` flag. A writer that takes its
/// bucket lock after that bucket was migrated — but before the new table is
/// published — sees no flag and an unchanged table pointer, inserts into
/// the doomed table, and the update vanishes. The explorer must find the
/// interleaving (this is the same bar the PR-7 rediscovery tests set).
#[test]
fn explorer_rediscovers_unflagged_resize_lost_insert() {
    let failure = Explorer::exhaustive()
        .find_failure("clht-unflagged-resize", || {
            let map = Arc::new(Clht::model_small(1));
            map.put_if_absent(1, || 10);
            let writer = {
                let map = Arc::clone(&map);
                thread::spawn(move || {
                    map.put_if_absent(2, || 20);
                })
            };
            map.model_resize_without_flag();
            writer.join().expect("model writer panicked");
            assert_eq!(
                map.get(2),
                Some(20),
                "insert lost by a resize that never raised the flag"
            );
        })
        .expect("the explorer must find the lost-insert interleaving");
    assert_eq!(
        failure.kind,
        FailureKind::Panic,
        "expected the lost-insert assertion, got: {failure}"
    );
}
