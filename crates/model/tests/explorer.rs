//! Self-tests for the explorer itself: these run in ordinary `cargo test`
//! (no `--cfg gls_model` needed) because `gls_model`'s own types are always
//! instrumented. They pin down the properties the protocol suites rely on:
//! the DFS actually finds races, the preemption bound behaves, deadlock
//! detection catches lost wakeups, and random-mode seeds replay.

use std::sync::Arc;
use std::time::Duration;

use gls_model::atomic::{AtomicU32, Ordering};
use gls_model::sync::{Condvar, Mutex};
use gls_model::{thread, Explorer, FailureKind, ModelCell};

/// The canonical lost update: two threads doing load-then-store increments.
/// Exhaustive exploration with the default bound must find the schedule
/// where both observe 0.
#[test]
fn exhaustive_finds_lost_update() {
    let failure = Explorer::exhaustive()
        .find_failure("lost-update", || {
            let c = Arc::new(AtomicU32::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let v = c.load(Ordering::Relaxed);
                        c.store(v + 1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::Relaxed), 2, "lost update");
        })
        .expect("exhaustive exploration must find the lost update");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.description.contains("lost update"), "{failure}");
}

/// With a preemption bound of 0 every thread runs to its next blocking
/// point uninterrupted, so the same racy increment cannot interleave: the
/// bound genuinely prunes involuntary switches.
#[test]
fn preemption_bound_zero_hides_the_race() {
    let failure =
        Explorer::exhaustive()
            .preemption_bound(0)
            .find_failure("lost-update-bound0", || {
                let c = Arc::new(AtomicU32::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        thread::spawn(move || {
                            let v = c.load(Ordering::Relaxed);
                            c.store(v + 1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(c.load(Ordering::Relaxed), 2);
            });
    assert!(failure.is_none(), "bound 0 must serialize the threads");
}

/// The same increment protected by the model mutex is correct under every
/// schedule.
#[test]
fn mutex_protects_the_update() {
    Explorer::exhaustive().check("mutex-increment", || {
        let c = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let mut g = c.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*c.lock().unwrap(), 2);
    });
}

/// Opposite-order lock acquisition: the explorer must find the cycle and
/// report it as a deadlock (not hang).
#[test]
fn finds_lock_order_deadlock() {
    let failure = Explorer::exhaustive()
        .find_failure("ab-ba-deadlock", || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = thread::spawn(move || {
                let _ga = a1.lock().unwrap();
                let _gb = b1.lock().unwrap();
            });
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = thread::spawn(move || {
                let _gb = b2.lock().unwrap();
                let _ga = a2.lock().unwrap();
            });
            t1.join().unwrap();
            t2.join().unwrap();
        })
        .expect("must find the AB-BA deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// A correct condvar handshake never deadlocks under any schedule —
/// including schedules where the notify lands in the enqueue→block window.
#[test]
fn condvar_handshake_is_wakeup_safe() {
    Explorer::exhaustive().check("condvar-handshake", || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut g = m.lock().unwrap();
                while !*g {
                    g = cv.wait(g).unwrap();
                }
            })
        };
        let (m, cv) = &*pair;
        {
            let mut g = m.lock().unwrap();
            *g = true;
        }
        cv.notify_one();
        waiter.join().unwrap();
    });
}

/// Setting the flag without notifying strands the waiter: the classic lost
/// wakeup, surfaced as a deadlock.
#[test]
fn finds_missing_notify() {
    let failure = Explorer::exhaustive()
        .find_failure("missing-notify", || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let waiter = {
                let pair = Arc::clone(&pair);
                thread::spawn(move || {
                    let (m, cv) = &*pair;
                    let mut g = m.lock().unwrap();
                    while !*g {
                        g = cv.wait(g).unwrap();
                    }
                })
            };
            let (m, _cv) = &*pair;
            *m.lock().unwrap() = true; // bug: no notify
            waiter.join().unwrap();
        })
        .expect("must find the lost wakeup");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(failure.description.contains("condvar"), "{failure}");
}

/// A timed wait with no notifier completes via the driver firing the
/// timeout, and reports `timed_out()`.
#[test]
fn wait_timeout_fires_without_notifier() {
    Explorer::exhaustive().check("timeout-fires", || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (m, cv) = &*pair;
                let g = m.lock().unwrap();
                let (_g, res) = cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
                assert!(res.timed_out());
            })
        };
        waiter.join().unwrap();
    });
}

/// A spawned-but-never-joined thread still runs to completion before the
/// execution is considered done.
#[test]
fn detached_threads_still_complete() {
    Explorer::exhaustive().check("detached", || {
        let c = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&c);
        drop(thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        }));
    });
}

/// Random mode: a failing iteration's seed replays the identical schedule.
#[test]
fn random_seed_replays_identically() {
    let body = || {
        let c = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    };
    let found = Explorer::random(2_000, 7)
        .find_failure("random-lost-update", body)
        .expect("2000 random schedules should hit the race");
    let seed = found.seed.expect("random failures carry a seed");
    let replay = Explorer::random(1, seed)
        .find_failure("random-lost-update-replay", body)
        .expect("replaying the seed must reproduce the failure");
    assert_eq!(found.schedule, replay.schedule, "replay must be exact");
    assert_eq!(replay.executions, 1);
}

/// The happens-before detector must flag two unsynchronized cell accesses
/// as a race — not merely as a wrong final value — and say so in the
/// description so the report is actionable.
#[test]
fn race_detector_flags_unsynchronized_cell_access() {
    let failure = Explorer::exhaustive()
        .find_failure("cell-race", || {
            let cell = Arc::new(ModelCell::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    thread::spawn(move || {
                        // SAFETY: deliberately unsynchronized — the access
                        // the detector exists to flag.
                        cell.with_mut(|p| unsafe { *p += 1 });
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
        .expect("exhaustive exploration must flag the unsynchronized cell");
    assert_eq!(failure.kind, FailureKind::Race);
    assert!(failure.description.contains("data race"), "{failure}");
    assert!(
        !failure.schedule.is_empty(),
        "race reports carry the schedule"
    );
}

/// The flip side: a release-store/acquire-load handshake orders the cell
/// accesses, so the same shape must verify clean on every schedule — the
/// detector tracks real happens-before, it does not just flag sharing.
#[test]
fn race_detector_accepts_release_acquire_handshake() {
    use gls_model::atomic::AtomicBool;
    Explorer::exhaustive().check("cell-handshake", || {
        let cell = Arc::new(ModelCell::new(0u32));
        let ready = Arc::new(AtomicBool::new(false));
        let writer = {
            let cell = Arc::clone(&cell);
            let ready = Arc::clone(&ready);
            thread::spawn(move || {
                // SAFETY: the reader only dereferences after the acquire
                // load below observes the release store.
                cell.with_mut(|p| unsafe { *p = 42 });
                ready.store(true, Ordering::Release);
            })
        };
        while !ready.load(Ordering::Acquire) {
            gls_model::hint::spin_loop();
        }
        // SAFETY: ordered after the write by the release/acquire pair.
        let v = cell.with(|p| unsafe { *p });
        assert_eq!(v, 42);
        writer.join().unwrap();
    });
}

/// Random-mode race reports carry a seed that replays to the identical
/// failing schedule, same as assertion failures.
#[test]
fn race_in_random_mode_carries_replayable_seed() {
    let body = || {
        let cell = Arc::new(ModelCell::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    // SAFETY: deliberately unsynchronized.
                    cell.with_mut(|p| unsafe { *p += 1 });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    };
    let found = Explorer::random(2_000, 11)
        .find_failure("random-cell-race", body)
        .expect("2000 random schedules should hit the race");
    assert_eq!(found.kind, FailureKind::Race);
    let seed = found.seed.expect("random failures carry a seed");
    let replay = Explorer::random(1, seed)
        .find_failure("random-cell-race-replay", body)
        .expect("replaying the seed must reproduce the race");
    assert_eq!(replay.kind, FailureKind::Race);
    assert_eq!(found.schedule, replay.schedule, "replay must be exact");
}

/// Preemption-bound coverage for the default bound of 2: a bug that needs
/// two threads preempted inside their store-windows *simultaneously* is
/// invisible at bound 1 and found at bound 2. This pins the bound's
/// semantics (involuntary switches only) and documents why the default
/// is 2 and not 1.
#[test]
fn preemption_bound_two_finds_the_two_window_bug() {
    let body = || {
        let a = Arc::new(AtomicU32::new(0));
        let b = Arc::new(AtomicU32::new(0));
        let wa = {
            let a = Arc::clone(&a);
            thread::spawn(move || {
                a.store(1, Ordering::Relaxed);
                a.store(0, Ordering::Relaxed);
            })
        };
        let wb = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                b.store(1, Ordering::Relaxed);
                b.store(0, Ordering::Relaxed);
            })
        };
        let checker = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let ra = a.load(Ordering::Relaxed);
                let rb = b.load(Ordering::Relaxed);
                assert!(!(ra == 1 && rb == 1), "saw both windows open");
            })
        };
        for h in [wa, wb, checker] {
            h.join().unwrap();
        }
    };
    assert!(
        Explorer::exhaustive()
            .preemption_bound(1)
            .find_failure("two-window-bound1", body)
            .is_none(),
        "one preemption cannot hold both windows open"
    );
    let failure = Explorer::exhaustive()
        .preemption_bound(2)
        .find_failure("two-window-bound2", body)
        .expect("two preemptions must expose the conjunction");
    assert_eq!(failure.kind, FailureKind::Panic);
}
