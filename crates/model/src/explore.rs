//! Schedule exploration: the driver loop, the exhaustive DFS policy with
//! preemption bounding, and the seeded random policy.

use std::fmt;
use std::panic;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sched::{Scheduler, StepStatus};
use crate::thread::run_vthread;

/// Serializes explorations process-wide. Model executions route *all*
/// virtual-thread blocking through one scheduler; two concurrent
/// explorations in the same test binary would still be correct per
/// execution but would interleave their panic-hook handling and their
/// traffic on process-global state (the parking lot), so we keep them
/// strictly one at a time.
static EXPLORE_LOCK: Mutex<()> = Mutex::new(());

/// What went wrong in a failing schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A virtual thread panicked (an assertion in the model fired).
    Panic,
    /// No thread was runnable while some were unfinished: a lost wakeup,
    /// a stranded waiter, or a lock cycle.
    Deadlock,
    /// The execution exceeded the step limit: livelock suspicion.
    StepLimit,
    /// The happens-before race detector flagged two unordered accesses to
    /// a [`crate::cell::ModelCell`].
    Race,
}

/// Race reports are ordinary panics under the hood (they unwind the
/// accessing virtual thread); this prefix, set by the scheduler's cell
/// check, is what distinguishes them from assertion failures.
const RACE_PREFIX: &str = "data race";

/// A failing schedule, with everything needed to replay it.
#[derive(Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub description: String,
    /// The decision sequence: which thread id was granted at each step.
    pub schedule: Vec<usize>,
    /// Random mode only: the per-iteration seed. Replay the exact
    /// interleaving with `Explorer::random(1, seed)`.
    pub seed: Option<u64>,
    /// How many executions ran before this one failed.
    pub executions: usize,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model-check failure ({:?}): {}",
            self.kind, self.description
        )?;
        let shown = self.schedule.len().min(256);
        writeln!(
            f,
            "schedule ({} decisions{}): {:?}",
            self.schedule.len(),
            if shown < self.schedule.len() {
                ", first 256 shown"
            } else {
                ""
            },
            &self.schedule[..shown]
        )?;
        match self.seed {
            Some(seed) => writeln!(
                f,
                "replay seed: {seed} (re-run with Explorer::random(1, {seed}) or GLS_MODEL_SEED={seed})"
            )?,
            None => writeln!(f, "replay: exhaustive mode is deterministic; re-running rediscovers this schedule")?,
        }
        write!(f, "found after {} execution(s)", self.executions)
    }
}

enum Mode {
    Exhaustive,
    Random { iterations: usize, seed: u64 },
}

/// Configures and runs an exploration. See the crate docs for the model.
pub struct Explorer {
    mode: Mode,
    preemption_bound: usize,
    step_limit: usize,
    max_executions: usize,
    cleanup: Option<Box<dyn Fn() + Send + Sync>>,
    budget: Option<Duration>,
}

impl Explorer {
    /// Exhaustive DFS with the default preemption bound of 2. Suitable for
    /// small models (2–4 threads, tens of scheduling points).
    pub fn exhaustive() -> Self {
        Explorer {
            mode: Mode::Exhaustive,
            preemption_bound: 2,
            step_limit: 20_000,
            max_executions: 500_000,
            cleanup: None,
            budget: None,
        }
    }

    /// Seeded random scheduling: `iterations` executions, iteration `i`
    /// seeded with `seed + i` so any failing iteration's seed replays with
    /// `Explorer::random(1, failing_seed)`.
    pub fn random(iterations: usize, seed: u64) -> Self {
        Explorer {
            mode: Mode::Random { iterations, seed },
            preemption_bound: usize::MAX,
            step_limit: 20_000,
            max_executions: usize::MAX,
            cleanup: None,
            budget: None,
        }
    }

    /// Random mode honoring the environment: `GLS_MODEL_SEED` replays a
    /// single failing seed, `GLS_MODEL_ITERS` overrides the iteration
    /// count. Defaults to `iterations` runs from seed 0.
    pub fn random_from_env(iterations: usize) -> Self {
        if let Some(seed) = env_u64("GLS_MODEL_SEED") {
            return Explorer::random(1, seed);
        }
        let iterations = env_u64("GLS_MODEL_ITERS")
            .map(|n| n as usize)
            .unwrap_or(iterations);
        Explorer::random(iterations, 0)
    }

    /// Sets the preemption bound for exhaustive mode (≥ 2 covers every
    /// bug class the acceptance suite targets; higher is exponentially
    /// more expensive).
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Per-execution step limit before declaring livelock suspicion.
    pub fn step_limit(mut self, limit: usize) -> Self {
        self.step_limit = limit;
        self
    }

    /// Registers a hook that runs right after a *failed* execution was
    /// torn down, still under the process-wide exploration lock. A failed
    /// execution is aborted mid-flight, which can strand state in process
    /// globals the model does not own — e.g. a waiter node left in the
    /// global parking lot by a panicked-out parked thread. Tests that
    /// expect failures use this to purge such state before any other
    /// exploration can observe it.
    pub fn cleanup(mut self, f: impl Fn() + Send + Sync + 'static) -> Self {
        self.cleanup = Some(Box::new(f));
        self
    }

    /// Safety valve for exhaustive mode: exceeding this many executions
    /// without exhausting the tree panics, surfacing state-space blowups
    /// as a test-design bug instead of an open-ended hang.
    pub fn max_executions(mut self, max: usize) -> Self {
        self.max_executions = max;
        self
    }

    /// Wall-clock budget for the whole exploration: the deadline is
    /// checked between executions, and the first execution to finish past
    /// it panics, surfacing state-space growth as a prompt test failure
    /// instead of a CI hang. CI sets a 60 s default for every model test
    /// via `GLS_MODEL_BUDGET_SECS`; this builder overrides it per
    /// exploration.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Runs the model and panics (with the full replay report) on the
    /// first failing schedule.
    pub fn check<F>(&self, name: &str, body: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        if let Some(failure) = self.find_failure(name, body) {
            panic!("{failure}");
        }
    }

    /// Runs the model and returns the first failing schedule, if any.
    /// This is the entry point for regression tests that *expect* a bug.
    pub fn find_failure<F>(&self, name: &str, body: F) -> Option<Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        // Overruns are reported by return value and only turned into a
        // panic *here*, after the exploration scope (the process-wide lock
        // and the quiet panic hook) has been torn down normally: a panic
        // inside that scope would reach `QuietPanics::drop` mid-unwind,
        // whose `panic::set_hook` panics on a panicking thread — and a
        // panic from a drop during unwind aborts the whole test binary.
        match self.find_failure_inner(name, body) {
            Ok(result) => result,
            Err(overrun) => panic!("{overrun}"),
        }
    }

    fn find_failure_inner<F>(&self, name: &str, body: F) -> Result<Option<Failure>, String>
    where
        F: Fn() + Send + Sync + 'static,
    {
        // Serialize before starting the budget clock: with parallel test
        // threads an exploration can sit behind this lock for longer than
        // its own runtime, and queueing must not count against the budget.
        let _serial = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let budget = self
            .budget
            .or_else(|| env_u64("GLS_MODEL_BUDGET_SECS").map(Duration::from_secs));
        // The guard rides between executions (run_one is uninterruptible),
        // so a state-space blowup fails one execution past the deadline
        // instead of stalling CI until max_executions trips.
        let deadline = budget.map(|b| (Instant::now(), b));
        let check_budget = move |name: &str, executions: usize| -> Result<(), String> {
            if let Some((started, budget)) = deadline {
                let elapsed = started.elapsed();
                if elapsed > budget {
                    return Err(format!(
                        "model '{name}': {executions} execution(s) in \
                         {elapsed:.1?}, over the {budget:?} runtime budget — \
                         shrink the model or raise the budget deliberately",
                    ));
                }
            }
            Ok(())
        };
        let _quiet = QuietPanics::install();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        match self.mode {
            Mode::Exhaustive => {
                let mut dfs = DfsPolicy::default();
                let mut executions = 0usize;
                loop {
                    executions += 1;
                    dfs.depth = 0;
                    match self.run_one(&body, &mut dfs) {
                        Outcome::Complete => {}
                        Outcome::Failed(kind, desc, schedule) => {
                            return Ok(Some(Failure {
                                kind,
                                description: format!("model '{name}': {desc}"),
                                schedule,
                                seed: None,
                                executions,
                            }));
                        }
                    }
                    check_budget(name, executions)?;
                    if !dfs.backtrack() {
                        return Ok(None);
                    }
                    if executions >= self.max_executions {
                        return Err(format!(
                            "model '{name}': exploration hit {} executions \
                             without exhausting the schedule tree — shrink the \
                             model or raise max_executions",
                            self.max_executions
                        ));
                    }
                }
            }
            Mode::Random { iterations, seed } => {
                for i in 0..iterations {
                    let iter_seed = seed.wrapping_add(i as u64);
                    let mut policy = RandomPolicy {
                        rng: StdRng::seed_from_u64(iter_seed),
                    };
                    match self.run_one(&body, &mut policy) {
                        Outcome::Complete => {}
                        Outcome::Failed(kind, desc, schedule) => {
                            return Ok(Some(Failure {
                                kind,
                                description: format!("model '{name}': {desc}"),
                                schedule,
                                seed: Some(iter_seed),
                                executions: i + 1,
                            }));
                        }
                    }
                    check_budget(name, i + 1)?;
                }
                Ok(None)
            }
        }
    }

    /// Drives a single execution to completion or failure.
    fn run_one(&self, body: &Arc<dyn Fn() + Send + Sync>, policy: &mut dyn Policy) -> Outcome {
        let sched = Scheduler::new();
        let root = sched.register_thread();
        let body = Arc::clone(body);
        let sched2 = Arc::clone(&sched);
        let os_root = std::thread::Builder::new()
            .name("gls-model-root".into())
            .spawn(move || run_vthread(sched2, root, move || body()))
            .expect("spawn model root thread");

        let mut prev: Option<usize> = None;
        let mut preemptions = 0usize;
        let mut steps = 0usize;
        let outcome = loop {
            match sched.wait_quiescent() {
                StepStatus::Complete => break Outcome::Complete,
                StepStatus::Deadlock { blocked, schedule } => {
                    break Outcome::Failed(
                        FailureKind::Deadlock,
                        format!("deadlock — {blocked}"),
                        schedule,
                    )
                }
                StepStatus::Panicked { tid, message } => {
                    let kind = if message.starts_with(RACE_PREFIX) {
                        FailureKind::Race
                    } else {
                        FailureKind::Panic
                    };
                    break Outcome::Failed(
                        kind,
                        format!("thread {tid} panicked: {message}"),
                        sched.schedule_so_far(),
                    );
                }
                StepStatus::Choose {
                    eligible,
                    spin_fallback,
                } => {
                    steps += 1;
                    if steps > self.step_limit {
                        break Outcome::Failed(
                            FailureKind::StepLimit,
                            format!("exceeded {} steps (livelock?)", self.step_limit),
                            sched.schedule_so_far(),
                        );
                    }
                    // A spin-fallback set contains only threads that parked
                    // voluntarily; switching between them is free and the
                    // previous thread must not be forced to continue.
                    let prev_runnable =
                        !spin_fallback && prev.is_some_and(|p| eligible.contains(&p));
                    let choices = if prev_runnable && preemptions >= self.preemption_bound {
                        // Budget spent: the only legal move is to keep
                        // running the current thread.
                        vec![prev.expect("prev_runnable implies prev")]
                    } else {
                        eligible
                    };
                    let pick = policy.choose(&choices);
                    if prev_runnable && Some(pick) != prev {
                        preemptions += 1;
                    }
                    sched.grant(pick);
                    prev = Some(pick);
                }
            }
        };

        match &outcome {
            Outcome::Complete => {
                let _ = os_root.join();
            }
            Outcome::Failed(..) => {
                sched.abort();
                sched.wait_all_finished();
                let _ = os_root.join();
                if let Some(cleanup) = &self.cleanup {
                    cleanup();
                }
            }
        }
        outcome
    }
}

enum Outcome {
    Complete,
    Failed(FailureKind, String, Vec<usize>),
}

trait Policy {
    fn choose(&mut self, choices: &[usize]) -> usize;
}

/// One node of the DFS schedule tree: the choice set observed at this
/// depth and the index of the branch currently being explored.
struct DfsNode {
    choices: Vec<usize>,
    next: usize,
}

#[derive(Default)]
struct DfsPolicy {
    tree: Vec<DfsNode>,
    depth: usize,
}

impl Policy for DfsPolicy {
    fn choose(&mut self, choices: &[usize]) -> usize {
        if let Some(node) = self.tree.get(self.depth) {
            if node.choices != choices {
                // Replay divergence: the schedule prefix produced a
                // different choice set than last time (cross-execution
                // global state such as parking-table growth can do this).
                // Truncate the recorded subtree and restart it rather than
                // failing the whole exploration; the worst case is some
                // schedules being revisited.
                self.tree.truncate(self.depth);
            }
        }
        if self.tree.len() == self.depth {
            self.tree.push(DfsNode {
                choices: choices.to_vec(),
                next: 0,
            });
        }
        let node = &self.tree[self.depth];
        let pick = node.choices[node.next];
        self.depth += 1;
        pick
    }
}

impl DfsPolicy {
    /// Advances to the next unexplored branch; false when the tree is
    /// exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(node) = self.tree.last_mut() {
            if node.next + 1 < node.choices.len() {
                node.next += 1;
                return true;
            }
            self.tree.pop();
        }
        false
    }
}

struct RandomPolicy {
    rng: StdRng,
}

impl Policy for RandomPolicy {
    fn choose(&mut self, choices: &[usize]) -> usize {
        choices[self.rng.gen_range(0..choices.len())]
    }
}

/// Silences the default panic hook for the duration of an exploration:
/// expected-failure runs would otherwise spray backtraces for schedules
/// the explorer is deliberately hunting. The failure report carries the
/// panic message instead. Restored on drop (including on unwind, so a
/// failing `check` still reports through the normal hook).
struct QuietPanics {
    prev: Option<PanicHook>,
}

/// The boxed hook type `std::panic::set_hook` takes.
type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>;

impl QuietPanics {
    fn install() -> Self {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        // `set_hook` itself panics on a panicking thread, and a panic out
        // of a drop during unwind aborts the process. No panic should
        // unwind through this guard (overruns travel by return value; see
        // `find_failure`), but if one ever does, losing hook restoration
        // beats taking down the whole test binary.
        if std::thread::panicking() {
            return;
        }
        if let Some(prev) = self.prev.take() {
            panic::set_hook(prev);
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}
