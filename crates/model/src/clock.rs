//! Vector clocks for happens-before race detection.
//!
//! One component per virtual thread id. The scheduler threads these through
//! every synchronizing operation (release stores/RMWs publish, acquire
//! loads join, spawn/join/mutex hand the clock across threads); the
//! [`crate::cell::ModelCell`] access checks then reduce to component
//! comparisons against recorded read/write epochs.

/// A vector clock over virtual-thread ids. Missing components read as 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// The component for thread `tid` (0 when never touched).
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Increments `tid`'s own component (a new epoch for that thread).
    pub(crate) fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Sets `tid`'s component to at least `value`.
    pub(crate) fn record(&mut self, tid: usize, value: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = self.0[tid].max(value);
    }

    /// Pointwise maximum: afterwards `self` dominates both inputs.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// The first thread id whose component in `self` exceeds `other`'s,
    /// i.e. a witness event not ordered before `other`.
    pub(crate) fn first_exceeding(&self, other: &VClock) -> Option<usize> {
        self.0
            .iter()
            .enumerate()
            .find(|&(i, &v)| v > other.get(i))
            .map(|(i, _)| i)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}
