//! The execution scheduler: virtual-thread state, the baton handshake, and
//! the driver-side stepping interface used by [`crate::explore`].
//!
//! Virtual threads are real OS threads, but exactly one is ever runnable:
//! every instrumented operation funnels through [`yield_point`] (or one of
//! the blocking entry points), which parks the calling thread and hands the
//! baton to the driver. The driver inspects the thread states, asks the
//! scheduling policy for the next thread, and grants it the baton. All
//! coordination happens under one `Mutex<Inner>` + `Condvar` pair; with the
//! handful of threads a model uses, `notify_all` broadcast wakeups are
//! cheaper than per-thread parking machinery and trivially correct.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Panic payload used to unwind virtual threads out of an aborted
/// execution (after another thread already failed). The per-thread
/// catch-unwind recognises it and does not report it as a failure.
pub(crate) struct ModelAborted;

/// Why a virtual thread is not runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Waiting for `lock_released(addr)` on a model mutex.
    Lock(usize),
    /// Waiting on a model condvar. `timeout_eligible` waits may be woken
    /// spuriously by the driver "firing the timeout" as a scheduling choice.
    Condvar { timeout_eligible: bool },
    /// Waiting for thread `tid` to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Runnable: will proceed when granted the baton.
    Ready,
    /// Holds the baton and is executing user code.
    Running,
    Blocked(BlockKind),
    Finished,
}

struct ThreadRecord {
    state: State,
    /// Set when a condvar notify targeted this thread before it actually
    /// blocked (the enqueue→block window); consumed by `condvar_block`.
    cv_woken: bool,
    /// Set when the driver fired this thread's condvar timeout.
    cv_timed_out: bool,
}

struct Inner {
    threads: Vec<ThreadRecord>,
    /// Thread currently holding the baton (none while the driver decides).
    running: Option<usize>,
    /// Baton grant: the thread with this id may transition to Running.
    granted: Option<usize>,
    /// FIFO wait queues per condvar address.
    cv_queues: HashMap<usize, VecDeque<usize>>,
    /// First panic payload rendered to a string, plus the panicking tid.
    panic: Option<(usize, String)>,
    abort: bool,
    /// Chosen tid per step, for failure reports.
    schedule: Vec<usize>,
}

pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    cond: Condvar,
}

thread_local! {
    /// Handle installed on every virtual thread for the duration of its
    /// body: (scheduler, my thread id).
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    // A virtual thread never panics while holding this mutex, but the
    // driver-side abort path may unwind user code that re-enters here;
    // recovering poison keeps later executions in the same process usable.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// True when the calling thread is a virtual thread of an active execution.
/// The instrumented types use this to fall back to plain `std` behaviour in
/// ordinary (non-model) code.
#[inline]
pub fn in_execution() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn with_current<R>(f: impl FnOnce(&Arc<Scheduler>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(s, t)| f(s, *t)))
}

pub(crate) fn install(sched: Arc<Scheduler>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

pub(crate) fn uninstall() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn current_scheduler() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Scheduler {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Scheduler {
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                running: None,
                granted: None,
                cv_queues: HashMap::new(),
                panic: None,
                abort: false,
                schedule: Vec::new(),
            }),
            cond: Condvar::new(),
        })
    }

    // ------------------------------------------------------------------
    // Virtual-thread side
    // ------------------------------------------------------------------

    /// Registers a new virtual thread (state Ready) and returns its id.
    /// Called by the *spawner* before the OS thread exists so the driver
    /// sees the thread immediately.
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = lock(&self.inner);
        g.threads.push(ThreadRecord {
            state: State::Ready,
            cv_woken: false,
            cv_timed_out: false,
        });
        g.threads.len() - 1
    }

    /// Parks the calling virtual thread until the driver grants it the
    /// baton. The caller must already have set its state/`running` fields
    /// appropriately under `g`. Panics with [`ModelAborted`] if the
    /// execution is aborted while waiting.
    fn wait_for_grant<'a>(
        &self,
        mut g: MutexGuard<'a, Inner>,
        tid: usize,
    ) -> MutexGuard<'a, Inner> {
        loop {
            if g.abort {
                drop(g);
                std::panic::panic_any(ModelAborted);
            }
            if g.granted == Some(tid) {
                g.granted = None;
                g.running = Some(tid);
                g.threads[tid].state = State::Running;
                return g;
            }
            g = self.cond.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// First parking of a freshly spawned virtual thread: its record is
    /// already Ready (set by `register_thread`), so it only waits for the
    /// baton without touching any scheduler state.
    pub(crate) fn wait_initial(&self, tid: usize) {
        let g = lock(&self.inner);
        drop(self.wait_for_grant(g, tid));
    }

    /// Yields the baton back to the driver and waits to be rescheduled.
    pub(crate) fn yield_here(&self, tid: usize) {
        let mut g = lock(&self.inner);
        g.threads[tid].state = State::Ready;
        g.running = None;
        self.cond.notify_all();
        drop(self.wait_for_grant(g, tid));
    }

    /// Blocks the calling thread until `lock_released(addr)` readies it and
    /// the driver grants it.
    pub(crate) fn block_on_lock(&self, tid: usize, addr: usize) {
        let mut g = lock(&self.inner);
        g.threads[tid].state = State::Blocked(BlockKind::Lock(addr));
        g.running = None;
        self.cond.notify_all();
        drop(self.wait_for_grant(g, tid));
    }

    /// A model mutex was released: every thread blocked on it becomes
    /// runnable again (they re-race via `try_lock`, which models the
    /// non-FIFO std mutex faithfully). Never blocks and never panics, so it
    /// is safe to call from guard drops, including during unwinding.
    pub(crate) fn lock_released(&self, addr: usize) {
        let mut g = lock(&self.inner);
        for t in g.threads.iter_mut() {
            if t.state == State::Blocked(BlockKind::Lock(addr)) {
                t.state = State::Ready;
            }
        }
        self.cond.notify_all();
    }

    /// Enqueues the calling thread on condvar `cv`. Must be called while
    /// the associated mutex is still held (before the guard drops) so no
    /// notify can be missed.
    pub(crate) fn condvar_enqueue(&self, tid: usize, cv: usize) {
        let mut g = lock(&self.inner);
        g.cv_queues.entry(cv).or_default().push_back(tid);
    }

    /// Completes a condvar wait begun with `condvar_enqueue`: blocks until
    /// notified (or, when `timeout_eligible`, until the driver fires the
    /// timeout). Returns true if the wakeup was a timeout.
    pub(crate) fn condvar_block(&self, tid: usize, _cv: usize, timeout_eligible: bool) -> bool {
        let mut g = lock(&self.inner);
        if !g.threads[tid].cv_woken {
            g.threads[tid].state = State::Blocked(BlockKind::Condvar { timeout_eligible });
            g.running = None;
            self.cond.notify_all();
            g = self.wait_for_grant(g, tid);
        }
        let rec = &mut g.threads[tid];
        rec.cv_woken = false;
        let timed_out = rec.cv_timed_out;
        rec.cv_timed_out = false;
        // A timed-out waiter was removed from the queue by the driver; a
        // notified waiter (including one caught in the enqueue→block
        // window) was removed by the notifier. Nothing to dequeue here.
        timed_out
    }

    /// Wakes one (or all) waiters of condvar `cv`. Readying only — the
    /// woken thread still competes for the baton like everyone else.
    pub(crate) fn condvar_notify(&self, cv: usize, all: bool) {
        let mut g = lock(&self.inner);
        while let Some(tid) = g.cv_queues.get_mut(&cv).and_then(VecDeque::pop_front) {
            let rec = &mut g.threads[tid];
            rec.cv_woken = true;
            if matches!(rec.state, State::Blocked(BlockKind::Condvar { .. })) {
                rec.state = State::Ready;
            }
            if !all {
                break;
            }
        }
        self.cond.notify_all();
    }

    /// Blocks the calling thread until thread `target` finishes.
    pub(crate) fn block_on_join(&self, tid: usize, target: usize) {
        let mut g = lock(&self.inner);
        if g.threads[target].state == State::Finished {
            return;
        }
        g.threads[tid].state = State::Blocked(BlockKind::Join(target));
        g.running = None;
        self.cond.notify_all();
        drop(self.wait_for_grant(g, tid));
    }

    /// Marks the calling thread finished; wakes joiners.
    pub(crate) fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut g = lock(&self.inner);
        g.threads[tid].state = State::Finished;
        if let Some(msg) = panic_msg {
            if g.panic.is_none() {
                g.panic = Some((tid, msg));
            }
        }
        for t in g.threads.iter_mut() {
            if t.state == State::Blocked(BlockKind::Join(tid)) {
                t.state = State::Ready;
            }
        }
        if g.running == Some(tid) {
            g.running = None;
        }
        self.cond.notify_all();
    }

    // ------------------------------------------------------------------
    // Driver side
    // ------------------------------------------------------------------

    /// Waits until no virtual thread holds the baton, then reports the
    /// execution status: the set of grantable thread ids (sorted), whether
    /// all threads finished, and any recorded panic.
    pub(crate) fn wait_quiescent(&self) -> StepStatus {
        let mut g = lock(&self.inner);
        // A pending grant counts as "someone is running": the granted
        // thread just has not woken yet. Treating it as quiescent would
        // double-grant.
        while (g.running.is_some() || g.granted.is_some()) && g.panic.is_none() {
            g = self.cond.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some((tid, msg)) = g.panic.clone() {
            return StepStatus::Panicked { tid, message: msg };
        }
        let mut eligible = Vec::new();
        let mut unfinished = Vec::new();
        for (tid, t) in g.threads.iter().enumerate() {
            match t.state {
                State::Ready => eligible.push(tid),
                State::Blocked(BlockKind::Condvar {
                    timeout_eligible: true,
                }) => eligible.push(tid),
                State::Finished => continue,
                _ => {}
            }
            if t.state != State::Finished {
                unfinished.push((tid, t.state));
            }
        }
        if unfinished.is_empty() {
            return StepStatus::Complete;
        }
        if eligible.is_empty() {
            let blocked = unfinished
                .iter()
                .map(|(tid, st)| format!("thread {tid}: {}", describe(*st)))
                .collect::<Vec<_>>()
                .join("; ");
            return StepStatus::Deadlock {
                blocked,
                schedule: g.schedule.clone(),
            };
        }
        StepStatus::Choose { eligible }
    }

    /// Grants the baton to `tid`. Granting a condvar waiter that is only
    /// eligible through its timeout fires the timeout: the waiter leaves
    /// the queue and wakes with `timed_out = true`.
    pub(crate) fn grant(&self, tid: usize) {
        let mut g = lock(&self.inner);
        if let State::Blocked(BlockKind::Condvar { .. }) = g.threads[tid].state {
            for q in g.cv_queues.values_mut() {
                if let Some(pos) = q.iter().position(|&t| t == tid) {
                    q.remove(pos);
                }
            }
            let rec = &mut g.threads[tid];
            rec.cv_timed_out = true;
            rec.state = State::Ready;
        }
        g.schedule.push(tid);
        g.granted = Some(tid);
        self.cond.notify_all();
    }

    /// Aborts the execution: every parked virtual thread unwinds with
    /// [`ModelAborted`] the next time it checks in.
    pub(crate) fn abort(&self) {
        let mut g = lock(&self.inner);
        g.abort = true;
        self.cond.notify_all();
    }

    /// Blocks the driver until every virtual thread has reported finished.
    /// Called after an abort so no unwinding thread leaks into the next
    /// execution (stale threads could still touch process-global state such
    /// as the parking lot while tearing down).
    pub(crate) fn wait_all_finished(&self) {
        let mut g = lock(&self.inner);
        while g.threads.iter().any(|t| t.state != State::Finished) {
            g = self.cond.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn schedule_so_far(&self) -> Vec<usize> {
        lock(&self.inner).schedule.clone()
    }
}

fn describe(state: State) -> String {
    match state {
        State::Blocked(BlockKind::Lock(addr)) => format!("blocked on mutex {addr:#x}"),
        State::Blocked(BlockKind::Condvar { timeout_eligible }) => {
            if timeout_eligible {
                "waiting on condvar (timeout-eligible)".into()
            } else {
                "waiting on condvar".into()
            }
        }
        State::Blocked(BlockKind::Join(t)) => format!("joining thread {t}"),
        State::Ready => "ready".into(),
        State::Running => "running".into(),
        State::Finished => "finished".into(),
    }
}

/// Driver-visible execution status after quiescence.
pub(crate) enum StepStatus {
    /// Pick one of `eligible` and call [`Scheduler::grant`].
    Choose { eligible: Vec<usize> },
    /// All threads finished cleanly.
    Complete,
    /// No runnable thread but some unfinished: lost wakeup / lock cycle.
    Deadlock {
        blocked: String,
        schedule: Vec<usize>,
    },
    /// A virtual thread panicked (assertion failure in the model).
    Panicked { tid: usize, message: String },
}

// ----------------------------------------------------------------------
// Free-function façade used by the instrumented types. All of these are
// no-ops (or plain fallbacks) when the calling thread is not a virtual
// thread of an active execution.
// ----------------------------------------------------------------------

/// The universal scheduling point: called before every instrumented
/// shared-memory operation.
#[inline]
pub fn yield_point() {
    with_current(|s, tid| s.yield_here(tid));
}

pub(crate) fn block_on_lock(addr: usize) {
    with_current(|s, tid| s.block_on_lock(tid, addr));
}

pub(crate) fn lock_released(addr: usize) {
    with_current(|s, _| s.lock_released(addr));
}

pub(crate) fn condvar_enqueue(cv: usize) {
    with_current(|s, tid| s.condvar_enqueue(tid, cv));
}

pub(crate) fn condvar_block(cv: usize, timeout_eligible: bool) -> bool {
    with_current(|s, tid| s.condvar_block(tid, cv, timeout_eligible)).unwrap_or(false)
}

pub(crate) fn condvar_notify(cv: usize, all: bool) {
    with_current(|s, _| s.condvar_notify(cv, all));
}
