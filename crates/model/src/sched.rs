//! The execution scheduler: virtual-thread state, the baton handshake, and
//! the driver-side stepping interface used by [`crate::explore`].
//!
//! Virtual threads are real OS threads, but exactly one is ever runnable:
//! every instrumented operation funnels through [`yield_point`] (or one of
//! the blocking entry points), which parks the calling thread and hands the
//! baton to the driver. The driver inspects the thread states, asks the
//! scheduling policy for the next thread, and grants it the baton. All
//! coordination happens under one `Mutex<Inner>` + `Condvar` pair; with the
//! handful of threads a model uses, `notify_all` broadcast wakeups are
//! cheaper than per-thread parking machinery and trivially correct.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::clock::VClock;

/// Panic payload used to unwind virtual threads out of an aborted
/// execution (after another thread already failed). The per-thread
/// catch-unwind recognises it and does not report it as a failure.
pub(crate) struct ModelAborted;

/// Why a virtual thread is not runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Waiting for `lock_released(addr)` on a model mutex.
    Lock(usize),
    /// Waiting on a model condvar. `timeout_eligible` waits may be woken
    /// spuriously by the driver "firing the timeout" as a scheduling choice.
    Condvar { timeout_eligible: bool },
    /// Waiting for thread `tid` to finish.
    Join(usize),
    /// Spent its spin budget: a spinning thread that re-running without
    /// letting anyone else make progress would only stutter. Readied when
    /// any *other* thread is granted; eligible as a fallback when nothing
    /// else is runnable (a pure spin livelock then hits the step limit
    /// instead of being misreported as a deadlock).
    Spin,
}

/// Consecutive spin hints a virtual thread may issue before it parks and
/// yields the baton to the explorer (the bounded-spin-then-yield shim that
/// makes busy-wait loops finite in the schedule tree).
const SPIN_BUDGET: u32 = 2;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Runnable: will proceed when granted the baton.
    Ready,
    /// Holds the baton and is executing user code.
    Running,
    Blocked(BlockKind),
    Finished,
}

struct ThreadRecord {
    state: State,
    /// Set when a condvar notify targeted this thread before it actually
    /// blocked (the enqueue→block window); consumed by `condvar_block`.
    cv_woken: bool,
    /// Set when the driver fired this thread's condvar timeout.
    cv_timed_out: bool,
    /// Happens-before clock of this thread's events so far. Survives
    /// `Finished` so joiners can inherit it.
    clock: VClock,
    /// Clock snapshot at the last release fence (C11: a relaxed store after
    /// a release fence releases this clock).
    fence_rel: VClock,
    /// Accumulated message clocks of relaxed loads since the last acquire
    /// fence (C11: an acquire fence turns those reads into acquires).
    fence_acq: VClock,
    /// Consecutive spin hints since the thread last parked as `Spin`.
    spin_streak: u32,
}

impl ThreadRecord {
    fn new(clock: VClock) -> Self {
        ThreadRecord {
            state: State::Ready,
            cv_woken: false,
            cv_timed_out: false,
            clock,
            fence_rel: VClock::default(),
            fence_acq: VClock::default(),
            spin_streak: 0,
        }
    }
}

/// Read/write history of one [`crate::cell::ModelCell`], FastTrack-style:
/// the last write as an epoch, reads since that write as a clock.
#[derive(Default)]
struct CellState {
    /// Last write: (writer tid, the writer's own clock component then).
    write: Option<(usize, u32)>,
    /// Clock of reads since the last write.
    reads: VClock,
}

struct Inner {
    threads: Vec<ThreadRecord>,
    /// Thread currently holding the baton (none while the driver decides).
    running: Option<usize>,
    /// Baton grant: the thread with this id may transition to Running.
    granted: Option<usize>,
    /// FIFO wait queues per condvar address.
    cv_queues: HashMap<usize, VecDeque<usize>>,
    /// First panic payload rendered to a string, plus the panicking tid.
    panic: Option<(usize, String)>,
    abort: bool,
    /// Chosen tid per step, for failure reports.
    schedule: Vec<usize>,
    /// Per-atomic-location message clocks — the "synchronizes-with" payload
    /// left by release operations, keyed by address. (Address reuse within
    /// one execution aliases entries; extra hb edges can only hide races,
    /// never fabricate one.)
    atomic_msgs: HashMap<usize, VClock>,
    /// Per-model-mutex release clocks, keyed by mutex address.
    sync_msgs: HashMap<usize, VClock>,
    /// Per-`ModelCell` access histories, keyed by cell address.
    cells: HashMap<usize, CellState>,
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    cond: Condvar,
}

thread_local! {
    /// Handle installed on every virtual thread for the duration of its
    /// body: (scheduler, my thread id).
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    // A virtual thread never panics while holding this mutex, but the
    // driver-side abort path may unwind user code that re-enters here;
    // recovering poison keeps later executions in the same process usable.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// True when the calling thread is a virtual thread of an active execution.
/// The instrumented types use this to fall back to plain `std` behaviour in
/// ordinary (non-model) code.
#[inline]
pub fn in_execution() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

fn with_current<R>(f: impl FnOnce(&Arc<Scheduler>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(s, t)| f(s, *t)))
}

pub(crate) fn install(sched: Arc<Scheduler>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

pub(crate) fn uninstall() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn current_scheduler() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Progress a spin loop could observe just happened: a write (atomic store
/// or RMW, a lock release, a thread finishing). Spin-parked threads
/// re-enter the schedulable set — their next probe may read the new state.
/// Loads and bare scheduling decisions deliberately do NOT re-ready
/// spinners: they change nothing a spinner can see, and re-readying on
/// every grant would let two spinners keep each other schedulable forever,
/// starving every other thread on the DFS's first-choice path.
fn wake_spinners(g: &mut Inner) {
    for t in g.threads.iter_mut() {
        if t.state == State::Blocked(BlockKind::Spin) {
            t.state = State::Ready;
        }
    }
}

impl Scheduler {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Scheduler {
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                running: None,
                granted: None,
                cv_queues: HashMap::new(),
                panic: None,
                abort: false,
                schedule: Vec::new(),
                atomic_msgs: HashMap::new(),
                sync_msgs: HashMap::new(),
                cells: HashMap::new(),
            }),
            cond: Condvar::new(),
        })
    }

    // ------------------------------------------------------------------
    // Virtual-thread side
    // ------------------------------------------------------------------

    /// Registers a new virtual thread (state Ready) and returns its id.
    /// Called by the *spawner* before the OS thread exists so the driver
    /// sees the thread immediately. Spawn is a happens-before edge: the
    /// child inherits the spawner's clock, and both sides then tick so
    /// later events are distinguishable from the spawn.
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = lock(&self.inner);
        let child = g.threads.len();
        let mut clock = match g.running {
            Some(parent) => {
                let inherited = g.threads[parent].clock.clone();
                g.threads[parent].clock.bump(parent);
                inherited
            }
            // The root thread, registered by the driver before the
            // execution starts.
            None => VClock::default(),
        };
        clock.bump(child);
        g.threads.push(ThreadRecord::new(clock));
        child
    }

    /// Parks the calling virtual thread until the driver grants it the
    /// baton. The caller must already have set its state/`running` fields
    /// appropriately under `g`. Panics with [`ModelAborted`] if the
    /// execution is aborted while waiting.
    fn wait_for_grant<'a>(
        &self,
        mut g: MutexGuard<'a, Inner>,
        tid: usize,
    ) -> MutexGuard<'a, Inner> {
        loop {
            if g.abort {
                drop(g);
                std::panic::panic_any(ModelAborted);
            }
            if g.granted == Some(tid) {
                g.granted = None;
                g.running = Some(tid);
                g.threads[tid].state = State::Running;
                return g;
            }
            g = self.cond.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// First parking of a freshly spawned virtual thread: its record is
    /// already Ready (set by `register_thread`), so it only waits for the
    /// baton without touching any scheduler state.
    pub(crate) fn wait_initial(&self, tid: usize) {
        let g = lock(&self.inner);
        drop(self.wait_for_grant(g, tid));
    }

    /// Yields the baton back to the driver and waits to be rescheduled.
    pub(crate) fn yield_here(&self, tid: usize) {
        let mut g = lock(&self.inner);
        g.threads[tid].state = State::Ready;
        g.running = None;
        self.cond.notify_all();
        drop(self.wait_for_grant(g, tid));
    }

    /// Blocks the calling thread until `lock_released(addr)` readies it and
    /// the driver grants it.
    pub(crate) fn block_on_lock(&self, tid: usize, addr: usize) {
        let mut g = lock(&self.inner);
        g.threads[tid].state = State::Blocked(BlockKind::Lock(addr));
        g.running = None;
        self.cond.notify_all();
        drop(self.wait_for_grant(g, tid));
    }

    /// A model mutex was released: every thread blocked on it becomes
    /// runnable again (they re-race via `try_lock`, which models the
    /// non-FIFO std mutex faithfully), and the releaser's clock is
    /// published so the next holder inherits it. Never blocks and never
    /// panics, so it is safe to call from guard drops, including during
    /// unwinding.
    pub(crate) fn lock_released(&self, tid: usize, addr: usize) {
        let mut g = lock(&self.inner);
        let clock = g.threads[tid].clock.clone();
        g.sync_msgs.insert(addr, clock);
        g.threads[tid].clock.bump(tid);
        for t in g.threads.iter_mut() {
            if t.state == State::Blocked(BlockKind::Lock(addr)) {
                t.state = State::Ready;
            }
        }
        wake_spinners(&mut g);
        self.cond.notify_all();
    }

    /// A model mutex was acquired: join the clock the previous holder
    /// published at release (the mutex happens-before edge).
    pub(crate) fn sync_acquired(&self, tid: usize, addr: usize) {
        let mut g = lock(&self.inner);
        if let Some(msg) = g.sync_msgs.get(&addr).cloned() {
            g.threads[tid].clock.join(&msg);
        }
    }

    /// Enqueues the calling thread on condvar `cv`. Must be called while
    /// the associated mutex is still held (before the guard drops) so no
    /// notify can be missed.
    pub(crate) fn condvar_enqueue(&self, tid: usize, cv: usize) {
        let mut g = lock(&self.inner);
        g.cv_queues.entry(cv).or_default().push_back(tid);
    }

    /// Completes a condvar wait begun with `condvar_enqueue`: blocks until
    /// notified (or, when `timeout_eligible`, until the driver fires the
    /// timeout). Returns true if the wakeup was a timeout.
    pub(crate) fn condvar_block(&self, tid: usize, _cv: usize, timeout_eligible: bool) -> bool {
        let mut g = lock(&self.inner);
        if !g.threads[tid].cv_woken {
            g.threads[tid].state = State::Blocked(BlockKind::Condvar { timeout_eligible });
            g.running = None;
            self.cond.notify_all();
            g = self.wait_for_grant(g, tid);
        }
        let rec = &mut g.threads[tid];
        rec.cv_woken = false;
        let timed_out = rec.cv_timed_out;
        rec.cv_timed_out = false;
        // A timed-out waiter was removed from the queue by the driver; a
        // notified waiter (including one caught in the enqueue→block
        // window) was removed by the notifier. Nothing to dequeue here.
        timed_out
    }

    /// Wakes one (or all) waiters of condvar `cv`. Readying only — the
    /// woken thread still competes for the baton like everyone else.
    pub(crate) fn condvar_notify(&self, cv: usize, all: bool) {
        let mut g = lock(&self.inner);
        while let Some(tid) = g.cv_queues.get_mut(&cv).and_then(VecDeque::pop_front) {
            let rec = &mut g.threads[tid];
            rec.cv_woken = true;
            if matches!(rec.state, State::Blocked(BlockKind::Condvar { .. })) {
                rec.state = State::Ready;
            }
            if !all {
                break;
            }
        }
        self.cond.notify_all();
    }

    /// Blocks the calling thread until thread `target` finishes, then
    /// joins the target's final clock (join is a happens-before edge).
    pub(crate) fn block_on_join(&self, tid: usize, target: usize) {
        let mut g = lock(&self.inner);
        if g.threads[target].state != State::Finished {
            g.threads[tid].state = State::Blocked(BlockKind::Join(target));
            g.running = None;
            self.cond.notify_all();
            g = self.wait_for_grant(g, tid);
        }
        let target_clock = g.threads[target].clock.clone();
        g.threads[tid].clock.join(&target_clock);
    }

    /// Marks the calling thread finished; wakes joiners.
    pub(crate) fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut g = lock(&self.inner);
        g.threads[tid].state = State::Finished;
        if let Some(msg) = panic_msg {
            if g.panic.is_none() {
                g.panic = Some((tid, msg));
            }
        }
        for t in g.threads.iter_mut() {
            if t.state == State::Blocked(BlockKind::Join(tid)) {
                t.state = State::Ready;
            }
        }
        wake_spinners(&mut g);
        if g.running == Some(tid) {
            g.running = None;
        }
        self.cond.notify_all();
    }

    // ------------------------------------------------------------------
    // Happens-before recording (called while Running, never yields)
    // ------------------------------------------------------------------

    /// Records an atomic store at `addr`. A release store *replaces* the
    /// location's message with the thread clock; a relaxed store releases
    /// the clock of the last release fence (empty if none), breaking the
    /// release sequence per C11.
    pub(crate) fn atomic_store(&self, tid: usize, addr: usize, order: Ordering) {
        let mut g = lock(&self.inner);
        let msg = if is_release(order) {
            g.threads[tid].clock.clone()
        } else {
            g.threads[tid].fence_rel.clone()
        };
        g.atomic_msgs.insert(addr, msg);
        if is_release(order) {
            g.threads[tid].clock.bump(tid);
        }
        wake_spinners(&mut g);
    }

    /// Records an atomic load at `addr`: an acquire load joins the
    /// location's message into the thread clock; a relaxed load only
    /// accumulates it for a later acquire fence.
    pub(crate) fn atomic_load(&self, tid: usize, addr: usize, order: Ordering) {
        let mut g = lock(&self.inner);
        if let Some(msg) = g.atomic_msgs.get(&addr).cloned() {
            if is_acquire(order) {
                g.threads[tid].clock.join(&msg);
            } else {
                g.threads[tid].fence_acq.join(&msg);
            }
        }
    }

    /// Records an atomic read-modify-write at `addr`: the load half as in
    /// [`Self::atomic_load`]; the store half *joins* into the message (an
    /// RMW continues the release sequence rather than replacing it).
    pub(crate) fn atomic_rmw(&self, tid: usize, addr: usize, order: Ordering) {
        let mut g = lock(&self.inner);
        if let Some(msg) = g.atomic_msgs.get(&addr).cloned() {
            if is_acquire(order) {
                g.threads[tid].clock.join(&msg);
            } else {
                g.threads[tid].fence_acq.join(&msg);
            }
        }
        let published = if is_release(order) {
            g.threads[tid].clock.clone()
        } else {
            g.threads[tid].fence_rel.clone()
        };
        if !published.is_empty() {
            g.atomic_msgs.entry(addr).or_default().join(&published);
        }
        if is_release(order) {
            g.threads[tid].clock.bump(tid);
        }
        wake_spinners(&mut g);
    }

    /// Records a memory fence per the C11 fence rules.
    pub(crate) fn fence(&self, tid: usize, order: Ordering) {
        let mut g = lock(&self.inner);
        if is_acquire(order) {
            let pending = std::mem::take(&mut g.threads[tid].fence_acq);
            g.threads[tid].clock.join(&pending);
        }
        if is_release(order) {
            g.threads[tid].fence_rel = g.threads[tid].clock.clone();
        }
    }

    /// Checks a `ModelCell` access against the recorded read/write epochs
    /// and updates them. Returns a race report when the access is not
    /// ordered (by the clocks) after every conflicting prior access.
    pub(crate) fn cell_access(
        &self,
        tid: usize,
        addr: usize,
        is_write: bool,
    ) -> Result<(), String> {
        let mut g = lock(&self.inner);
        let clock = g.threads[tid].clock.clone();
        let cell = g.cells.entry(addr).or_default();
        if let Some((writer, epoch)) = cell.write {
            if writer != tid && clock.get(writer) < epoch {
                return Err(format!(
                    "data race on cell {addr:#x}: {} by thread {tid} is not \
                     ordered after the write by thread {writer}",
                    if is_write { "write" } else { "read" },
                ));
            }
        }
        if is_write {
            if let Some(reader) = cell.reads.first_exceeding(&clock) {
                if reader != tid {
                    return Err(format!(
                        "data race on cell {addr:#x}: write by thread {tid} is \
                         not ordered after the read by thread {reader}",
                    ));
                }
            }
            cell.write = Some((tid, clock.get(tid)));
            cell.reads = VClock::default();
        } else {
            cell.reads.record(tid, clock.get(tid));
        }
        Ok(())
    }

    /// Bounded-spin-then-yield shim: counts consecutive spin hints and,
    /// once the budget is spent, parks the thread as [`BlockKind::Spin`]
    /// (re-running it before anyone else makes progress would only repeat
    /// the same loads). Under budget it is an ordinary yield.
    pub(crate) fn spin_hint(&self, tid: usize) {
        let mut g = lock(&self.inner);
        let rec = &mut g.threads[tid];
        rec.spin_streak += 1;
        if rec.spin_streak >= SPIN_BUDGET {
            rec.spin_streak = 0;
            rec.state = State::Blocked(BlockKind::Spin);
        } else {
            rec.state = State::Ready;
        }
        g.running = None;
        self.cond.notify_all();
        drop(self.wait_for_grant(g, tid));
    }

    // ------------------------------------------------------------------
    // Driver side
    // ------------------------------------------------------------------

    /// Waits until no virtual thread holds the baton, then reports the
    /// execution status: the set of grantable thread ids (sorted), whether
    /// all threads finished, and any recorded panic.
    pub(crate) fn wait_quiescent(&self) -> StepStatus {
        let mut g = lock(&self.inner);
        // A pending grant counts as "someone is running": the granted
        // thread just has not woken yet. Treating it as quiescent would
        // double-grant.
        while (g.running.is_some() || g.granted.is_some()) && g.panic.is_none() {
            g = self.cond.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some((tid, msg)) = g.panic.clone() {
            return StepStatus::Panicked { tid, message: msg };
        }
        let mut eligible = Vec::new();
        let mut spinning = Vec::new();
        let mut unfinished = Vec::new();
        for (tid, t) in g.threads.iter().enumerate() {
            match t.state {
                State::Ready => eligible.push(tid),
                State::Blocked(BlockKind::Condvar {
                    timeout_eligible: true,
                }) => eligible.push(tid),
                State::Blocked(BlockKind::Spin) => spinning.push(tid),
                State::Finished => continue,
                _ => {}
            }
            if t.state != State::Finished {
                unfinished.push((tid, t.state));
            }
        }
        if unfinished.is_empty() {
            return StepStatus::Complete;
        }
        let mut spin_fallback = false;
        if eligible.is_empty() {
            // Spin-parked threads are schedulable again only once someone
            // writes (see `wake_spinners`) — unless they are all that's
            // left. A spin loop may itself write on its next probe (CAS
            // retries, statistics), so this is not provably a deadlock;
            // granting a spinner keeps a true livelock marching toward the
            // step limit instead of misreporting it.
            eligible = spinning;
            spin_fallback = true;
        }
        if eligible.is_empty() {
            let blocked = unfinished
                .iter()
                .map(|(tid, st)| format!("thread {tid}: {}", describe(*st)))
                .collect::<Vec<_>>()
                .join("; ");
            return StepStatus::Deadlock {
                blocked,
                schedule: g.schedule.clone(),
            };
        }
        StepStatus::Choose {
            eligible,
            spin_fallback,
        }
    }

    /// Grants the baton to `tid`. Granting a condvar waiter that is only
    /// eligible through its timeout fires the timeout: the waiter leaves
    /// the queue and wakes with `timed_out = true`.
    pub(crate) fn grant(&self, tid: usize) {
        let mut g = lock(&self.inner);
        if let State::Blocked(BlockKind::Condvar { .. }) = g.threads[tid].state {
            for q in g.cv_queues.values_mut() {
                if let Some(pos) = q.iter().position(|&t| t == tid) {
                    q.remove(pos);
                }
            }
            let rec = &mut g.threads[tid];
            rec.cv_timed_out = true;
            rec.state = State::Ready;
        }
        g.schedule.push(tid);
        g.granted = Some(tid);
        self.cond.notify_all();
    }

    /// Aborts the execution: every parked virtual thread unwinds with
    /// [`ModelAborted`] the next time it checks in.
    pub(crate) fn abort(&self) {
        let mut g = lock(&self.inner);
        g.abort = true;
        self.cond.notify_all();
    }

    /// Blocks the driver until every virtual thread has reported finished.
    /// Called after an abort so no unwinding thread leaks into the next
    /// execution (stale threads could still touch process-global state such
    /// as the parking lot while tearing down).
    pub(crate) fn wait_all_finished(&self) {
        let mut g = lock(&self.inner);
        while g.threads.iter().any(|t| t.state != State::Finished) {
            g = self.cond.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn schedule_so_far(&self) -> Vec<usize> {
        lock(&self.inner).schedule.clone()
    }
}

fn describe(state: State) -> String {
    match state {
        State::Blocked(BlockKind::Lock(addr)) => format!("blocked on mutex {addr:#x}"),
        State::Blocked(BlockKind::Condvar { timeout_eligible }) => {
            if timeout_eligible {
                "waiting on condvar (timeout-eligible)".into()
            } else {
                "waiting on condvar".into()
            }
        }
        State::Blocked(BlockKind::Join(t)) => format!("joining thread {t}"),
        State::Blocked(BlockKind::Spin) => "spin-yielded".into(),
        State::Ready => "ready".into(),
        State::Running => "running".into(),
        State::Finished => "finished".into(),
    }
}

/// Driver-visible execution status after quiescence.
pub(crate) enum StepStatus {
    /// Pick one of `eligible` and call [`Scheduler::grant`].
    /// `spin_fallback` marks a choice set of spin-parked threads offered
    /// only because nothing else is runnable: every thread in it yielded
    /// voluntarily, so granting any of them is not a preemption and the
    /// previous thread must not be forced to continue (forcing a
    /// budget-exhausted spinner would re-grant it forever).
    Choose {
        eligible: Vec<usize>,
        spin_fallback: bool,
    },
    /// All threads finished cleanly.
    Complete,
    /// No runnable thread but some unfinished: lost wakeup / lock cycle.
    Deadlock {
        blocked: String,
        schedule: Vec<usize>,
    },
    /// A virtual thread panicked (assertion failure in the model).
    Panicked { tid: usize, message: String },
}

// ----------------------------------------------------------------------
// Free-function façade used by the instrumented types. All of these are
// no-ops (or plain fallbacks) when the calling thread is not a virtual
// thread of an active execution.
// ----------------------------------------------------------------------

/// The universal scheduling point: called before every instrumented
/// shared-memory operation.
#[inline]
pub fn yield_point() {
    with_current(|s, tid| s.yield_here(tid));
}

/// Spin-hint scheduling point: yields like [`yield_point`] but draws on
/// the spin budget, parking the thread once the budget is spent.
#[inline]
pub(crate) fn spin_hint() {
    with_current(|s, tid| s.spin_hint(tid));
}

pub(crate) fn block_on_lock(addr: usize) {
    with_current(|s, tid| s.block_on_lock(tid, addr));
}

pub(crate) fn lock_released(addr: usize) {
    with_current(|s, tid| s.lock_released(tid, addr));
}

pub(crate) fn sync_acquired(addr: usize) {
    with_current(|s, tid| s.sync_acquired(tid, addr));
}

pub(crate) fn atomic_store(addr: usize, order: Ordering) {
    with_current(|s, tid| s.atomic_store(tid, addr, order));
}

pub(crate) fn atomic_load(addr: usize, order: Ordering) {
    with_current(|s, tid| s.atomic_load(tid, addr, order));
}

pub(crate) fn atomic_rmw(addr: usize, order: Ordering) {
    with_current(|s, tid| s.atomic_rmw(tid, addr, order));
}

pub(crate) fn fence(order: Ordering) {
    with_current(|s, tid| s.fence(tid, order));
}

/// Race-checks a `ModelCell` access; panics with a `data race …` message
/// (classified as [`crate::FailureKind::Race`] by the explorer) when the
/// access conflicts with an unordered prior access.
pub(crate) fn cell_access(addr: usize, is_write: bool) {
    if let Some(Err(report)) = with_current(|s, tid| s.cell_access(tid, addr, is_write)) {
        panic!("{report}");
    }
}

pub(crate) fn condvar_enqueue(cv: usize) {
    with_current(|s, tid| s.condvar_enqueue(tid, cv));
}

pub(crate) fn condvar_block(cv: usize, timeout_eligible: bool) -> bool {
    with_current(|s, tid| s.condvar_block(tid, cv, timeout_eligible)).unwrap_or(false)
}

pub(crate) fn condvar_notify(cv: usize, all: bool) {
    with_current(|s, _| s.condvar_notify(cv, all));
}
