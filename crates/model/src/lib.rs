//! Deterministic concurrency explorer for the GLS lock protocols.
//!
//! This crate is a vendored, offline, loom/shuttle-style model checker
//! (the `vendor/rand` pattern — no network dependencies). A *model* is an
//! ordinary closure that spawns virtual threads via [`thread::spawn`] and
//! touches shared state through the instrumented [`atomic`] types and the
//! model-aware [`sync::Mutex`]/[`sync::Condvar`]. The [`Explorer`] runs the
//! closure many times, each time driving a different interleaving:
//!
//! * **Exhaustive mode** ([`Explorer::exhaustive`]) walks the schedule tree
//!   depth-first under a preemption bound (Musuvathi & Qadeer-style context
//!   bounding): voluntary switches at blocking points are free, and at most
//!   `preemption_bound` involuntary switches are inserted per execution.
//!   Small models (2–4 threads, tens of steps) are covered completely.
//! * **Random mode** ([`Explorer::random`]) samples seeded schedules for
//!   larger models. Every failure report carries the per-iteration seed so
//!   the exact interleaving replays with `Explorer::random(1, seed)` (or
//!   `GLS_MODEL_SEED=<seed>` for the suites wired through
//!   [`Explorer::random_from_env`]).
//!
//! ## How virtual threads work
//!
//! Virtual threads are real OS threads coordinated by a baton: exactly one
//! runs at any moment, and it hands control back to the driver at every
//! *yield point* (each instrumented atomic op, lock acquisition, condvar
//! operation, spawn and join). The driver picks the next runnable thread
//! according to the active scheduling policy. Because only sequentially
//! consistent interleavings are generated, the explorer checks protocol
//! logic (lost wakeups, lost waiters, double-acquire, stale resurrection),
//! **not** weak-memory effects — that is what the ThreadSanitizer CI lane
//! is for.
//!
//! ## Failure taxonomy
//!
//! A schedule fails if a virtual thread panics (assertion failure), if no
//! thread is runnable while some are unfinished (deadlock — this is the
//! detector that catches lost wakeups and stranded waiters), if the
//! execution exceeds the step limit (livelock suspicion), or if the
//! happens-before race detector flags two unordered accesses to a
//! [`cell::ModelCell`] (per-thread vector clocks threaded through the
//! instrumented atomics under the C11 release/acquire/fence rules — see
//! [`atomic`]). The failure report includes the decision-by-decision
//! schedule and, in random mode, the replay seed.
//!
//! The instrumented types fall back to plain `std` behaviour whenever no
//! model execution is active on the current thread, so code built against
//! them (via the `gls_sync` facade with `--cfg gls_model`) still runs its
//! ordinary test suite correctly.

// This crate implements the synchronization discipline the rest of the
// workspace is linted against, so it is the one place allowed to touch the
// raw std primitives directly.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

pub mod atomic;
pub mod cell;
mod clock;
pub mod explore;
pub mod hint;
mod sched;
pub mod sync;
pub mod thread;

pub use cell::ModelCell;
pub use explore::{Explorer, Failure, FailureKind};
pub use sched::in_execution;
