//! Model-aware `Mutex` and `Condvar`.
//!
//! Inside an execution, `lock()` is a loop of scheduling points:
//!
//! ```text
//! loop { yield_point(); try_lock() -> ok => hold; would-block => block }
//! ```
//!
//! The baton protocol makes the classic try-then-block race impossible: a
//! thread that observes the mutex held is the *only* running thread, so the
//! holder cannot release between the failed `try_lock` and the block — a
//! release can only happen on a later step, and `lock_released` readies
//! every blocked contender then. Woken contenders re-race through
//! `try_lock`, which models the non-FIFO std mutex faithfully.
//!
//! Guard drop announces the release to the scheduler but is **not** a
//! scheduling point: yielding (or worse, panicking) inside `Drop` would
//! abort the process when the drop happens during an unwind. The release
//! is therefore glued to the previous step — a safe under-approximation
//! (it can only *miss* interleavings that a coarser protocol would also
//! miss, never fabricate impossible ones).
//!
//! Poisoning: inside the model, poisoned state is silently recovered —
//! aborted executions routinely unwind virtual threads that hold guards
//! (including process-global ones like the parking-lot buckets), and the
//! *next* execution must still be able to lock them. Outside the model the
//! std semantics pass through unchanged.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
use std::time::Duration;

use crate::sched;

/// Model-aware counterpart of [`std::sync::Mutex`].
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard for [`Mutex`]. Holds the underlying std guard in `ManuallyDrop`
/// so the drop order (unlock, then announce) is explicit.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Self as *const () as usize
    }

    fn wrap<'a>(&'a self, g: std::sync::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            lock: self,
            inner: ManuallyDrop::new(g),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if sched::in_execution() {
            loop {
                sched::yield_point();
                match self.inner.try_lock() {
                    Ok(g) => {
                        sched::sync_acquired(self.addr());
                        return Ok(self.wrap(g));
                    }
                    Err(TryLockError::Poisoned(p)) => {
                        sched::sync_acquired(self.addr());
                        return Ok(self.wrap(p.into_inner()));
                    }
                    Err(TryLockError::WouldBlock) => sched::block_on_lock(self.addr()),
                }
            }
        }
        // Also recover poison on the non-execution path: in a model build
        // the *previous* (aborted) execution may have poisoned a
        // process-global mutex — e.g. a parking-lot bucket — and the test
        // harness thread still needs to inspect it between explorations.
        match self.inner.lock() {
            Ok(g) => Ok(self.wrap(g)),
            Err(p) => Ok(self.wrap(p.into_inner())),
        }
    }

    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        if sched::in_execution() {
            sched::yield_point();
            return match self.inner.try_lock() {
                Ok(g) => {
                    sched::sync_acquired(self.addr());
                    Ok(self.wrap(g))
                }
                Err(TryLockError::Poisoned(p)) => {
                    sched::sync_acquired(self.addr());
                    Ok(self.wrap(p.into_inner()))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            };
        }
        match self.inner.try_lock() {
            Ok(g) => Ok(self.wrap(g)),
            Err(TryLockError::Poisoned(p)) => Ok(self.wrap(p.into_inner())),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let announce = sched::in_execution();
        let addr = self.lock.addr();
        // SAFETY: the guard is dropped exactly once, here; `inner` is never
        // touched again after this point.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if announce {
            sched::lock_released(addr);
        }
    }
}

/// Result of a [`Condvar::wait_timeout`]. The std type has no public
/// constructor, so the model defines its own with the same reading API.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-aware counterpart of [`std::sync::Condvar`].
///
/// Inside an execution, waits enqueue on a FIFO keyed by the condvar's
/// address *before* the mutex is released, so no notify can be lost; a
/// `wait_timeout` is additionally wakeable by the driver "firing the
/// timeout" as an ordinary scheduling choice, which lets the explorer
/// cover timeout paths deterministically.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    fn model_wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout_eligible: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let mutex = guard.lock;
        sched::yield_point();
        // Enqueue while the mutex is still held: a notifier must hold the
        // mutex to race us here, and it cannot acquire it until the drop
        // below, so the wakeup cannot be lost.
        sched::condvar_enqueue(self.addr());
        drop(guard);
        let timed_out = sched::condvar_block(self.addr(), timeout_eligible);
        let guard = mutex.lock().unwrap_or_else(PoisonError::into_inner);
        (guard, timed_out)
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if sched::in_execution() {
            let (guard, _) = self.model_wait(guard, false);
            return Ok(guard);
        }
        let mutex = guard.lock;
        let mut guard = ManuallyDrop::new(guard);
        // SAFETY: the std guard is extracted exactly once and the wrapper's
        // Drop is suppressed, so the vacated slot is never touched again.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.inner) };
        match self.inner.wait(std_guard) {
            Ok(g) => Ok(mutex.wrap(g)),
            Err(p) => Err(PoisonError::new(mutex.wrap(p.into_inner()))),
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if sched::in_execution() {
            let (guard, timed_out) = self.model_wait(guard, true);
            return Ok((guard, WaitTimeoutResult { timed_out }));
        }
        let mutex = guard.lock;
        let mut guard = ManuallyDrop::new(guard);
        // SAFETY: as in `wait` — single extraction, wrapper Drop suppressed.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.inner) };
        match self.inner.wait_timeout(std_guard, dur) {
            Ok((g, r)) => Ok((
                mutex.wrap(g),
                WaitTimeoutResult {
                    timed_out: r.timed_out(),
                },
            )),
            Err(p) => {
                let (g, r) = p.into_inner();
                Err(PoisonError::new((
                    mutex.wrap(g),
                    WaitTimeoutResult {
                        timed_out: r.timed_out(),
                    },
                )))
            }
        }
    }

    pub fn notify_one(&self) {
        if sched::in_execution() {
            sched::yield_point();
            sched::condvar_notify(self.addr(), false);
            return;
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if sched::in_execution() {
            sched::yield_point();
            sched::condvar_notify(self.addr(), true);
            return;
        }
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}
