//! Model-aware spin hints.

use crate::sched;

/// Model-aware [`std::hint::spin_loop`]: inside an execution a spin is a
/// scheduling point (otherwise a spin loop would never let the thread it is
/// waiting on run); outside it is the plain CPU hint.
#[inline]
pub fn spin_loop() {
    if sched::in_execution() {
        sched::yield_point();
    } else {
        std::hint::spin_loop();
    }
}
