//! Model-aware spin hints.

use crate::sched;

/// Model-aware [`std::hint::spin_loop`]: inside an execution a spin is a
/// scheduling point that draws on the per-thread spin budget — after K
/// consecutive hints the thread parks and is only rescheduled once another
/// thread has run (the bounded-spin-then-yield shim; see the scheduler).
/// Without the budget a busy-waiting virtual thread would stay eligible
/// forever and the exhaustive DFS would chase its no-preemption branch to
/// the step limit. Outside an execution it is the plain CPU hint.
#[inline]
pub fn spin_loop() {
    if sched::in_execution() {
        sched::spin_hint();
    } else {
        std::hint::spin_loop();
    }
}
