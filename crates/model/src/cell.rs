//! A race-checked [`UnsafeCell`] stand-in.
//!
//! `ModelCell` wraps the plain-data fields a lock protects. Each `with` /
//! `with_mut` access is a scheduling point that records a read or write
//! epoch against the owning thread's vector clock; when two accesses are
//! not ordered by happens-before (release/acquire atomics, mutexes,
//! spawn/join — see [`crate::atomic`]), the execution fails with a
//! `data race …` panic that the explorer classifies as
//! [`FailureKind::Race`](crate::FailureKind::Race), schedule and replay
//! seed included. The flagged race is a property of the *clocks*, not the
//! interleaving: a protocol that merely got lucky with timing still fails.
//!
//! The closure receives a raw pointer (the loom convention): the actual
//! dereference stays `unsafe` at the call site, and the baton protocol
//! guarantees the access itself is physically exclusive — the model
//! detects *logical* races, it does not rely on them corrupting memory.

use std::cell::UnsafeCell;

use crate::sched;

/// An `UnsafeCell` whose accesses are checked by the happens-before race
/// detector during model executions (and plain accesses outside them).
#[derive(Debug, Default)]
pub struct ModelCell<T> {
    inner: UnsafeCell<T>,
}

// SAFETY: ModelCell is a plain-data container like UnsafeCell; sending it
// moves the value with exclusive access. T: Send is required so the value
// may be dropped or accessed from another thread.
unsafe impl<T: Send> Send for ModelCell<T> {}
// SAFETY: sharing a ModelCell only hands out raw pointers via
// `with`/`with_mut`; callers take responsibility for synchronizing the
// dereference (that is the cell's whole point — under the model, the race
// detector verifies they actually did).
unsafe impl<T: Send> Sync for ModelCell<T> {}

impl<T> ModelCell<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: UnsafeCell::new(value),
        }
    }

    /// Records a read access and runs `f` with a shared raw pointer to the
    /// value. Panics (failing the exploration) if the read races a write.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        sched::yield_point();
        sched::cell_access(self.inner.get() as usize, false);
        f(self.inner.get())
    }

    /// Records a write access and runs `f` with an exclusive raw pointer
    /// to the value. Panics (failing the exploration) if the write races
    /// any other access.
    #[inline]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        sched::yield_point();
        sched::cell_access(self.inner.get() as usize, true);
        f(self.inner.get())
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}
