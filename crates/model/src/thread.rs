//! Virtual-thread spawn/join. Inside an execution these register with the
//! scheduler and participate in the baton protocol; outside they are plain
//! `std::thread` operations, so code built against the facade still works
//! in ordinary tests.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::sched::{self, Scheduler};

/// A handle to a (possibly virtual) spawned thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    /// Virtual-thread id when spawned inside an execution.
    vtid: Option<(Arc<Scheduler>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside an
    /// execution this is a scheduling point and blocks the virtual thread
    /// until the target finishes.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((sched, target)) = &self.vtid {
            if let Some((_, me)) = sched::current_scheduler() {
                sched::yield_point();
                sched.block_on_join(me, *target);
            }
        }
        self.inner.join()
    }

    /// Whether the thread has finished (non-instrumented).
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Spawns a thread. Inside an execution the new thread is a virtual thread:
/// it starts Ready and runs only when the scheduler grants it the baton.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T,
    F: Send + 'static,
    T: Send + 'static,
{
    match sched::current_scheduler() {
        Some((sched, _)) => {
            // Register at a deterministic point in the parent's schedule,
            // and create the OS thread *before* yielding: the yield lets the
            // driver grant the new tid immediately, and that grant can only
            // be consumed if the OS thread exists (the parent, who creates
            // it, is itself waiting for a grant after the yield).
            let tid = sched.register_thread();
            let sched2 = Arc::clone(&sched);
            let inner = std::thread::spawn(move || run_vthread(sched2, tid, f));
            sched::yield_point();
            JoinHandle {
                inner,
                vtid: Some((sched, tid)),
            }
        }
        None => JoinHandle {
            inner: std::thread::spawn(f),
            vtid: None,
        },
    }
}

/// Body wrapper for every virtual thread: installs the thread-local
/// scheduler handle, waits for the first baton grant, runs the closure, and
/// reports completion (or the panic) to the driver. The initial wait sits
/// *inside* the `catch_unwind` so an abort that lands before the thread ever
/// ran still reaches `finish_thread` — otherwise the driver would wait for
/// it forever.
pub(crate) fn run_vthread<F, T>(sched: Arc<Scheduler>, tid: usize, f: F) -> T
where
    F: FnOnce() -> T,
{
    sched::install(Arc::clone(&sched), tid);
    let result = catch_unwind(AssertUnwindSafe(|| {
        sched.wait_initial(tid);
        f()
    }));
    sched::uninstall();
    match result {
        Ok(value) => {
            sched.finish_thread(tid, None);
            value
        }
        Err(payload) => {
            // User guards already dropped during the unwind that
            // `catch_unwind` absorbed, so reporting finished here cannot be
            // followed by further model operations from this thread.
            let msg = if is_abort_payload(payload.as_ref()) {
                None
            } else {
                Some(panic_message(payload.as_ref()))
            };
            sched.finish_thread(tid, msg);
            resume_unwind(payload)
        }
    }
}

/// Yields the baton inside an execution; plain `yield_now` outside. A
/// model-mode yield draws on the spin budget like a spin hint: `yield_now`
/// means "I made no progress — run someone else", so once the budget is
/// spent the thread parks until another thread has actually run.
#[inline]
pub fn yield_now() {
    if sched::in_execution() {
        sched::spin_hint();
    } else {
        std::thread::yield_now();
    }
}

/// Renders a panic payload for failure reports.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

pub(crate) fn is_abort_payload(payload: &(dyn Any + Send)) -> bool {
    payload.is::<sched::ModelAborted>()
}
