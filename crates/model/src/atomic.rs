//! Instrumented drop-in replacements for `std::sync::atomic`.
//!
//! Every operation is a scheduling point *before* it executes, so the
//! driver can interleave other threads between any two shared-memory
//! accesses; the access itself then happens atomically at the chosen step.
//! The exploration itself is sequentially consistent — the explorer checks
//! protocol logic, not weak-memory reorderings — but the memory orderings
//! are *not* ignored: each operation feeds the happens-before race
//! detector per the C11 rules (release stores/RMWs publish the thread's
//! vector clock, acquire loads join it, RMWs continue release sequences,
//! [`fence`] applies the fence rules), so a [`crate::cell::ModelCell`]
//! access synchronized only by ordering-insufficient atomics is reported
//! as a data race even though the interleaving happened to be benign.
//!
//! When the calling thread is not part of an active execution the yield is
//! a no-op and the types behave exactly like their `std` counterparts, so a
//! `--cfg gls_model` build still runs the ordinary test suites correctly.

pub use std::sync::atomic::Ordering;

use crate::sched;

macro_rules! int_atomic {
    ($name:ident, $std:ty, $int:ty) => {
        /// Instrumented counterpart of the matching `std::sync::atomic` type.
        #[derive(Default, Debug)]
        #[repr(transparent)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub const fn new(v: $int) -> Self {
                Self {
                    inner: <$std>::new(v),
                }
            }

            #[inline]
            pub fn load(&self, order: Ordering) -> $int {
                sched::yield_point();
                sched::atomic_load(self as *const Self as usize, order);
                self.inner.load(order)
            }

            #[inline]
            pub fn store(&self, v: $int, order: Ordering) {
                sched::yield_point();
                sched::atomic_store(self as *const Self as usize, order);
                self.inner.store(v, order)
            }

            #[inline]
            pub fn swap(&self, v: $int, order: Ordering) -> $int {
                sched::yield_point();
                sched::atomic_rmw(self as *const Self as usize, order);
                self.inner.swap(v, order)
            }

            #[inline]
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                sched::yield_point();
                let r = self.inner.compare_exchange(current, new, success, failure);
                // A failed CAS is a load with the failure ordering.
                match &r {
                    Ok(_) => sched::atomic_rmw(self as *const Self as usize, success),
                    Err(_) => sched::atomic_load(self as *const Self as usize, failure),
                }
                r
            }

            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                // Model executions use the strong variant so schedules stay
                // deterministic: a spurious weak-CAS failure would be a
                // nondeterministic branch the replay machinery cannot steer.
                self.compare_exchange(current, new, success, failure)
            }

            #[inline]
            pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                sched::yield_point();
                sched::atomic_rmw(self as *const Self as usize, order);
                self.inner.fetch_add(v, order)
            }

            #[inline]
            pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                sched::yield_point();
                sched::atomic_rmw(self as *const Self as usize, order);
                self.inner.fetch_sub(v, order)
            }

            #[inline]
            pub fn fetch_and(&self, v: $int, order: Ordering) -> $int {
                sched::yield_point();
                sched::atomic_rmw(self as *const Self as usize, order);
                self.inner.fetch_and(v, order)
            }

            #[inline]
            pub fn fetch_or(&self, v: $int, order: Ordering) -> $int {
                sched::yield_point();
                sched::atomic_rmw(self as *const Self as usize, order);
                self.inner.fetch_or(v, order)
            }

            #[inline]
            pub fn fetch_xor(&self, v: $int, order: Ordering) -> $int {
                sched::yield_point();
                sched::atomic_rmw(self as *const Self as usize, order);
                self.inner.fetch_xor(v, order)
            }

            #[inline]
            pub fn into_inner(self) -> $int {
                self.inner.into_inner()
            }

            #[inline]
            pub fn get_mut(&mut self) -> &mut $int {
                self.inner.get_mut()
            }
        }

        impl From<$int> for $name {
            fn from(v: $int) -> Self {
                Self::new(v)
            }
        }
    };
}

int_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Instrumented counterpart of `std::sync::atomic::AtomicBool`.
#[derive(Default, Debug)]
#[repr(transparent)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    #[inline]
    pub fn load(&self, order: Ordering) -> bool {
        sched::yield_point();
        sched::atomic_load(self as *const Self as usize, order);
        self.inner.load(order)
    }

    #[inline]
    pub fn store(&self, v: bool, order: Ordering) {
        sched::yield_point();
        sched::atomic_store(self as *const Self as usize, order);
        self.inner.store(v, order)
    }

    #[inline]
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        sched::yield_point();
        sched::atomic_rmw(self as *const Self as usize, order);
        self.inner.swap(v, order)
    }

    #[inline]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        sched::yield_point();
        let r = self.inner.compare_exchange(current, new, success, failure);
        // A failed CAS is a load with the failure ordering.
        match &r {
            Ok(_) => sched::atomic_rmw(self as *const Self as usize, success),
            Err(_) => sched::atomic_load(self as *const Self as usize, failure),
        }
        r
    }

    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        // Strong variant under the model for deterministic replay.
        self.compare_exchange(current, new, success, failure)
    }

    #[inline]
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        sched::yield_point();
        sched::atomic_rmw(self as *const Self as usize, order);
        self.inner.fetch_and(v, order)
    }

    #[inline]
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        sched::yield_point();
        sched::atomic_rmw(self as *const Self as usize, order);
        self.inner.fetch_or(v, order)
    }

    #[inline]
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }
}

impl From<bool> for AtomicBool {
    fn from(v: bool) -> Self {
        Self::new(v)
    }
}

/// Instrumented counterpart of `std::sync::atomic::AtomicPtr`.
#[derive(Debug)]
#[repr(transparent)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> AtomicPtr<T> {
    pub const fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    #[inline]
    pub fn load(&self, order: Ordering) -> *mut T {
        sched::yield_point();
        sched::atomic_load(self as *const Self as usize, order);
        self.inner.load(order)
    }

    #[inline]
    pub fn store(&self, p: *mut T, order: Ordering) {
        sched::yield_point();
        sched::atomic_store(self as *const Self as usize, order);
        self.inner.store(p, order)
    }

    #[inline]
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        sched::yield_point();
        sched::atomic_rmw(self as *const Self as usize, order);
        self.inner.swap(p, order)
    }

    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        sched::yield_point();
        let r = self.inner.compare_exchange(current, new, success, failure);
        // A failed CAS is a load with the failure ordering.
        match &r {
            Ok(_) => sched::atomic_rmw(self as *const Self as usize, success),
            Err(_) => sched::atomic_load(self as *const Self as usize, failure),
        }
        r
    }

    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        // Strong variant under the model for deterministic replay.
        self.compare_exchange(current, new, success, failure)
    }

    #[inline]
    pub fn into_inner(self) -> *mut T {
        self.inner.into_inner()
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }
}

/// Instrumented counterpart of [`std::sync::atomic::fence`]: a scheduling
/// point that applies the C11 fence rules to the calling thread's vector
/// clock (an acquire fence upgrades earlier relaxed loads, a release fence
/// arms later relaxed stores), then issues the real fence.
#[inline]
pub fn fence(order: Ordering) {
    sched::yield_point();
    sched::fence(order);
    std::sync::atomic::fence(order);
}
