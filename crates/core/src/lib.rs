//! # GLS & GLK — Locking Made Easy
//!
//! A Rust reproduction of the Middleware'16 paper *"Locking Made Easy"*
//! (Antić, Chatzopoulos, Guerraoui, Trigonakis — EPFL): a locking middleware
//! that removes the chores of lock-based programming and a generic lock that
//! adapts to the workload.
//!
//! The crate has two layers:
//!
//! * [`glk`] — **GLK**, the *generic lock*: a single lock object that
//!   operates as a ticket spinlock under low contention, as an MCS queue
//!   lock under high contention, and as a blocking mutex when the machine is
//!   multiprogrammed, adapting per lock and at runtime based on observed
//!   queuing and a process-wide system-load monitor.
//! * [`gls`] — **GLS**, the *generic locking service*: a middleware that maps
//!   any address (in fact any non-zero value) to a lock object, so
//!   programmers never declare, allocate, initialize or destroy locks. The
//!   default interface uses GLK; explicit interfaces expose TAS, TTAS,
//!   ticket, MCS, CLH and mutex locks, and a reader-writer interface
//!   (`read_lock`/`write_lock` + guards) backed by the adaptive
//!   [`GlkRwLock`]. A debug mode detects the classic locking bugs (including
//!   runtime deadlock detection that understands shared holders) and a
//!   profiler mode reports per-lock contention and latencies.
//!
//! ## Quick start
//!
//! ```
//! use gls::GlsService;
//!
//! // One service for the whole application (or use GlsService::global()).
//! let gls = GlsService::new();
//!
//! // Any object can be used as a lock, with no declaration or initialization.
//! let shared_config = String::from("...");
//!
//! gls.lock(&shared_config).unwrap();
//! // ... critical section ...
//! gls.unlock(&shared_config).unwrap();
//! ```
//!
//! ## Choosing algorithms explicitly
//!
//! ```
//! use gls::GlsService;
//! use gls_locks::LockKind;
//!
//! let gls = GlsService::new();
//! // A highly contended global lock: pick MCS explicitly (paper §5.1).
//! gls.lock_with(LockKind::Mcs, 0x1000).unwrap();
//! gls.unlock_with(LockKind::Mcs, 0x1000).unwrap();
//! ```
//!
//! ## Using GLK directly (no service)
//!
//! In a system that already has locking in place, GLK can be used on its own
//! "to minimize the overhead" (§1):
//!
//! ```
//! use gls::glk::GlkLock;
//!
//! let lock = GlkLock::new();
//! lock.lock();
//! lock.unlock();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod glk;
pub mod gls;

pub use error::GlsError;
pub use glk::{BlockingBackend, GlkConfig, GlkLock, GlkMode, GlkRwLock, GlkRwMode, ModeTransition};
pub use gls::{
    aggregated_cache_stats, flush_thread_cache_stats, reset_thread_cache_stats, thread_cache_stats,
    CacheStats, DeadlockTelemetry, DeadlockTrail, GlsCondvar, GlsConfig, GlsGuard, GlsMode,
    GlsReadGuard, GlsService, GlsWriteGuard, HistogramSummary, LockProfile, LockTelemetry,
    ProfileReport, TelemetryPublisher, TelemetrySnapshot, WaitOutcome, CACHE_SETS, CACHE_WAYS,
};

// Re-export the substrate types that appear in this crate's public API so
// downstream users need only one dependency.
pub use gls_locks::LockKind;

// The deadlock detector's protocol steps, re-exposed for the model tests
// in `crates/model/tests` (the service drives them in production).
#[cfg(gls_model)]
pub use gls::debug_model;

/// Convenience free functions mirroring the C interface of Table 1
/// (`gls_lock`, `gls_trylock`, `gls_unlock`, `gls_free`), all operating on
/// the process-wide default service ([`GlsService::global`]).
pub mod api {
    use super::{GlsError, GlsService};

    /// Acquires the lock associated with `m` on the global service.
    ///
    /// # Errors
    ///
    /// See [`GlsService::lock`].
    pub fn lock<T: ?Sized>(m: &T) -> Result<(), GlsError> {
        GlsService::global().lock(m)
    }

    /// Attempts to acquire the lock associated with `m` on the global service.
    ///
    /// # Errors
    ///
    /// See [`GlsService::try_lock`].
    pub fn try_lock<T: ?Sized>(m: &T) -> Result<bool, GlsError> {
        GlsService::global().try_lock(m)
    }

    /// Releases the lock associated with `m` on the global service.
    ///
    /// # Errors
    ///
    /// See [`GlsService::unlock`].
    pub fn unlock<T: ?Sized>(m: &T) -> Result<(), GlsError> {
        GlsService::global().unlock(m)
    }

    /// Removes the lock object associated with `m` from the global service.
    pub fn free<T: ?Sized>(m: &T) -> bool {
        GlsService::global().free(m)
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn global_api_roundtrip() {
            let data = vec![1, 2, 3];
            super::lock(&data).unwrap();
            assert!(!super::try_lock(&data).unwrap());
            super::unlock(&data).unwrap();
            assert!(super::try_lock(&data).unwrap());
            super::unlock(&data).unwrap();
            assert!(super::free(&data));
        }
    }
}
