//! The three operating modes of GLK (paper Figure 2).

use std::fmt;

use gls_locks::LockKind;

/// The mode a GLK lock currently operates in.
///
/// * [`GlkMode::Ticket`] — low contention: behave as a simple, fair spinlock.
/// * [`GlkMode::Mcs`] — high contention: behave as a queue-based spinlock so
///   each waiter spins on its own cache line.
/// * [`GlkMode::Mutex`] — multiprogramming: behave as a blocking lock so
///   waiters release their hardware contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum GlkMode {
    /// Ticket-spinlock mode (low contention).
    Ticket = 0,
    /// MCS queue-lock mode (high contention).
    Mcs = 1,
    /// Blocking-mutex mode (multiprogramming).
    Mutex = 2,
}

impl GlkMode {
    /// All modes, in escalation order.
    pub const ALL: [GlkMode; 3] = [GlkMode::Ticket, GlkMode::Mcs, GlkMode::Mutex];

    /// Decodes a mode from its `u8` representation.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not a valid mode discriminant (internal invariant).
    pub(crate) fn from_raw(raw: u8) -> GlkMode {
        match raw {
            0 => GlkMode::Ticket,
            1 => GlkMode::Mcs,
            2 => GlkMode::Mutex,
            other => unreachable!("invalid GLK mode discriminant: {other}"),
        }
    }

    /// The `u8` representation stored in the lock's `lock_type` field.
    pub(crate) fn as_raw(self) -> u8 {
        self as u8
    }

    /// Display name used in transition reports (matches the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            GlkMode::Ticket => "ticket",
            GlkMode::Mcs => "mcs",
            GlkMode::Mutex => "mutex",
        }
    }

    /// The concrete lock algorithm this mode corresponds to.
    pub fn lock_kind(self) -> LockKind {
        match self {
            GlkMode::Ticket => LockKind::Ticket,
            GlkMode::Mcs => LockKind::Mcs,
            GlkMode::Mutex => LockKind::Mutex,
        }
    }
}

impl fmt::Display for GlkMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single mode transition, as reported by the GLK transition log (§4.3:
/// "GLK can be configured to print the mode transitions that it performs, as
/// well as the reason behind each transition").
#[derive(Debug, Clone, PartialEq)]
pub struct ModeTransition {
    /// Mode before the transition.
    pub from: GlkMode,
    /// Mode after the transition.
    pub to: GlkMode,
    /// Smoothed queue length that informed the decision.
    pub smoothed_queue: f64,
    /// Whether the system was multiprogrammed at decision time.
    pub multiprogrammed: bool,
    /// Number of acquisitions completed when the transition happened.
    pub at_acquisition: u64,
}

impl fmt::Display for ModeTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[GLK] {} -> {} (queue: {:.2}, multiprog: {}, acq: {})",
            self.from, self.to, self.smoothed_queue, self.multiprogrammed, self.at_acquisition
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        for mode in GlkMode::ALL {
            assert_eq!(GlkMode::from_raw(mode.as_raw()), mode);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(GlkMode::Ticket.to_string(), "ticket");
        assert_eq!(GlkMode::Mcs.to_string(), "mcs");
        assert_eq!(GlkMode::Mutex.to_string(), "mutex");
    }

    #[test]
    fn lock_kind_mapping() {
        assert_eq!(GlkMode::Ticket.lock_kind(), LockKind::Ticket);
        assert_eq!(GlkMode::Mcs.lock_kind(), LockKind::Mcs);
        assert_eq!(GlkMode::Mutex.lock_kind(), LockKind::Mutex);
    }

    #[test]
    fn transition_display_mentions_modes() {
        let t = ModeTransition {
            from: GlkMode::Ticket,
            to: GlkMode::Mcs,
            smoothed_queue: 4.2,
            multiprogrammed: false,
            at_acquisition: 4096,
        };
        let s = t.to_string();
        assert!(s.contains("ticket -> mcs"));
        assert!(s.contains("4.2"));
    }
}
