//! GLK — the generic lock algorithm (§3 of the paper).
//!
//! GLK adapts, per lock and at runtime, between three modes:
//!
//! * **ticket** for low contention,
//! * **mcs** for high contention, and
//! * **mutex** (blocking) for multiprogrammed systems,
//!
//! driven by two inputs: the amount of queuing observed behind the lock
//! (sampled every [`GlkConfig::sampling_period`] critical sections and
//! smoothed with an exponential moving average) and the process-wide
//! multiprogramming signal produced by the shared
//! [`SystemLoadMonitor`](gls_runtime::SystemLoadMonitor).
//!
//! ```
//! use gls::glk::{GlkConfig, GlkLock, GlkMode};
//!
//! let lock = GlkLock::with_config(GlkConfig::default().with_transition_recording(true));
//! lock.lock();
//! // single-threaded: GLK stays in its fast ticket mode
//! assert_eq!(lock.mode(), GlkMode::Ticket);
//! lock.unlock();
//! ```

mod config;
mod lock;
mod mode;
mod rw;

pub use config::{
    BlockingBackend, BlockingDensity, DensityHandle, GlkConfig, MonitorHandle,
    DEFAULT_BLOCKING_DENSITY_THRESHOLD,
};
pub use lock::{auto_migration_stats, AutoBlockingMutex, AutoMigrationStats, GlkLock};
pub use mode::{GlkMode, ModeTransition};
pub use rw::{GlkRwLock, GlkRwMode};
