//! GLK configuration parameters and their paper defaults.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use gls_runtime::SystemLoadMonitor;

use super::mode::GlkMode;

/// Which blocking implementation GLK's mutex mode (and GLK-RW's blocking
/// mode) uses when the lock must sleep instead of spin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockingBackend {
    /// A `Mutex + Condvar` pair embedded in every lock
    /// ([`MutexLock`](gls_locks::MutexLock) /
    /// [`RwMutexLock`](gls_locks::RwMutexLock)): no shared state between
    /// locks, ~2 cache lines of per-lock wait-queue state. Fastest when a
    /// handful of hot locks block.
    PerLock,
    /// Word-sized futex locks ([`FutexLock`](gls_locks::FutexLock) /
    /// [`FutexRwLock`](gls_locks::FutexRwLock)) parked on the shared
    /// [`ParkingLot`](gls_locks::ParkingLot): one `AtomicU32` per lock, all
    /// wait queues held centrally — the right choice when a service manages
    /// thousands to millions of live locks.
    ParkingLot,
    /// Pick per lock, at runtime: each lock chooses (and **migrates**)
    /// between the per-lock and parking-lot implementations based on the
    /// live count of blocking-mode locks tracked by [`BlockingDensity`] —
    /// embedded state while few locks block, the shared lot past
    /// [`GlkConfig::blocking_density_threshold`]. Migration happens on
    /// release, by the (momentarily exclusive) holder, with waiters of the
    /// old backend draining themselves through the acquire-recheck-retry
    /// protocol — never while parked threads still need the old queue. This
    /// removes the static-knob choice entirely and is the default.
    #[default]
    Auto,
}

/// Default for [`GlkConfig::blocking_density_threshold`]: past this many
/// live blocking-mode locks the embedded `Mutex + Condvar` pairs (~2 cache
/// lines each) dominate the footprint and the shared parking lot wins.
pub const DEFAULT_BLOCKING_DENSITY_THRESHOLD: usize = 64;

/// Live count of blocking-mode locks, shared by every lock of one scope
/// (one [`GlsService`](crate::GlsService), or the process for standalone
/// GLK locks). GLK increments it when a lock enters its mutex/blocking
/// mode and decrements it on leaving; the [`BlockingBackend::Auto`]
/// heuristic reads it to pick per-lock vs parking-lot blocking state.
#[derive(Debug, Default)]
pub struct BlockingDensity {
    live: AtomicUsize,
}

impl BlockingDensity {
    /// Creates a zeroed density tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of locks currently in a blocking mode.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Records a lock entering blocking mode.
    pub fn enter(&self) {
        self.live.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lock leaving blocking mode.
    pub fn leave(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One lock's CAS-guarded membership in a [`BlockingDensity`] population:
/// `enter`/`leave` pair exactly no matter how adaptation, free/resurrect
/// and drop interleave (none of which exclude each other), so the live
/// count can never drift or underflow.
#[derive(Debug, Default)]
pub(crate) struct PopulationMembership {
    counted: std::sync::atomic::AtomicBool,
}

impl PopulationMembership {
    /// A membership record, optionally already counted (the caller must
    /// then have bumped the tracker itself, e.g. at lock construction).
    pub(crate) fn new(counted: bool) -> Self {
        Self {
            counted: std::sync::atomic::AtomicBool::new(counted),
        }
    }

    /// Joins `density` (at most once until the matching leave).
    pub(crate) fn enter(&self, density: &BlockingDensity) {
        if self
            .counted
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            density.enter();
        }
    }

    /// Leaves `density` (at most once per enter).
    pub(crate) fn leave(&self, density: &BlockingDensity) {
        if self
            .counted
            .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            density.leave();
        }
    }
}

/// Which [`BlockingDensity`] tracker a GLK lock reports to and the Auto
/// backend heuristic reads.
#[derive(Debug, Clone, Default)]
pub enum DensityHandle {
    /// The process-wide tracker (standalone GLK locks).
    #[default]
    Global,
    /// A dedicated tracker — every [`GlsService`](crate::GlsService) wires
    /// one in so the heuristic sees *that service's* lock population.
    Custom(Arc<BlockingDensity>),
}

impl DensityHandle {
    /// Resolves the handle to a tracker reference.
    pub fn density(&self) -> &BlockingDensity {
        match self {
            DensityHandle::Global => {
                static GLOBAL: OnceLock<BlockingDensity> = OnceLock::new();
                GLOBAL.get_or_init(BlockingDensity::default)
            }
            DensityHandle::Custom(d) => d,
        }
    }
}

/// Configuration of a GLK lock.
///
/// The defaults are the values chosen by the paper's sensitivity analysis
/// (§3.1) and used throughout its evaluation:
///
/// * adaptation every **4096** critical sections,
/// * queue sampling every **128** critical sections (32 samples/adaptation),
/// * ticket → mcs when the smoothed queue exceeds **3.0**,
/// * mcs → ticket when it drops below **2.0**,
/// * multiprogramming polled roughly every **100 µs** by the shared monitor,
/// * locks with close-to-zero contention never switch to mutex,
/// * exponentially more calm observations required to leave mutex mode after
///   each bounce.
///
/// # Example
///
/// ```
/// use gls::glk::GlkConfig;
///
/// let config = GlkConfig::default()
///     .with_adaptation_period(1024)
///     .with_sampling_period(64);
/// assert_eq!(config.adaptation_period, 1024);
/// ```
#[derive(Debug, Clone)]
pub struct GlkConfig {
    /// Attempt adaptation every this many completed critical sections.
    pub adaptation_period: u64,
    /// Sample the queue length every this many completed critical sections.
    pub sampling_period: u64,
    /// Switch ticket → mcs when the smoothed queue exceeds this value.
    pub ticket_to_mcs_queue: f64,
    /// Switch mcs → ticket when the smoothed queue drops below this value.
    pub mcs_to_ticket_queue: f64,
    /// Smoothing factor of the exponential moving average over per-window
    /// average queue lengths.
    pub ema_alpha: f64,
    /// Locks whose smoothed queue is below this value stay in (or return to)
    /// ticket mode even under multiprogramming: "locks that face
    /// close-to-zero contention do not cause a problem on multiprogramming".
    pub min_queue_for_mutex: f64,
    /// Initial number of calm monitor observations required before a lock may
    /// leave mutex mode; doubled after every departure to damp oscillation.
    pub initial_calm_rounds: u64,
    /// Upper bound for the exponentially growing calm requirement.
    pub max_calm_rounds: u64,
    /// The mode a fresh lock starts in.
    pub initial_mode: GlkMode,
    /// Record mode transitions so they can be inspected/printed (§4.3).
    pub record_transitions: bool,
    /// How long the shared system-load monitor sleeps between polls (only
    /// used when this configuration spawns its own monitor).
    pub monitor_interval: Duration,
    /// Which blocking implementation the lock's sleeping mode uses.
    pub blocking_backend: BlockingBackend,
    /// For [`BlockingBackend::Auto`]: switch a lock's blocking state to the
    /// shared parking lot when at least this many blocking-mode locks are
    /// live (and back to per-lock state below half of it — the hysteresis
    /// band damps migration churn around the threshold).
    pub blocking_density_threshold: usize,
    /// The blocking-density tracker consulted by the Auto heuristic.
    pub density: DensityHandle,
    /// Topology-aware handoff for parking-lot releases: when a futex release
    /// hands the lock off, prefer a waiter parked from the releaser's cache
    /// domain (bounded by the bypass budget so remote waiters cannot
    /// starve — see `gls_locks::cohort`). On single-domain machines this is
    /// identical to plain FIFO handoff; disable it to force strict FIFO on
    /// multi-socket boxes too.
    pub cohort_handoff: bool,
}

impl Default for GlkConfig {
    fn default() -> Self {
        Self {
            adaptation_period: 4096,
            sampling_period: 128,
            ticket_to_mcs_queue: 3.0,
            mcs_to_ticket_queue: 2.0,
            ema_alpha: 0.5,
            min_queue_for_mutex: 1.5,
            initial_calm_rounds: 2,
            max_calm_rounds: 1 << 20,
            initial_mode: GlkMode::Ticket,
            record_transitions: false,
            monitor_interval: Duration::from_micros(100),
            blocking_backend: BlockingBackend::default(),
            blocking_density_threshold: DEFAULT_BLOCKING_DENSITY_THRESHOLD,
            density: DensityHandle::default(),
            cohort_handoff: true,
        }
    }
}

impl GlkConfig {
    /// Sets the adaptation period (in completed critical sections).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_adaptation_period(mut self, period: u64) -> Self {
        assert!(period > 0, "adaptation period must be positive");
        self.adaptation_period = period;
        self
    }

    /// Sets the queue sampling period (in completed critical sections).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_sampling_period(mut self, period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        self.sampling_period = period;
        self
    }

    /// Sets the ticket→mcs and mcs→ticket queue thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `to_mcs < to_ticket` (the hysteresis band would be inverted).
    pub fn with_queue_thresholds(mut self, to_mcs: f64, to_ticket: f64) -> Self {
        assert!(
            to_mcs >= to_ticket,
            "ticket->mcs threshold must not be below mcs->ticket threshold"
        );
        self.ticket_to_mcs_queue = to_mcs;
        self.mcs_to_ticket_queue = to_ticket;
        self
    }

    /// Sets the initial mode of the lock.
    pub fn with_initial_mode(mut self, mode: GlkMode) -> Self {
        self.initial_mode = mode;
        self
    }

    /// Enables or disables transition recording.
    pub fn with_transition_recording(mut self, enabled: bool) -> Self {
        self.record_transitions = enabled;
        self
    }

    /// Selects the blocking implementation used when the lock sleeps:
    /// per-lock `Mutex + Condvar` state, word-sized futex locks parked on
    /// the shared parking lot, or the density-driven [`BlockingBackend::Auto`]
    /// (default).
    pub fn with_blocking_backend(mut self, backend: BlockingBackend) -> Self {
        self.blocking_backend = backend;
        self
    }

    /// Sets the live-blocking-lock count past which [`BlockingBackend::Auto`]
    /// moves blocking state onto the shared parking lot.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn with_blocking_density_threshold(mut self, threshold: usize) -> Self {
        assert!(threshold > 0, "density threshold must be positive");
        self.blocking_density_threshold = threshold;
        self
    }

    /// Sets the blocking-density tracker the Auto heuristic consults.
    pub fn with_density(mut self, density: DensityHandle) -> Self {
        self.density = density;
        self
    }

    /// Enables or disables topology-aware (cohort) handoff on parking-lot
    /// releases. Enabled by default; a no-op on single-domain machines.
    pub fn with_cohort_handoff(mut self, enabled: bool) -> Self {
        self.cohort_handoff = enabled;
        self
    }

    /// Disables adaptation entirely: the lock stays in its initial mode.
    /// (Used by the paper's overhead experiments, Figure 7.)
    pub fn without_adaptation(mut self) -> Self {
        self.adaptation_period = u64::MAX;
        self.sampling_period = u64::MAX;
        self
    }

    /// Whether adaptation is effectively disabled.
    pub fn adaptation_disabled(&self) -> bool {
        self.adaptation_period == u64::MAX
    }
}

/// Which system-load monitor a GLK lock consults for multiprogramming.
#[derive(Debug, Clone, Default)]
pub enum MonitorHandle {
    /// The process-wide monitor ([`SystemLoadMonitor::global`]); this is what
    /// the paper does — one background thread shared by all GLK locks.
    #[default]
    Global,
    /// A dedicated monitor, typically a manually polled one in tests or a
    /// per-experiment monitor in the benchmark harness.
    Custom(Arc<SystemLoadMonitor>),
}

impl MonitorHandle {
    /// Resolves the handle to a monitor reference.
    pub fn monitor(&self) -> &SystemLoadMonitor {
        match self {
            MonitorHandle::Global => SystemLoadMonitor::global(),
            MonitorHandle::Custom(m) => m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GlkConfig::default();
        assert_eq!(c.adaptation_period, 4096);
        assert_eq!(c.sampling_period, 128);
        assert_eq!(c.ticket_to_mcs_queue, 3.0);
        assert_eq!(c.mcs_to_ticket_queue, 2.0);
        assert_eq!(c.initial_mode, GlkMode::Ticket);
        assert_eq!(c.adaptation_period / c.sampling_period, 32);
        // The blocking backend is no longer a static knob by default: Auto
        // picks (and migrates) per lock based on blocking-lock density.
        assert_eq!(c.blocking_backend, BlockingBackend::Auto);
        assert_eq!(
            c.blocking_density_threshold,
            DEFAULT_BLOCKING_DENSITY_THRESHOLD
        );
        // Topology-aware handoff is on by default (harmless single-domain).
        assert!(c.cohort_handoff);
    }

    #[test]
    fn cohort_handoff_is_selectable() {
        let c = GlkConfig::default().with_cohort_handoff(false);
        assert!(!c.cohort_handoff);
        let c = c.with_cohort_handoff(true);
        assert!(c.cohort_handoff);
    }

    #[test]
    fn blocking_backend_is_selectable() {
        let c = GlkConfig::default().with_blocking_backend(BlockingBackend::ParkingLot);
        assert_eq!(c.blocking_backend, BlockingBackend::ParkingLot);
        let c = c.with_blocking_backend(BlockingBackend::PerLock);
        assert_eq!(c.blocking_backend, BlockingBackend::PerLock);
    }

    #[test]
    fn density_tracker_counts_and_resolves() {
        let density = Arc::new(BlockingDensity::new());
        assert_eq!(density.live(), 0);
        density.enter();
        density.enter();
        density.leave();
        assert_eq!(density.live(), 1);
        let handle = DensityHandle::Custom(Arc::clone(&density));
        assert_eq!(handle.density().live(), 1);
        // The global handle resolves to a process-wide singleton.
        assert!(std::ptr::eq(
            DensityHandle::Global.density(),
            DensityHandle::Global.density()
        ));
        density.leave();
    }

    #[test]
    #[should_panic(expected = "density threshold")]
    fn zero_density_threshold_rejected() {
        let _ = GlkConfig::default().with_blocking_density_threshold(0);
    }

    #[test]
    fn builder_methods_apply() {
        let c = GlkConfig::default()
            .with_adaptation_period(512)
            .with_sampling_period(16)
            .with_queue_thresholds(5.0, 1.0)
            .with_initial_mode(GlkMode::Mcs)
            .with_transition_recording(true);
        assert_eq!(c.adaptation_period, 512);
        assert_eq!(c.sampling_period, 16);
        assert_eq!(c.ticket_to_mcs_queue, 5.0);
        assert_eq!(c.mcs_to_ticket_queue, 1.0);
        assert_eq!(c.initial_mode, GlkMode::Mcs);
        assert!(c.record_transitions);
    }

    #[test]
    #[should_panic(expected = "adaptation period")]
    fn zero_adaptation_period_rejected() {
        let _ = GlkConfig::default().with_adaptation_period(0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn inverted_thresholds_rejected() {
        let _ = GlkConfig::default().with_queue_thresholds(1.0, 3.0);
    }

    #[test]
    fn without_adaptation_disables() {
        let c = GlkConfig::default().without_adaptation();
        assert!(c.adaptation_disabled());
    }

    #[test]
    fn monitor_handle_resolves() {
        let global = MonitorHandle::Global;
        let _ = global.monitor();
        let custom = MonitorHandle::Custom(Arc::new(SystemLoadMonitor::manual(Default::default())));
        assert_eq!(custom.monitor().registered_runnable(), 0);
    }
}
