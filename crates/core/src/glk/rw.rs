//! GLK-RW: the adaptive reader-writer lock.
//!
//! Kyoto Cabinet and SQLite protect their main structures with reader-writer
//! locks (§5.2), so rw locking deserves the same adaptivity GLK gives plain
//! mutual exclusion. GLK-RW switches between two underlying implementations:
//!
//! * **spin** — the TTAS-based [`RwTtasRaw`] (the paper's pthread-rwlock
//!   replacement, footnote 7) while the machine has spare hardware contexts;
//! * **blocking** — the parking [`RwMutexLock`] when the system-load monitor
//!   reports multiprogramming and the lock sees real contention, so waiters
//!   release their contexts to the OS.
//!
//! The acquisition protocol mirrors [`GlkLock`](crate::glk::GlkLock)
//! (paper Figure 4): read the mode, acquire that low-level lock, re-check the
//! mode and retry if it changed. Only a *write* holder — momentarily
//! exclusive — folds the sampled queue lengths into the EMA and flips the
//! mode, so adaptation is race-free; readers only bump the shared counters.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use gls_locks::{
    FutexRwLock, QueueInformed, RawLock, RawRwLock, RawTryLock, RwMutexLock, RwTtasRaw,
};
use gls_runtime::LockStats;

use super::config::{
    BlockingBackend, BlockingDensity, GlkConfig, MonitorHandle, PopulationMembership,
};
#[cfg(test)]
use super::lock::AUTO_PER_LOCK;
use super::lock::{decide_backend, AutoCore, AUTO_PARKING, AUTO_UNDECIDED};

/// The rw counterpart of [`AutoBlockingMutex`](super::AutoBlockingMutex),
/// sharing its [`AutoCore`] (backend selection, lazy per-lock box,
/// migrate-on-release): migrates between an embedded [`RwMutexLock`] and
/// the word-sized [`FutexRwLock`], driven by blocking-lock density.
/// Backend flips happen only under a held **write** lock (momentarily
/// exclusive, like GLK-RW's mode flips): readers pin the backend for the
/// duration of their hold, so `read_unlock` always releases the backend
/// the reader acquired. Write releases migrate in-line; a *released*
/// reader that notices the density decision has flipped try-acquires the
/// write slot of the current backend and, if it wins (momentarily
/// exclusive), migrates there — the same trick GLK-RW's reader-side EMA
/// adaptation uses — so a 100%-read phase no longer keeps a stale backend
/// until the next write arrives. Unlike the mutex flavor, no broadcast is needed on
/// migration: condvar waiters are never requeued onto rw words (see
/// `LockEntry::park_addr`), so every futex-rw waiter is native and drains
/// through acquire-recheck-release-retry.
#[derive(Debug, Default)]
struct AutoBlockingRw {
    core: AutoCore<RwMutexLock>,
    futex: FutexRwLock,
}

impl AutoBlockingRw {
    fn read_lock(&self, density: &BlockingDensity, threshold: usize) {
        loop {
            let backend = self.core.backend_or_decide(density, threshold);
            if backend == AUTO_PARKING {
                self.futex.read_lock();
            } else {
                self.core.per_lock_backend().read_lock();
            }
            if self.core.backend() == backend {
                return;
            }
            self.read_unlock_backend(backend);
        }
    }

    fn try_read_lock(&self, density: &BlockingDensity, threshold: usize) -> bool {
        loop {
            let backend = self.core.backend_or_decide(density, threshold);
            let acquired = if backend == AUTO_PARKING {
                self.futex.try_read_lock()
            } else {
                self.core.per_lock_backend().try_read_lock()
            };
            if !acquired {
                return false;
            }
            if self.core.backend() == backend {
                return true;
            }
            self.read_unlock_backend(backend);
        }
    }

    #[inline]
    fn read_unlock_backend(&self, backend: u8) {
        if backend == AUTO_PARKING {
            self.futex.read_unlock();
        } else {
            self.core.per_lock_backend().read_unlock();
        }
    }

    /// Releases shared access. A reader's hold pins the backend (flipping
    /// requires the write lock of the current backend), so the value read
    /// here names the backend actually held. After releasing, a reader
    /// that notices the density decision flipped runs the migration itself
    /// (guarded by a try-acquired write slot); without this a 100%-read
    /// workload would keep a stale backend until the next write release.
    fn read_unlock(&self, density: &BlockingDensity, threshold: usize) {
        let backend = self.core.backend();
        self.read_unlock_backend(backend);
        if backend != AUTO_UNDECIDED && decide_backend(density, threshold, backend) != backend {
            self.migrate_from_reader(density, threshold);
        }
    }

    /// Runs the backend migration from the read-side release path, guarded
    /// by a try-acquired write slot on the current backend (which makes the
    /// caller momentarily exclusive, exactly like a write release). Losing
    /// the race is fine: some holder is active and its release — or a later
    /// reader's — picks the decision up.
    #[cold]
    fn migrate_from_reader(&self, density: &BlockingDensity, threshold: usize) {
        let current = self.core.backend();
        if !self.try_write_lock_backend(current) {
            return;
        }
        if self.core.backend() == current {
            let (held, _) = self.core.migrate_on_release(density, threshold);
            debug_assert_eq!(held, current);
            self.write_unlock_backend(held);
        } else {
            // The backend flipped between the load and the slot win: we
            // hold (and must release) the stale backend, nothing to do.
            self.write_unlock_backend(current);
        }
    }

    fn write_lock(&self, density: &BlockingDensity, threshold: usize) {
        loop {
            let backend = self.core.backend_or_decide(density, threshold);
            if backend == AUTO_PARKING {
                self.futex.lock();
            } else {
                self.core.per_lock_backend().lock();
            }
            if self.core.backend() == backend {
                return;
            }
            self.write_unlock_backend(backend);
        }
    }

    #[inline]
    fn try_write_lock_backend(&self, backend: u8) -> bool {
        if backend == AUTO_PARKING {
            self.futex.try_lock()
        } else {
            self.core.per_lock_backend().try_lock()
        }
    }

    fn try_write_lock(&self, density: &BlockingDensity, threshold: usize) -> bool {
        loop {
            let backend = self.core.backend_or_decide(density, threshold);
            if !self.try_write_lock_backend(backend) {
                return false;
            }
            if self.core.backend() == backend {
                return true;
            }
            self.write_unlock_backend(backend);
        }
    }

    #[inline]
    fn write_unlock_backend(&self, backend: u8) {
        if backend == AUTO_PARKING {
            self.futex.unlock();
        } else {
            self.core.per_lock_backend().unlock();
        }
    }

    /// Releases exclusive access, migrating the backend first when the
    /// density heuristic says so (the write holder is exclusive, so the
    /// flip is race-free and lands before the release).
    fn write_unlock(&self, density: &BlockingDensity, threshold: usize) {
        let (current, _) = self.core.migrate_on_release(density, threshold);
        self.write_unlock_backend(current);
    }

    fn is_locked(&self) -> bool {
        self.futex.is_locked()
            || self
                .core
                .per_lock_allocated()
                .is_some_and(RwMutexLock::is_locked)
    }

    fn queue_length(&self) -> u64 {
        self.futex.queue_length()
            + self
                .core
                .per_lock_allocated()
                .map_or(0, RwMutexLock::queue_length)
    }
}

/// The low-level lock behind [`GlkRwMode::Blocking`], chosen by
/// [`GlkConfig::blocking_backend`].
#[derive(Debug)]
enum BlockingRw {
    /// Per-lock `Mutex + Condvar` parking state.
    PerLock(RwMutexLock),
    /// One `AtomicU32`; waiters park in [`gls_locks::ParkingLot::global`].
    Parking(FutexRwLock),
    /// Migrates between the two based on blocking-lock density.
    Auto(AutoBlockingRw),
}

impl BlockingRw {
    fn new(backend: BlockingBackend) -> Self {
        match backend {
            BlockingBackend::PerLock => BlockingRw::PerLock(RwMutexLock::new()),
            BlockingBackend::ParkingLot => BlockingRw::Parking(FutexRwLock::new()),
            BlockingBackend::Auto => BlockingRw::Auto(AutoBlockingRw::default()),
        }
    }

    #[inline]
    fn read_lock(&self, config: &GlkConfig) {
        match self {
            BlockingRw::PerLock(l) => l.read_lock(),
            BlockingRw::Parking(l) => l.read_lock(),
            BlockingRw::Auto(l) => {
                l.read_lock(config.density.density(), config.blocking_density_threshold)
            }
        }
    }

    #[inline]
    fn try_read_lock(&self, config: &GlkConfig) -> bool {
        match self {
            BlockingRw::PerLock(l) => l.try_read_lock(),
            BlockingRw::Parking(l) => l.try_read_lock(),
            BlockingRw::Auto(l) => {
                l.try_read_lock(config.density.density(), config.blocking_density_threshold)
            }
        }
    }

    #[inline]
    fn read_unlock(&self, config: &GlkConfig) {
        match self {
            BlockingRw::PerLock(l) => l.read_unlock(),
            BlockingRw::Parking(l) => l.read_unlock(),
            BlockingRw::Auto(l) => {
                l.read_unlock(config.density.density(), config.blocking_density_threshold)
            }
        }
    }

    #[inline]
    fn write_lock(&self, config: &GlkConfig) {
        match self {
            BlockingRw::PerLock(l) => l.lock(),
            BlockingRw::Parking(l) => l.lock(),
            BlockingRw::Auto(l) => {
                l.write_lock(config.density.density(), config.blocking_density_threshold)
            }
        }
    }

    #[inline]
    fn try_write_lock(&self, config: &GlkConfig) -> bool {
        match self {
            BlockingRw::PerLock(l) => l.try_lock(),
            BlockingRw::Parking(l) => l.try_lock(),
            BlockingRw::Auto(l) => {
                l.try_write_lock(config.density.density(), config.blocking_density_threshold)
            }
        }
    }

    #[inline]
    fn write_unlock(&self, config: &GlkConfig) {
        match self {
            BlockingRw::PerLock(l) => l.unlock(),
            BlockingRw::Parking(l) => l.unlock(),
            BlockingRw::Auto(l) => {
                l.write_unlock(config.density.density(), config.blocking_density_threshold)
            }
        }
    }

    fn is_locked(&self) -> bool {
        match self {
            BlockingRw::PerLock(l) => l.is_locked(),
            BlockingRw::Parking(l) => l.is_locked(),
            BlockingRw::Auto(l) => l.is_locked(),
        }
    }

    fn queue_length(&self) -> u64 {
        match self {
            BlockingRw::PerLock(l) => l.queue_length(),
            BlockingRw::Parking(l) => l.queue_length(),
            BlockingRw::Auto(l) => l.queue_length(),
        }
    }
}

/// The two operating modes of [`GlkRwLock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlkRwMode {
    /// TTAS-based spinning readers and writers.
    Spin,
    /// Parking readers and writers (multiprogrammed systems).
    Blocking,
}

impl GlkRwMode {
    pub(crate) fn as_raw(self) -> u8 {
        match self {
            GlkRwMode::Spin => 0,
            GlkRwMode::Blocking => 1,
        }
    }

    pub(crate) fn from_raw(raw: u8) -> Self {
        match raw {
            0 => GlkRwMode::Spin,
            _ => GlkRwMode::Blocking,
        }
    }

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            GlkRwMode::Spin => "rw-spin",
            GlkRwMode::Blocking => "rw-blocking",
        }
    }
}

/// The adaptive reader-writer lock (GLK-RW).
///
/// # Example
///
/// ```
/// use gls::glk::{GlkRwLock, GlkRwMode};
///
/// let lock = GlkRwLock::new();
/// lock.read_lock();
/// assert_eq!(lock.mode(), GlkRwMode::Spin); // fresh locks spin
/// lock.read_unlock();
/// lock.write_lock();
/// lock.write_unlock();
/// ```
#[derive(Debug)]
pub struct GlkRwLock {
    /// Current mode (the rw counterpart of the paper's `lock_type`).
    mode: AtomicU8,
    /// Low-level lock used in [`GlkRwMode::Spin`].
    spin: RwTtasRaw,
    /// Low-level lock used in [`GlkRwMode::Blocking`] (backend per
    /// [`GlkConfig::blocking_backend`]).
    blocking: BlockingRw,
    /// Acquisition counts and queue samples (reads and writes combined).
    stats: LockStats,
    /// Exponential moving average of per-window queue lengths (f64 bits).
    ema_bits: AtomicU64,
    /// Consecutive calm monitor observations required to leave blocking
    /// mode; doubles after every departure, as for GLK's mutex mode.
    required_calm: AtomicU64,
    /// Raised when the acquisition count crosses an adaptation boundary on
    /// the *read* side; the next reader to win a try-acquired write slot on
    /// release runs the adaptation check. Without this, a 100%-read
    /// workload would never adapt (only write holders fold the EMA).
    adapt_pending: AtomicBool,
    /// This lock's membership in the blocking-density population (exact
    /// across racing adaptation, free/resurrect and drop, as in
    /// `GlkLock`).
    population: PopulationMembership,
    config: GlkConfig,
    monitor: MonitorHandle,
}

impl Default for GlkRwLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for GlkRwLock {
    fn drop(&mut self) {
        // A lock dying in blocking mode leaves the blocking population.
        self.leave_population();
    }
}

impl GlkRwLock {
    /// Creates a GLK-RW lock with the paper-default configuration and the
    /// process-wide system-load monitor.
    pub fn new() -> Self {
        Self::with_config(GlkConfig::default())
    }

    /// Creates a GLK-RW lock with a custom configuration.
    pub fn with_config(config: GlkConfig) -> Self {
        Self::with_config_and_monitor(config, MonitorHandle::Global)
    }

    /// Creates a GLK-RW lock with a custom configuration and system-load
    /// monitor.
    pub fn with_config_and_monitor(config: GlkConfig, monitor: MonitorHandle) -> Self {
        Self {
            mode: AtomicU8::new(GlkRwMode::Spin.as_raw()),
            spin: RwTtasRaw::new(),
            blocking: BlockingRw::new(config.blocking_backend),
            stats: LockStats::new(),
            ema_bits: AtomicU64::new(0f64.to_bits()),
            required_calm: AtomicU64::new(config.initial_calm_rounds),
            adapt_pending: AtomicBool::new(false),
            population: PopulationMembership::new(false),
            config,
            monitor,
        }
    }

    /// Joins the blocking-density population (at most once until the
    /// matching leave).
    fn enter_population(&self) {
        self.population.enter(self.config.density.density());
    }

    /// Leaves the blocking-density population (at most once per enter).
    fn leave_population(&self) {
        self.population.leave(self.config.density.density());
    }

    /// Called when this lock's GLS entry is freed: retired locks leave the
    /// live blocking population the Auto backend heuristic reads.
    pub(crate) fn note_retired(&self) {
        self.leave_population();
    }

    /// Called when this lock's GLS entry is resurrected: a lock that
    /// retired in blocking mode rejoins the population.
    pub(crate) fn note_resurrected(&self) {
        if self.mode() == GlkRwMode::Blocking {
            self.enter_population();
        }
    }

    /// The mode the lock currently operates in.
    pub fn mode(&self) -> GlkRwMode {
        GlkRwMode::from_raw(self.mode.load(Ordering::Acquire))
    }

    /// Acquisition and queuing statistics (reads and writes combined).
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Number of completed acquisitions, shared and exclusive.
    pub fn acquisitions(&self) -> u64 {
        self.stats.acquisitions()
    }

    /// Smoothed queue length currently driving adaptation decisions.
    pub fn smoothed_queue(&self) -> f64 {
        f64::from_bits(self.ema_bits.load(Ordering::Relaxed))
    }

    /// Holders plus waiters over both low-level locks: during a mode
    /// transition waiters still drain from the previous mode's lock yet keep
    /// queuing behind *this* lock.
    pub fn queue_length(&self) -> u64 {
        self.spin.queue_length() + self.blocking.queue_length()
    }

    /// Whether some thread holds the lock in either mode (racy; diagnostics
    /// only).
    pub fn is_locked(&self) -> bool {
        self.spin.is_locked() || self.blocking.is_locked()
    }

    #[inline]
    fn read_lock_mode(&self, mode: GlkRwMode) {
        match mode {
            GlkRwMode::Spin => self.spin.read_lock(),
            GlkRwMode::Blocking => self.blocking.read_lock(&self.config),
        }
    }

    #[inline]
    fn try_read_lock_mode(&self, mode: GlkRwMode) -> bool {
        match mode {
            GlkRwMode::Spin => self.spin.try_read_lock(),
            GlkRwMode::Blocking => self.blocking.try_read_lock(&self.config),
        }
    }

    #[inline]
    fn read_unlock_mode(&self, mode: GlkRwMode) {
        match mode {
            GlkRwMode::Spin => self.spin.read_unlock(),
            GlkRwMode::Blocking => self.blocking.read_unlock(&self.config),
        }
    }

    #[inline]
    fn write_lock_mode(&self, mode: GlkRwMode) {
        match mode {
            GlkRwMode::Spin => self.spin.lock(),
            GlkRwMode::Blocking => self.blocking.write_lock(&self.config),
        }
    }

    #[inline]
    fn try_write_lock_mode(&self, mode: GlkRwMode) -> bool {
        match mode {
            GlkRwMode::Spin => self.spin.try_lock(),
            GlkRwMode::Blocking => self.blocking.try_write_lock(&self.config),
        }
    }

    #[inline]
    fn write_unlock_mode(&self, mode: GlkRwMode) {
        match mode {
            GlkRwMode::Spin => self.spin.unlock(),
            GlkRwMode::Blocking => self.blocking.write_unlock(&self.config),
        }
    }

    /// Acquires shared (read) access.
    pub fn read_lock(&self) {
        loop {
            let current = self.mode();
            self.read_lock_mode(current);
            if self.mode() == current {
                // Readers never fold the EMA themselves (they are not
                // exclusive); they pace the counter, sample the queue, and
                // flag crossed adaptation boundaries for the release path.
                self.note_read_acquisition();
                return;
            }
            self.read_unlock_mode(current);
        }
    }

    /// Attempts to acquire shared access without waiting.
    pub fn try_read_lock(&self) -> bool {
        loop {
            let current = self.mode();
            if !self.try_read_lock_mode(current) {
                return false;
            }
            if self.mode() == current {
                self.note_read_acquisition();
                return true;
            }
            self.read_unlock_mode(current);
        }
    }

    /// Releases shared access.
    ///
    /// A reader in its critical section pins the mode — flipping it requires
    /// the write lock of the current mode — so reading the mode here always
    /// names the lock the reader actually holds.
    pub fn read_unlock(&self) {
        self.read_unlock_mode(self.mode());
        // Reader-side adaptation: if a read acquisition crossed an
        // adaptation boundary, the first released reader to win a
        // try-acquired write slot runs the check. Without this, a 100%-read
        // workload would never adapt — e.g. never switch to the blocking
        // rwlock under oversubscription — because only write holders fold
        // the EMA.
        if self.adapt_pending.load(Ordering::Relaxed) {
            self.adapt_from_reader();
        }
    }

    /// Statistics bookkeeping done by every successful shared acquisition.
    fn note_read_acquisition(&self) {
        let acquisitions = self.stats.record_acquisition();
        if self.config.adaptation_disabled() {
            return;
        }
        if acquisitions.is_multiple_of(self.config.sampling_period) {
            self.stats.record_queue_sample(self.queue_length());
        }
        if acquisitions.is_multiple_of(self.config.adaptation_period) {
            self.adapt_pending.store(true, Ordering::Relaxed);
        }
    }

    /// Runs the adaptation check from the read-side release path, guarded by
    /// a try-acquired write slot (which makes the caller momentarily
    /// exclusive, so folding the EMA and flipping the mode stay race-free).
    #[cold]
    fn adapt_from_reader(&self) {
        let current = self.mode();
        if !self.try_write_lock_mode(current) {
            // Another holder is active; the pending flag stays raised and a
            // later release (or a real writer's boundary) picks it up.
            return;
        }
        if self.mode() == current {
            self.adapt_pending.store(false, Ordering::Relaxed);
            self.adapt_exclusive(current);
        }
        // If the mode changed, `adapt_exclusive` stored it *before* this
        // release, exactly like the write path: unlock the lock we hold.
        self.write_unlock_mode(current);
    }

    /// Acquires exclusive (write) access.
    pub fn write_lock(&self) {
        loop {
            let current = self.mode();
            self.write_lock_mode(current);
            if self.mode() == current && !self.try_adapt(current) {
                return;
            }
            self.write_unlock_mode(current);
        }
    }

    /// Attempts to acquire exclusive access without waiting.
    pub fn try_write_lock(&self) -> bool {
        loop {
            let current = self.mode();
            if !self.try_write_lock_mode(current) {
                return false;
            }
            if self.mode() == current && !self.try_adapt(current) {
                return true;
            }
            self.write_unlock_mode(current);
        }
    }

    /// Releases exclusive access. Only the write holder may have changed the
    /// mode, and it did so *before* releasing, so the mode read here always
    /// names the lock actually held.
    pub fn write_unlock(&self) {
        self.write_unlock_mode(self.mode());
    }

    /// Statistics collection and adaptation, performed by the thread that
    /// just acquired the write lock of `current` (and therefore excludes
    /// every reader and writer of that mode). Returns `true` if the mode was
    /// changed, in which case the caller must release and retry.
    fn try_adapt(&self, current: GlkRwMode) -> bool {
        if self.config.adaptation_disabled() {
            self.stats.record_acquisition();
            return false;
        }
        let acquisitions = self.stats.record_acquisition();

        if acquisitions.is_multiple_of(self.config.sampling_period) {
            self.stats.record_queue_sample(self.queue_length());
        }
        if !acquisitions.is_multiple_of(self.config.adaptation_period) {
            return false;
        }
        self.adapt_exclusive(current)
    }

    /// Folds the sampled window into the EMA and applies the mode decision.
    /// The caller must hold the write lock of `current` (and therefore be
    /// exclusive), making the read-modify-write below race-free. Returns
    /// `true` if the mode changed (the caller must release and retry).
    fn adapt_exclusive(&self, current: GlkRwMode) -> bool {
        let window_avg = self.stats.average_queue();
        let previous = self.smoothed_queue();
        let smoothed = if self.stats.queue_samples() == 0 {
            previous
        } else if self.stats.acquisitions() <= self.config.adaptation_period {
            window_avg
        } else {
            self.config.ema_alpha * window_avg + (1.0 - self.config.ema_alpha) * previous
        };
        self.ema_bits.store(smoothed.to_bits(), Ordering::Relaxed);
        self.stats.reset_queue_window();

        let monitor = self.monitor.monitor();
        let target = self.decide_mode(current, smoothed, monitor);
        if target == current {
            return false;
        }
        self.stats.record_transition();
        gls_runtime::flight::record(
            gls_runtime::flight::FlightEventKind::ModeTransition,
            self as *const _ as usize,
            (u64::from(current.as_raw()) << 8) | u64::from(target.as_raw()),
        );
        self.mode.store(target.as_raw(), Ordering::Release);
        // Maintain the blocking-lock density the Auto backend heuristic
        // reads — after publishing the mode, so a racing
        // `note_resurrected` cannot re-count a lock that is just leaving
        // blocking mode; the CAS-guarded pairing tolerates a racing
        // free/resurrect.
        if target == GlkRwMode::Blocking {
            self.enter_population();
        } else if current == GlkRwMode::Blocking {
            self.leave_population();
        }
        true
    }

    /// The adaptation policy: blocking under multiprogramming (for locks
    /// with real contention), spinning otherwise, with the same exponential
    /// calm requirement GLK uses to leave mutex mode without bouncing.
    fn decide_mode(
        &self,
        current: GlkRwMode,
        smoothed: f64,
        monitor: &gls_runtime::SystemLoadMonitor,
    ) -> GlkRwMode {
        if monitor.is_multiprogrammed() {
            return if smoothed >= self.config.min_queue_for_mutex {
                GlkRwMode::Blocking
            } else {
                GlkRwMode::Spin
            };
        }
        if current == GlkRwMode::Blocking {
            let required = self.required_calm.load(Ordering::Relaxed);
            if monitor.calm_ticks() < required {
                return GlkRwMode::Blocking;
            }
            let next = required.saturating_mul(2).min(self.config.max_calm_rounds);
            self.required_calm.store(next, Ordering::Relaxed);
        }
        GlkRwMode::Spin
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn fast_config() -> GlkConfig {
        GlkConfig::default()
            .with_adaptation_period(256)
            .with_sampling_period(16)
    }

    fn manual_monitor() -> Arc<SystemLoadMonitor> {
        Arc::new(SystemLoadMonitor::manual(SystemLoadConfig::default()))
    }

    #[test]
    fn starts_spinning_and_counts_acquisitions() {
        let lock = GlkRwLock::new();
        assert_eq!(lock.mode(), GlkRwMode::Spin);
        for _ in 0..50 {
            lock.read_lock();
            lock.read_unlock();
            lock.write_lock();
            lock.write_unlock();
        }
        assert_eq!(lock.acquisitions(), 100);
        assert_eq!(lock.mode(), GlkRwMode::Spin);
    }

    #[test]
    fn try_variants_respect_holders() {
        let lock = GlkRwLock::new();
        assert!(lock.try_read_lock());
        assert!(!lock.try_write_lock());
        lock.read_unlock();
        assert!(lock.try_write_lock());
        assert!(!lock.try_read_lock());
        assert!(!lock.try_write_lock());
        lock.write_unlock();
        assert!(!lock.is_locked());
    }

    #[test]
    fn queue_length_reports_holders() {
        let lock = GlkRwLock::new();
        assert_eq!(lock.queue_length(), 0);
        lock.read_lock();
        lock.read_lock();
        assert_eq!(lock.queue_length(), 2);
        lock.read_unlock();
        lock.read_unlock();
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn switches_to_blocking_under_multiprogramming() {
        let monitor = manual_monitor();
        let hw = gls_runtime::hardware_contexts();
        let guards: Vec<_> = (0..hw * 2 + 1).map(|_| monitor.runnable_guard()).collect();
        monitor.poll_once();
        assert!(monitor.is_multiprogrammed());

        let lock = Arc::new(GlkRwLock::with_config_and_monitor(
            fast_config(),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if t % 2 == 0 {
                            lock.write_lock();
                            gls_runtime::spin_cycles(300);
                            lock.write_unlock();
                        } else {
                            lock.read_lock();
                            gls_runtime::spin_cycles(300);
                            lock.read_unlock();
                        }
                    }
                })
            })
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lock.mode() != GlkRwMode::Blocking && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            lock.mode(),
            GlkRwMode::Blocking,
            "multiprogrammed contended rw lock must adapt to blocking (queue {:.2})",
            lock.smoothed_queue()
        );
        drop(guards);
    }

    #[test]
    fn pure_read_workload_adapts_to_blocking_under_multiprogramming() {
        // Regression test for the reader-side adaptation gap (ROADMAP PR 2):
        // with only write holders running the adaptation check, a 100%-read
        // oversubscribed workload never switches to the blocking rwlock.
        // The reader-side trigger (boundary flag + try-acquired write slot
        // on release) must flip it.
        let monitor = manual_monitor();
        let hw = gls_runtime::hardware_contexts();
        let guards: Vec<_> = (0..hw * 2 + 1).map(|_| monitor.runnable_guard()).collect();
        monitor.poll_once();
        assert!(monitor.is_multiprogrammed());

        let lock = Arc::new(GlkRwLock::with_config_and_monitor(
            fast_config(),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        lock.read_lock();
                        gls_runtime::spin_cycles(300);
                        lock.read_unlock();
                    }
                })
            })
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lock.mode() != GlkRwMode::Blocking && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            lock.mode(),
            GlkRwMode::Blocking,
            "100%-read oversubscribed workload must adapt via the reader-side \
             trigger (smoothed queue {:.2})",
            lock.smoothed_queue()
        );
        drop(guards);
    }

    #[test]
    fn parking_backend_serves_blocking_mode() {
        use super::super::config::BlockingBackend;
        let lock = GlkRwLock::with_config(
            fast_config().with_blocking_backend(BlockingBackend::ParkingLot),
        );
        assert!(matches!(lock.blocking, BlockingRw::Parking(_)));
        // Exercise the blocking lock directly through the mode dispatchers.
        lock.blocking.read_lock(&lock.config);
        assert!(!lock.blocking.try_write_lock(&lock.config));
        lock.blocking.read_unlock(&lock.config);
        lock.blocking.write_lock(&lock.config);
        assert!(lock.blocking.is_locked());
        assert!(!lock.blocking.try_read_lock(&lock.config));
        lock.blocking.write_unlock(&lock.config);
        assert_eq!(lock.blocking.queue_length(), 0);
    }

    #[test]
    fn auto_backend_rw_roundtrip_and_migration() {
        use super::super::config::{BlockingDensity, DensityHandle};
        use std::sync::Arc;
        let density = Arc::new(BlockingDensity::new());
        let lock = GlkRwLock::with_config(
            fast_config()
                .with_blocking_backend(BlockingBackend::Auto)
                .with_blocking_density_threshold(4)
                .with_density(DensityHandle::Custom(Arc::clone(&density))),
        );
        let BlockingRw::Auto(auto) = &lock.blocking else {
            panic!("Auto config must build the auto backend");
        };
        // Low density: the first blocking use decides per-lock state.
        auto.read_lock(&density, 4);
        assert_eq!(auto.core.backend(), AUTO_PER_LOCK);
        assert!(!auto.try_write_lock(&density, 4));
        auto.read_unlock(&density, 4);
        // Raise the density past the threshold: the next write release
        // migrates the backend to the parking lot...
        for _ in 0..4 {
            density.enter();
        }
        auto.write_lock(&density, 4);
        auto.write_unlock(&density, 4);
        assert_eq!(auto.core.backend(), AUTO_PARKING);
        // ...and both sides keep excluding across the migration.
        auto.write_lock(&density, 4);
        assert!(!auto.try_read_lock(&density, 4));
        // Dropping below half the threshold migrates back on release.
        for _ in 0..4 {
            density.leave();
        }
        auto.write_unlock(&density, 4);
        assert_eq!(auto.core.backend(), AUTO_PER_LOCK);
        assert!(!auto.is_locked());
        assert_eq!(auto.queue_length(), 0);
    }

    #[test]
    fn read_only_workload_migrates_backends_in_both_directions() {
        // Regression test for the write-side-only migration trigger: with
        // migration running only in `write_unlock`, a 100%-read blocking
        // workload kept its backend until the next write arrived. A released
        // reader that wins the momentarily-exclusive write slot must fold
        // the density decision itself.
        use super::super::config::{BlockingDensity, DensityHandle};
        use std::sync::Arc;
        let density = Arc::new(BlockingDensity::new());
        let lock = GlkRwLock::with_config(
            fast_config()
                .with_blocking_backend(BlockingBackend::Auto)
                .with_blocking_density_threshold(4)
                .with_density(DensityHandle::Custom(Arc::clone(&density))),
        );
        let BlockingRw::Auto(auto) = &lock.blocking else {
            panic!("Auto config must build the auto backend");
        };
        // First blocking use under low density decides per-lock state.
        auto.read_lock(&density, 4);
        auto.read_unlock(&density, 4);
        assert_eq!(auto.core.backend(), AUTO_PER_LOCK);
        // Density crosses the threshold while only readers run: the next
        // read release must migrate to the parking lot — no writer needed.
        for _ in 0..4 {
            density.enter();
        }
        auto.read_lock(&density, 4);
        auto.read_unlock(&density, 4);
        assert_eq!(
            auto.core.backend(),
            AUTO_PARKING,
            "read release must fold the density decision"
        );
        // ...and back below half the threshold, still read-only.
        for _ in 0..4 {
            density.leave();
        }
        auto.read_lock(&density, 4);
        auto.read_unlock(&density, 4);
        assert_eq!(
            auto.core.backend(),
            AUTO_PER_LOCK,
            "read release must migrate back under the hysteresis floor"
        );
        // A concurrent holder suppresses the migration (the try-acquired
        // write slot loses): the decision is simply deferred.
        for _ in 0..4 {
            density.enter();
        }
        auto.read_lock(&density, 4);
        auto.read_lock(&density, 4);
        auto.read_unlock(&density, 4);
        assert_eq!(
            auto.core.backend(),
            AUTO_PER_LOCK,
            "a still-held read lock defers migration"
        );
        auto.read_unlock(&density, 4);
        assert_eq!(auto.core.backend(), AUTO_PARKING);
        for _ in 0..4 {
            density.leave();
        }
        assert!(!auto.is_locked());
        assert_eq!(auto.queue_length(), 0);
    }

    #[test]
    fn oversubscribed_read_only_churn_migrates_backends_live() {
        // The threaded flavor of the reader-side migration fix: more reader
        // threads than hardware contexts hammer the Auto backend while the
        // density crosses the threshold in both directions. No writer ever
        // runs, yet the backend must follow the decision within the deadline.
        use super::super::config::BlockingDensity;
        use std::sync::Arc;
        let density = Arc::new(BlockingDensity::new());
        let auto = Arc::new(AutoBlockingRw::default());
        let threshold = 4;
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..gls_runtime::hardware_contexts() + 2)
            .map(|_| {
                let auto = Arc::clone(&auto);
                let density = Arc::clone(&density);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        auto.read_lock(&density, threshold);
                        gls_runtime::spin_cycles(200);
                        auto.read_unlock(&density, threshold);
                    }
                })
            })
            .collect();
        let wait_for = |target: u8, what: &str| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while auto.core.backend() != target && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            assert_eq!(auto.core.backend(), target, "{what}");
        };
        for _ in 0..threshold {
            density.enter();
        }
        wait_for(AUTO_PARKING, "read-only churn must migrate to parking");
        for _ in 0..threshold {
            density.leave();
        }
        wait_for(AUTO_PER_LOCK, "read-only churn must migrate back");
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert!(!auto.is_locked());
    }

    #[test]
    fn readers_and_writers_stay_consistent_across_mode_flips() {
        struct Shared(std::cell::UnsafeCell<(u64, u64)>);
        // SAFETY: the cell is only touched while holding the lock under
        // test; that exclusion is exactly what the test verifies.
        unsafe impl Sync for Shared {}
        // Aggressive adaptation so the test exercises the transition
        // protocol; the monitor flips multiprogramming on and off.
        let monitor = manual_monitor();
        let lock = Arc::new(GlkRwLock::with_config_and_monitor(
            GlkConfig::default()
                .with_adaptation_period(64)
                .with_sampling_period(8),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        ));
        let shared = Arc::new(Shared(std::cell::UnsafeCell::new((0, 0))));
        let stop = Arc::new(AtomicBool::new(false));
        let flipper = {
            let monitor = Arc::clone(&monitor);
            let stop = Arc::clone(&stop);
            let hw = gls_runtime::hardware_contexts();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let guards: Vec<_> =
                        (0..hw * 2 + 1).map(|_| monitor.runnable_guard()).collect();
                    monitor.poll_once();
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    drop(guards);
                    monitor.poll_once();
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
            })
        };
        let writers: Vec<_> = (0..3)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        lock.write_lock();
                        // SAFETY: written while holding the write lock under test.
                        unsafe {
                            (*shared.0.get()).0 += 1;
                            (*shared.0.get()).1 += 1;
                        }
                        lock.write_unlock();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        lock.read_lock();
                        // SAFETY: read under the read lock; writers are excluded.
                        let (a, b) = unsafe { *shared.0.get() };
                        assert_eq!(a, b, "reader overlapped a writer across a mode flip");
                        lock.read_unlock();
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        flipper.join().unwrap();
        // SAFETY: all worker threads are joined; nothing races this read.
        assert_eq!(unsafe { (*shared.0.get()).0 }, 15_000);
    }
}
