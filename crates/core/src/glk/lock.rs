//! The GLK lock: structure, acquisition protocol and adaptation policy.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex as StdMutex;

use gls_locks::{FutexLock, McsLock, MutexLock, QueueInformed, RawLock, RawTryLock, TicketLock};
use gls_runtime::LockStats;

use super::config::{BlockingBackend, GlkConfig, MonitorHandle};
use super::mode::{GlkMode, ModeTransition};

/// The low-level lock behind [`GlkMode::Mutex`], chosen by
/// [`GlkConfig::blocking_backend`]: per-lock parking state or a word-sized
/// futex lock sleeping in the shared parking lot.
#[derive(Debug)]
pub(crate) enum BlockingMutex {
    /// `Mutex + Condvar` pair embedded in the lock.
    PerLock(MutexLock),
    /// One `AtomicU32`; waiters park in [`gls_locks::ParkingLot::global`].
    Parking(FutexLock),
}

impl BlockingMutex {
    pub(crate) fn new(backend: BlockingBackend) -> Self {
        match backend {
            BlockingBackend::PerLock => BlockingMutex::PerLock(MutexLock::new()),
            BlockingBackend::ParkingLot => BlockingMutex::Parking(FutexLock::new()),
        }
    }

    #[inline]
    pub(crate) fn lock(&self) {
        match self {
            BlockingMutex::PerLock(l) => l.lock(),
            BlockingMutex::Parking(l) => l.lock(),
        }
    }

    #[inline]
    pub(crate) fn try_lock(&self) -> bool {
        match self {
            BlockingMutex::PerLock(l) => l.try_lock(),
            BlockingMutex::Parking(l) => l.try_lock(),
        }
    }

    #[inline]
    pub(crate) fn unlock(&self) {
        match self {
            BlockingMutex::PerLock(l) => l.unlock(),
            BlockingMutex::Parking(l) => l.unlock(),
        }
    }

    pub(crate) fn is_locked(&self) -> bool {
        match self {
            BlockingMutex::PerLock(l) => l.is_locked(),
            BlockingMutex::Parking(l) => l.is_locked(),
        }
    }

    pub(crate) fn queue_length(&self) -> u64 {
        match self {
            BlockingMutex::PerLock(l) => l.queue_length(),
            BlockingMutex::Parking(l) => l.queue_length(),
        }
    }
}

/// The generic lock (GLK): a lock that adapts between ticket, MCS and mutex
/// modes based on observed contention and system load.
///
/// The structure mirrors the paper's Figure 3 — a `lock_type` flag, the three
/// low-level lock objects and the statistics counters — and the acquisition
/// protocol mirrors Figure 4: read the mode, acquire that low-level lock,
/// re-check the mode (restarting if it changed), and give the now-holder a
/// chance to adapt.
///
/// # Example
///
/// ```
/// use gls::glk::{GlkLock, GlkMode};
///
/// let lock = GlkLock::new();
/// lock.lock();
/// assert_eq!(lock.mode(), GlkMode::Ticket); // fresh locks start uncontended
/// lock.unlock();
/// ```
#[derive(Debug)]
pub struct GlkLock {
    /// Current mode (the paper's `lock_type`).
    mode: AtomicU8,
    /// Low-level lock used in [`GlkMode::Ticket`].
    ticket: TicketLock,
    /// Low-level lock used in [`GlkMode::Mcs`].
    mcs: McsLock,
    /// Low-level lock used in [`GlkMode::Mutex`] (backend per
    /// [`GlkConfig::blocking_backend`]).
    mutex: BlockingMutex,
    /// `num_acquired` / `queue_total` and friends.
    stats: LockStats,
    /// Exponential moving average of per-window queue lengths (f64 bits).
    ema_bits: AtomicU64,
    /// Consecutive calm monitor observations required to leave mutex mode;
    /// doubles after every departure (§3, "Selecting the GLK Mode").
    required_calm: AtomicU64,
    config: GlkConfig,
    monitor: MonitorHandle,
    /// Recorded transitions (only populated when
    /// [`GlkConfig::record_transitions`] is set).
    transitions: StdMutex<Vec<ModeTransition>>,
}

impl Default for GlkLock {
    fn default() -> Self {
        Self::new()
    }
}

impl GlkLock {
    /// Creates a GLK lock with the paper-default configuration and the
    /// process-wide system-load monitor.
    pub fn new() -> Self {
        Self::with_config(GlkConfig::default())
    }

    /// Creates a GLK lock with a custom configuration.
    pub fn with_config(config: GlkConfig) -> Self {
        Self::with_config_and_monitor(config, MonitorHandle::Global)
    }

    /// Creates a GLK lock with a custom configuration and system-load
    /// monitor (used by tests and by the benchmark harness, which need
    /// deterministic multiprogramming signals).
    pub fn with_config_and_monitor(config: GlkConfig, monitor: MonitorHandle) -> Self {
        Self {
            mode: AtomicU8::new(config.initial_mode.as_raw()),
            ticket: TicketLock::new(),
            mcs: McsLock::new(),
            mutex: BlockingMutex::new(config.blocking_backend),
            stats: LockStats::new(),
            ema_bits: AtomicU64::new(0f64.to_bits()),
            required_calm: AtomicU64::new(config.initial_calm_rounds),
            config,
            monitor,
            transitions: StdMutex::new(Vec::new()),
        }
    }

    /// The mode the lock currently operates in.
    pub fn mode(&self) -> GlkMode {
        GlkMode::from_raw(self.mode.load(Ordering::Acquire))
    }

    /// The configuration this lock runs with.
    pub fn config(&self) -> &GlkConfig {
        &self.config
    }

    /// Acquisition and queuing statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Number of completed acquisitions (the paper's `num_acquired`).
    pub fn acquisitions(&self) -> u64 {
        self.stats.acquisitions()
    }

    /// Smoothed queue length currently driving adaptation decisions.
    pub fn smoothed_queue(&self) -> f64 {
        f64::from_bits(self.ema_bits.load(Ordering::Relaxed))
    }

    /// Mode transitions recorded so far (empty unless
    /// [`GlkConfig::record_transitions`] is enabled).
    pub fn transitions(&self) -> Vec<ModeTransition> {
        self.transitions
            .lock()
            .map(|t| t.clone())
            .unwrap_or_default()
    }

    /// Number of threads currently holding or waiting for the lock, summed
    /// over all three low-level locks: during a mode transition waiters are
    /// still parked on the previous mode's lock, and they remain queuing
    /// behind *this* GLK lock until they migrate.
    pub fn queue_length(&self) -> u64 {
        self.ticket.queue_length() + self.mcs.queue_length() + self.mutex.queue_length()
    }

    #[inline]
    fn lock_mode(&self, mode: GlkMode) {
        match mode {
            GlkMode::Ticket => self.ticket.lock(),
            GlkMode::Mcs => self.mcs.lock(),
            GlkMode::Mutex => self.mutex.lock(),
        }
    }

    #[inline]
    fn try_lock_mode(&self, mode: GlkMode) -> bool {
        match mode {
            GlkMode::Ticket => self.ticket.try_lock(),
            GlkMode::Mcs => self.mcs.try_lock(),
            GlkMode::Mutex => self.mutex.try_lock(),
        }
    }

    #[inline]
    fn unlock_mode(&self, mode: GlkMode) {
        match mode {
            GlkMode::Ticket => self.ticket.unlock(),
            GlkMode::Mcs => self.mcs.unlock(),
            GlkMode::Mutex => self.mutex.unlock(),
        }
    }

    /// Acquires the lock (paper Figure 4).
    pub fn lock(&self) {
        loop {
            let current = self.mode();
            self.lock_mode(current);
            // Line 15 of Figure 4: if the mode is unchanged and no adaptation
            // was performed, we hold the lock; otherwise release the
            // low-level lock (possibly of the old mode) and retry.
            if self.mode() == current && !self.try_adapt(current) {
                return;
            }
            self.unlock_mode(current);
        }
    }

    /// Attempts to acquire the lock without waiting.
    pub fn try_lock(&self) -> bool {
        loop {
            let current = self.mode();
            if !self.try_lock_mode(current) {
                return false;
            }
            if self.mode() == current && !self.try_adapt(current) {
                return true;
            }
            self.unlock_mode(current);
        }
    }

    /// Releases the lock.
    ///
    /// Only the holder may change the mode, and it does so *before* releasing
    /// the low-level lock it acquired, so reading the mode here always names
    /// the lock we actually hold.
    pub fn unlock(&self) {
        self.unlock_mode(self.mode());
    }

    /// Whether the lock is currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        match self.mode() {
            GlkMode::Ticket => self.ticket.is_locked(),
            GlkMode::Mcs => self.mcs.is_locked(),
            GlkMode::Mutex => self.mutex.is_locked(),
        }
    }

    /// Statistics collection and adaptation, performed by the thread that
    /// just acquired low-level lock `current`. Returns `true` if the mode was
    /// changed (in which case the caller must release and retry).
    fn try_adapt(&self, current: GlkMode) -> bool {
        if self.config.adaptation_disabled() {
            self.stats.record_acquisition();
            return false;
        }
        let acquisitions = self.stats.record_acquisition();

        // Periodic queue sampling (paper: every 128 critical sections).
        // The sample sums all three low-level queues, not just the current
        // mode's: right after a mode switch the waiters of the previous mode
        // drain out of its queue one by one, and counting only the new lock
        // would undercount contention during that migration — the EMA would
        // collapse and bounce the mode straight back (most visible when
        // context switches are slow relative to the adaptation period).
        if acquisitions.is_multiple_of(self.config.sampling_period) {
            self.stats.record_queue_sample(self.queue_length());
        }

        // Periodic adaptation (paper: every 4096 critical sections).
        if !acquisitions.is_multiple_of(self.config.adaptation_period) {
            return false;
        }

        // Fold this window's average queuing into the EMA and reset the
        // window. Only the holder executes this, so plain read-modify-write
        // on the atomic bits is race-free.
        let window_avg = self.stats.average_queue();
        let previous = self.smoothed_queue();
        let smoothed = if self.stats.queue_samples() == 0 {
            previous
        } else {
            let alpha = self.config.ema_alpha;
            if self.stats.acquisitions() <= self.config.adaptation_period {
                window_avg
            } else {
                alpha * window_avg + (1.0 - alpha) * previous
            }
        };
        self.ema_bits.store(smoothed.to_bits(), Ordering::Relaxed);
        self.stats.reset_queue_window();

        let monitor = self.monitor.monitor();
        let target = self.decide_mode(current, smoothed, monitor);
        if target == current {
            return false;
        }

        if self.config.record_transitions {
            let transition = ModeTransition {
                from: current,
                to: target,
                smoothed_queue: smoothed,
                multiprogrammed: monitor.is_multiprogrammed(),
                at_acquisition: acquisitions,
            };
            if let Ok(mut log) = self.transitions.lock() {
                log.push(transition);
            }
        }
        self.stats.record_transition();
        self.mode.store(target.as_raw(), Ordering::Release);
        true
    }

    /// The adaptation policy (§3, "Selecting the GLK Mode").
    fn decide_mode(
        &self,
        current: GlkMode,
        smoothed: f64,
        monitor: &gls_runtime::SystemLoadMonitor,
    ) -> GlkMode {
        let multiprogrammed = monitor.is_multiprogrammed();

        // Multiprogramming forces mutex mode — but only for locks that see
        // real contention; lightly contended locks should finish their
        // critical sections as fast as possible and stay ticket.
        if multiprogrammed {
            return if smoothed >= self.config.min_queue_for_mutex {
                GlkMode::Mutex
            } else {
                GlkMode::Ticket
            };
        }

        if current == GlkMode::Mutex {
            // Leaving mutex mode requires an exponentially growing streak of
            // calm observations, to avoid bouncing: blocking reduces the
            // system load, which would immediately re-enable spinning, which
            // would re-trigger multiprogramming, and so on.
            let required = self.required_calm.load(Ordering::Relaxed);
            if monitor.calm_ticks() < required {
                return GlkMode::Mutex;
            }
            let next = (required.saturating_mul(2)).min(self.config.max_calm_rounds);
            self.required_calm.store(next, Ordering::Relaxed);
            return if smoothed > self.config.ticket_to_mcs_queue {
                GlkMode::Mcs
            } else {
                GlkMode::Ticket
            };
        }

        // Spin-mode selection with hysteresis.
        if smoothed > self.config.ticket_to_mcs_queue {
            GlkMode::Mcs
        } else if smoothed < self.config.mcs_to_ticket_queue {
            GlkMode::Ticket
        } else {
            current
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn fast_config() -> GlkConfig {
        GlkConfig::default()
            .with_adaptation_period(256)
            .with_sampling_period(16)
            .with_transition_recording(true)
    }

    fn manual_monitor() -> Arc<SystemLoadMonitor> {
        Arc::new(SystemLoadMonitor::manual(SystemLoadConfig::default()))
    }

    #[test]
    fn starts_in_ticket_mode_and_counts_acquisitions() {
        let lock = GlkLock::new();
        assert_eq!(lock.mode(), GlkMode::Ticket);
        for _ in 0..100 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.acquisitions(), 100);
        assert_eq!(
            lock.mode(),
            GlkMode::Ticket,
            "uncontended lock must stay ticket"
        );
    }

    #[test]
    fn try_lock_respects_holder() {
        let lock = GlkLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion_across_modes() {
        // Force frequent adaptation so the test exercises mode changes while
        // checking that no increment is lost.
        let lock = Arc::new(GlkLock::with_config(
            GlkConfig::default()
                .with_adaptation_period(64)
                .with_sampling_period(8),
        ));
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let guard = std::cell::UnsafeCell::new(0u64);
        struct Shared(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for Shared {}
        let shared = Arc::new(Shared(guard));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        lock.lock();
                        // Non-atomic increment: lost updates reveal any
                        // mutual-exclusion violation across mode switches.
                        unsafe { *shared.0.get() += 1 };
                        counter.fetch_add(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
        assert_eq!(unsafe { *shared.0.get() }, 80_000);
    }

    #[test]
    fn adapts_to_mcs_under_contention() {
        let lock = Arc::new(GlkLock::with_config_and_monitor(
            fast_config(),
            MonitorHandle::Custom(manual_monitor()),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        lock.lock();
                        gls_runtime::spin_cycles(500);
                        lock.unlock();
                    }
                })
            })
            .collect();
        // Wait until the lock has had ample opportunity to adapt.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lock.mode() != GlkMode::Mcs && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            lock.mode(),
            GlkMode::Mcs,
            "8 contending threads should push GLK into mcs mode (smoothed queue {:.2})",
            lock.smoothed_queue()
        );
        assert!(!lock.transitions().is_empty());
    }

    #[test]
    fn returns_to_ticket_when_contention_drops() {
        let monitor = manual_monitor();
        let lock = Arc::new(GlkLock::with_config_and_monitor(
            fast_config().with_initial_mode(GlkMode::Mcs),
            MonitorHandle::Custom(monitor),
        ));
        // Single-threaded use: the queue is always exactly 1, far below the
        // mcs->ticket threshold, so the lock must fall back to ticket mode.
        for _ in 0..2_000 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.mode(), GlkMode::Ticket);
    }

    #[test]
    fn switches_to_mutex_under_multiprogramming() {
        let monitor = manual_monitor();
        // Simulate oversubscription: more runnable threads than hardware
        // contexts, then poll once so the monitor latches the state.
        let hw = gls_runtime::hardware_contexts();
        let guards: Vec<_> = (0..hw * 2 + 1).map(|_| monitor.runnable_guard()).collect();
        monitor.poll_once();
        assert!(monitor.is_multiprogrammed());

        let lock = Arc::new(GlkLock::with_config_and_monitor(
            fast_config(),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        ));
        // Create real contention so the smoothed queue exceeds the
        // min-queue-for-mutex threshold.
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        lock.lock();
                        gls_runtime::spin_cycles(300);
                        lock.unlock();
                    }
                })
            })
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lock.mode() != GlkMode::Mutex && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.mode(), GlkMode::Mutex);
        drop(guards);
    }

    #[test]
    fn lightly_contended_locks_never_switch_to_mutex() {
        let monitor = manual_monitor();
        let hw = gls_runtime::hardware_contexts();
        let _guards: Vec<_> = (0..hw * 2 + 1).map(|_| monitor.runnable_guard()).collect();
        monitor.poll_once();
        assert!(monitor.is_multiprogrammed());

        let lock = GlkLock::with_config_and_monitor(
            fast_config(),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        );
        // Single-threaded (queue length 1 < min_queue_for_mutex): stays ticket
        // even though the system is multiprogrammed.
        for _ in 0..2_000 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.mode(), GlkMode::Ticket);
    }

    #[test]
    fn leaving_mutex_requires_calm_and_doubles_requirement() {
        let monitor = manual_monitor();
        let lock = GlkLock::with_config_and_monitor(
            fast_config().with_initial_mode(GlkMode::Mutex),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        );
        let initial_required = lock.required_calm.load(Ordering::Relaxed);
        // No calm ticks yet: the lock must stay in mutex mode.
        for _ in 0..1_000 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.mode(), GlkMode::Mutex);
        // Record plenty of calm observations, then the lock may leave.
        for _ in 0..64 {
            monitor.poll_once();
        }
        for _ in 0..1_000 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.mode(), GlkMode::Ticket);
        assert!(lock.required_calm.load(Ordering::Relaxed) > initial_required);
    }

    #[test]
    fn adaptation_disabled_freezes_mode() {
        let lock = Arc::new(GlkLock::with_config(
            GlkConfig::default()
                .with_initial_mode(GlkMode::Mcs)
                .without_adaptation(),
        ));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        lock.lock();
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.mode(), GlkMode::Mcs);
        assert!(lock.transitions().is_empty());
    }

    #[test]
    fn parking_backend_switches_to_mutex_and_excludes() {
        use super::super::config::BlockingBackend;
        let monitor = manual_monitor();
        let hw = gls_runtime::hardware_contexts();
        let _guards: Vec<_> = (0..hw * 2 + 1).map(|_| monitor.runnable_guard()).collect();
        monitor.poll_once();
        assert!(monitor.is_multiprogrammed());

        let lock = Arc::new(GlkLock::with_config_and_monitor(
            fast_config().with_blocking_backend(BlockingBackend::ParkingLot),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        ));
        assert!(matches!(lock.mutex, BlockingMutex::Parking(_)));
        struct Shared(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for Shared {}
        let shared = Arc::new(Shared(std::cell::UnsafeCell::new(0)));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        lock.lock();
                        // Non-atomic increment: lost updates reveal any
                        // exclusion violation across mode switches into the
                        // futex-backed mutex mode.
                        unsafe { *shared.0.get() += 1 };
                        gls_runtime::spin_cycles(100);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(unsafe { *shared.0.get() }, 60_000);
        assert!(
            lock.transitions()
                .iter()
                .any(|t| t.to == GlkMode::Mutex || t.from == GlkMode::Mutex),
            "multiprogrammed contended lock should have visited mutex mode \
             (smoothed queue {:.2}, transitions {:?})",
            lock.smoothed_queue(),
            lock.transitions()
        );
    }

    #[test]
    fn queue_length_reports_holder() {
        let lock = GlkLock::new();
        assert_eq!(lock.queue_length(), 0);
        lock.lock();
        assert_eq!(lock.queue_length(), 1);
        assert!(lock.is_locked());
        lock.unlock();
        assert_eq!(lock.queue_length(), 0);
    }
}
