//! The GLK lock: structure, acquisition protocol and adaptation policy.

use gls_sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};
use gls_sync::sync::Mutex as StdMutex;

use gls_locks::{FutexLock, McsLock, MutexLock, QueueInformed, RawLock, RawTryLock, TicketLock};
use gls_runtime::LockStats;

use super::config::{
    BlockingBackend, BlockingDensity, GlkConfig, MonitorHandle, PopulationMembership,
};
use super::mode::{GlkMode, ModeTransition};

/// Backend discriminants for [`AutoBlockingMutex`] (and the rw variant).
pub(crate) const AUTO_UNDECIDED: u8 = 0;
pub(crate) const AUTO_PER_LOCK: u8 = 1;
pub(crate) const AUTO_PARKING: u8 = 2;

// Raw std atomics: process-wide migration counters are pure telemetry,
// updated on the (rare) migration path, and stay invisible to the model
// explorer's scheduling points.
static MIGRATIONS_TO_PARKING: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static MIGRATIONS_TO_PER_LOCK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Cumulative Auto backend migrations (process-wide, since start): how many
/// times density pressure moved a blocking lock onto the shared parking lot
/// and how many times relief moved one back to its embedded per-lock mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AutoMigrationStats {
    /// Migrations onto the word-sized parking-lot backend.
    pub to_parking: u64,
    /// Migrations back to the embedded per-lock backend.
    pub to_per_lock: u64,
}

impl AutoMigrationStats {
    /// Total migrations in either direction.
    pub fn total(&self) -> u64 {
        self.to_parking + self.to_per_lock
    }
}

/// The current process-wide Auto backend-migration counters.
pub fn auto_migration_stats() -> AutoMigrationStats {
    AutoMigrationStats {
        to_parking: MIGRATIONS_TO_PARKING.load(std::sync::atomic::Ordering::Relaxed),
        to_per_lock: MIGRATIONS_TO_PER_LOCK.load(std::sync::atomic::Ordering::Relaxed),
    }
}

/// The density decision: enter the parking lot at the threshold, leave it
/// below half the threshold (hysteresis damps migration churn).
pub(crate) fn decide_backend(density: &BlockingDensity, threshold: usize, current: u8) -> u8 {
    let live = density.live();
    if current == AUTO_PARKING {
        if live * 2 < threshold {
            AUTO_PER_LOCK
        } else {
            AUTO_PARKING
        }
    } else if live >= threshold {
        AUTO_PARKING
    } else {
        AUTO_PER_LOCK
    }
}

/// The backend-selection core shared by [`AutoBlockingMutex`] and the rw
/// variant: the backend discriminant, the lazily-boxed per-lock backend
/// and the migrate-on-release decision — all the raw-pointer publication
/// machinery, kept in one place so the mutex and rw flavors cannot drift.
#[derive(Debug, Default)]
pub(crate) struct AutoCore<T: Default> {
    /// AUTO_UNDECIDED until the first blocking acquisition, then the
    /// backend currently serving the lock. Flipped only by the holder
    /// (except the initial UNDECIDED CAS).
    backend: AtomicU8,
    /// The per-lock backend, allocated on first per-lock blocking use.
    per_lock: AtomicPtr<T>,
}

impl<T: Default> Drop for AutoCore<T> {
    fn drop(&mut self) {
        let ptr = self.per_lock.load(Ordering::Acquire);
        if !ptr.is_null() {
            // SAFETY: published exactly once by `per_lock_backend`, freed
            // exactly once here.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

impl<T: Default> AutoCore<T> {
    /// The backend currently serving the lock.
    pub(crate) fn backend(&self) -> u8 {
        self.backend.load(Ordering::Acquire)
    }

    /// The embedded per-lock backend, allocated on first use.
    pub(crate) fn per_lock_backend(&self) -> &T {
        let ptr = self.per_lock.load(Ordering::Acquire);
        if !ptr.is_null() {
            // SAFETY: the pointer is only freed in Drop.
            return unsafe { &*ptr };
        }
        let fresh = Box::into_raw(Box::<T>::default());
        match self.per_lock.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // SAFETY: just published / published by the racing winner.
            Ok(_) => unsafe { &*fresh },
            Err(existing) => {
                // SAFETY: `fresh` was never published.
                unsafe { drop(Box::from_raw(fresh)) };
                // SAFETY: the winner's pointer is only freed in Drop.
                unsafe { &*existing }
            }
        }
    }

    /// Whether the per-lock backend has been allocated.
    pub(crate) fn per_lock_allocated(&self) -> Option<&T> {
        let ptr = self.per_lock.load(Ordering::Acquire);
        // SAFETY: only freed in Drop.
        (!ptr.is_null()).then(|| unsafe { &*ptr })
    }

    /// The backend serving new acquisitions, deciding it on first use.
    pub(crate) fn backend_or_decide(&self, density: &BlockingDensity, threshold: usize) -> u8 {
        let backend = self.backend.load(Ordering::Acquire);
        if backend != AUTO_UNDECIDED {
            return backend;
        }
        let choice = decide_backend(density, threshold, AUTO_UNDECIDED);
        match self.backend.compare_exchange(
            AUTO_UNDECIDED,
            choice,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => choice,
            Err(actual) => actual,
        }
    }

    /// Applies the density decision on behalf of the (momentarily
    /// exclusive) releasing holder, flipping the backend *before* the
    /// caller releases the backend it holds. Returns the backend the
    /// caller holds — and must release — plus whether it was migrated
    /// away from.
    pub(crate) fn migrate_on_release(
        &self,
        density: &BlockingDensity,
        threshold: usize,
    ) -> (u8, bool) {
        let current = self.backend.load(Ordering::Acquire);
        debug_assert_ne!(current, AUTO_UNDECIDED, "release without a decided backend");
        let target = decide_backend(density, threshold, current);
        let migrated = target != current;
        if migrated {
            self.backend.store(target, Ordering::Release);
            let to_parking = target == AUTO_PARKING;
            if to_parking {
                MIGRATIONS_TO_PARKING.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            } else {
                MIGRATIONS_TO_PER_LOCK.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            gls_runtime::flight::record(
                gls_runtime::flight::FlightEventKind::BackendMigration,
                self as *const _ as usize,
                u64::from(to_parking),
            );
        }
        (current, migrated)
    }
}

/// A blocking mutex that **migrates** between an embedded per-lock
/// `Mutex + Condvar` (fast when few locks block) and the word-sized
/// [`FutexLock`] parked on the shared lot (4 bytes of wait state per lock,
/// the only viable layout when thousands of locks block), driven by the
/// live blocking-lock count in a [`BlockingDensity`].
///
/// The embedded mutex is allocated lazily, only if the lock ever blocks in
/// per-lock mode — a lock born past the density threshold never pays more
/// than the futex word. Migration follows the GLK mode-transition protocol:
/// only the (momentarily exclusive) holder flips the backend, it flips
/// *before* releasing the backend it holds, and waiters still parked on the
/// old backend drain themselves — each wakes, acquires the old backend,
/// re-checks the backend choice, releases (waking the next) and retries on
/// the new backend. A release that migrates away from the parking backend
/// additionally **broadcasts** to the futex queue
/// ([`FutexLock::unlock_and_wake_all`]): condvar waiters requeued onto the
/// word do not re-release it, so the one-wakeup drain chain could strand
/// waiters queued behind them. No wakeup is lost and the old queue is
/// never abandoned while threads sleep in it.
#[derive(Debug, Default)]
pub struct AutoBlockingMutex {
    core: AutoCore<MutexLock>,
    /// The parking-lot backend: always present, one `AtomicU32`.
    futex: FutexLock,
}

impl AutoBlockingMutex {
    /// Creates an auto-backend blocking mutex (undecided until first use).
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn lock_backend(&self, backend: u8) {
        if backend == AUTO_PARKING {
            self.futex.lock();
        } else {
            self.core.per_lock_backend().lock();
        }
    }

    #[inline]
    fn try_lock_backend(&self, backend: u8) -> bool {
        if backend == AUTO_PARKING {
            self.futex.try_lock()
        } else {
            self.core.per_lock_backend().try_lock()
        }
    }

    #[inline]
    fn unlock_backend(&self, backend: u8) {
        if backend == AUTO_PARKING {
            self.futex.unlock();
        } else {
            self.core.per_lock_backend().unlock();
        }
    }

    /// Acquires the lock through whichever backend currently serves it,
    /// re-checking the choice after acquiring (the GLK Figure-4 protocol):
    /// a stale acquisition on a migrated-away backend releases it — waking
    /// the next drainer — and retries.
    pub fn lock(&self, density: &BlockingDensity, threshold: usize) {
        loop {
            let backend = self.core.backend_or_decide(density, threshold);
            self.lock_backend(backend);
            if self.core.backend() == backend {
                return;
            }
            self.unlock_backend(backend);
        }
    }

    /// Attempts to acquire the lock without waiting.
    pub fn try_lock(&self, density: &BlockingDensity, threshold: usize) -> bool {
        loop {
            let backend = self.core.backend_or_decide(density, threshold);
            if !self.try_lock_backend(backend) {
                return false;
            }
            if self.core.backend() == backend {
                return true;
            }
            self.unlock_backend(backend);
        }
    }

    /// Releases the lock, migrating the backend first when the density
    /// heuristic says so. Only the holder runs this, so reading and
    /// flipping the backend here is race-free; the flip lands *before* the
    /// release, so every later acquirer sees it. A release that migrates
    /// away from the parking backend broadcasts to the futex queue: it may
    /// hold requeued condvar waiters, which do not re-release the word, so
    /// the one-wakeup drain chain could otherwise strand waiters queued
    /// behind them.
    pub fn unlock(&self, density: &BlockingDensity, threshold: usize) {
        self.unlock_cohort(density, threshold, true);
    }

    /// [`unlock`](Self::unlock) with explicit control over topology-aware
    /// handoff on the parking backend
    /// ([`GlkConfig::cohort_handoff`](super::GlkConfig::cohort_handoff)).
    pub fn unlock_cohort(&self, density: &BlockingDensity, threshold: usize, cohort: bool) {
        let (current, migrated) = self.core.migrate_on_release(density, threshold);
        if current != AUTO_PARKING {
            self.core.per_lock_backend().unlock();
        } else if migrated {
            self.futex.unlock_and_wake_all();
        } else {
            self.futex.unlock_cohort(cohort);
        }
    }

    /// Releases a lock whose futex word is about to stop being the serving
    /// lock for reasons *beyond* backend migration — GLK leaving mutex
    /// mode. The parking backend broadcasts unconditionally (requeued
    /// condvar waiters may sit in the queue and there may never be another
    /// futex release to drain the rest); the per-lock backend drains
    /// normally (condvar waiters are never requeued onto it).
    pub(crate) fn unlock_stale(&self, density: &BlockingDensity, threshold: usize) {
        let (current, _) = self.core.migrate_on_release(density, threshold);
        if current == AUTO_PARKING {
            self.futex.unlock_and_wake_all();
        } else {
            self.core.per_lock_backend().unlock();
        }
    }

    /// Whether the lock is held on either backend (racy; diagnostics).
    pub fn is_locked(&self) -> bool {
        self.futex.is_locked()
            || self
                .core
                .per_lock_allocated()
                .is_some_and(MutexLock::is_locked)
    }

    /// Holder plus waiters over both backends (waiters may still be
    /// draining from a migrated-away backend).
    pub fn queue_length(&self) -> u64 {
        self.futex.queue_length()
            + self
                .core
                .per_lock_allocated()
                .map_or(0, MutexLock::queue_length)
    }

    /// The backend currently serving the lock, for diagnostics and the
    /// footprint accounting of the parking benchmark: `None` until the
    /// first blocking acquisition, then `Some(true)` when the shared
    /// parking lot serves it, `Some(false)` for the embedded mutex.
    pub fn uses_parking_lot(&self) -> Option<bool> {
        match self.core.backend() {
            AUTO_UNDECIDED => None,
            b => Some(b == AUTO_PARKING),
        }
    }

    /// Bytes of heap-allocated blocking state (the lazily-created embedded
    /// mutex): 0 for locks that only ever blocked through the shared lot.
    pub fn blocking_heap_bytes(&self) -> usize {
        if self.core.per_lock_allocated().is_some() {
            std::mem::size_of::<MutexLock>()
        } else {
            0
        }
    }

    /// The parking-lot address a requeued waiter would sleep under, when
    /// the parking backend currently serves the lock.
    pub(crate) fn park_addr(&self) -> Option<usize> {
        (self.core.backend() == AUTO_PARKING).then(|| self.futex.park_addr())
    }
}

/// The low-level lock behind [`GlkMode::Mutex`], chosen by
/// [`GlkConfig::blocking_backend`]: per-lock parking state, a word-sized
/// futex lock sleeping in the shared parking lot, or the density-driven
/// [`AutoBlockingMutex`] that migrates between the two.
#[derive(Debug)]
pub(crate) enum BlockingMutex {
    /// `Mutex + Condvar` pair embedded in the lock.
    PerLock(MutexLock),
    /// One `AtomicU32`; waiters park in [`gls_locks::ParkingLot::global`].
    Parking(FutexLock),
    /// Migrates between the two based on blocking-lock density.
    Auto(AutoBlockingMutex),
}

impl BlockingMutex {
    pub(crate) fn new(backend: BlockingBackend) -> Self {
        match backend {
            BlockingBackend::PerLock => BlockingMutex::PerLock(MutexLock::new()),
            BlockingBackend::ParkingLot => BlockingMutex::Parking(FutexLock::new()),
            BlockingBackend::Auto => BlockingMutex::Auto(AutoBlockingMutex::new()),
        }
    }

    #[inline]
    pub(crate) fn lock(&self, config: &GlkConfig) {
        match self {
            BlockingMutex::PerLock(l) => l.lock(),
            BlockingMutex::Parking(l) => l.lock(),
            BlockingMutex::Auto(l) => {
                l.lock(config.density.density(), config.blocking_density_threshold)
            }
        }
    }

    #[inline]
    pub(crate) fn try_lock(&self, config: &GlkConfig) -> bool {
        match self {
            BlockingMutex::PerLock(l) => l.try_lock(),
            BlockingMutex::Parking(l) => l.try_lock(),
            BlockingMutex::Auto(l) => {
                l.try_lock(config.density.density(), config.blocking_density_threshold)
            }
        }
    }

    #[inline]
    pub(crate) fn unlock(&self, config: &GlkConfig) {
        match self {
            BlockingMutex::PerLock(l) => l.unlock(),
            BlockingMutex::Parking(l) => l.unlock_cohort(config.cohort_handoff),
            BlockingMutex::Auto(l) => l.unlock_cohort(
                config.density.density(),
                config.blocking_density_threshold,
                config.cohort_handoff,
            ),
        }
    }

    /// Releases a mutex-mode hold after GLK moved away from mutex mode:
    /// futex-backed queues are broadcast-drained (they may hold requeued
    /// condvar waiters that would break the one-wakeup drain chain, and
    /// there may never be another release of this word), per-lock queues
    /// drain normally.
    pub(crate) fn unlock_stale(&self, config: &GlkConfig) {
        match self {
            BlockingMutex::PerLock(l) => l.unlock(),
            BlockingMutex::Parking(l) => l.unlock_and_wake_all(),
            BlockingMutex::Auto(l) => {
                l.unlock_stale(config.density.density(), config.blocking_density_threshold)
            }
        }
    }

    pub(crate) fn is_locked(&self) -> bool {
        match self {
            BlockingMutex::PerLock(l) => l.is_locked(),
            BlockingMutex::Parking(l) => l.is_locked(),
            BlockingMutex::Auto(l) => l.is_locked(),
        }
    }

    pub(crate) fn queue_length(&self) -> u64 {
        match self {
            BlockingMutex::PerLock(l) => l.queue_length(),
            BlockingMutex::Parking(l) => l.queue_length(),
            BlockingMutex::Auto(l) => l.queue_length(),
        }
    }

    /// The address a condvar waiter can be requeued onto, when the lock's
    /// blocking path currently runs through the shared parking lot.
    pub(crate) fn park_addr(&self) -> Option<usize> {
        match self {
            BlockingMutex::PerLock(_) => None,
            BlockingMutex::Parking(l) => Some(l.park_addr()),
            BlockingMutex::Auto(l) => l.park_addr(),
        }
    }
}

/// The generic lock (GLK): a lock that adapts between ticket, MCS and mutex
/// modes based on observed contention and system load.
///
/// The structure mirrors the paper's Figure 3 — a `lock_type` flag, the three
/// low-level lock objects and the statistics counters — and the acquisition
/// protocol mirrors Figure 4: read the mode, acquire that low-level lock,
/// re-check the mode (restarting if it changed), and give the now-holder a
/// chance to adapt.
///
/// # Example
///
/// ```
/// use gls::glk::{GlkLock, GlkMode};
///
/// let lock = GlkLock::new();
/// lock.lock();
/// assert_eq!(lock.mode(), GlkMode::Ticket); // fresh locks start uncontended
/// lock.unlock();
/// ```
#[derive(Debug)]
pub struct GlkLock {
    /// Current mode (the paper's `lock_type`).
    mode: AtomicU8,
    /// Low-level lock used in [`GlkMode::Ticket`].
    ticket: TicketLock,
    /// Low-level lock used in [`GlkMode::Mcs`].
    mcs: McsLock,
    /// Low-level lock used in [`GlkMode::Mutex`] (backend per
    /// [`GlkConfig::blocking_backend`]).
    mutex: BlockingMutex,
    /// `num_acquired` / `queue_total` and friends.
    stats: LockStats,
    /// Exponential moving average of per-window queue lengths (f64 bits).
    ema_bits: AtomicU64,
    /// Consecutive calm monitor observations required to leave mutex mode;
    /// doubles after every departure (§3, "Selecting the GLK Mode").
    required_calm: AtomicU64,
    /// This lock's membership in the blocking-density population (exact
    /// across racing adaptation, free/resurrect and drop).
    population: PopulationMembership,
    config: GlkConfig,
    monitor: MonitorHandle,
    /// Recorded transitions (only populated when
    /// [`GlkConfig::record_transitions`] is set).
    transitions: StdMutex<Vec<ModeTransition>>,
}

impl Default for GlkLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for GlkLock {
    fn drop(&mut self) {
        // A lock dying in mutex mode leaves the blocking population.
        self.leave_population();
    }
}

impl GlkLock {
    /// Creates a GLK lock with the paper-default configuration and the
    /// process-wide system-load monitor.
    pub fn new() -> Self {
        Self::with_config(GlkConfig::default())
    }

    /// Creates a GLK lock with a custom configuration.
    pub fn with_config(config: GlkConfig) -> Self {
        Self::with_config_and_monitor(config, MonitorHandle::Global)
    }

    /// Creates a GLK lock with a custom configuration and system-load
    /// monitor (used by tests and by the benchmark harness, which need
    /// deterministic multiprogramming signals).
    pub fn with_config_and_monitor(config: GlkConfig, monitor: MonitorHandle) -> Self {
        let starts_blocking = config.initial_mode == GlkMode::Mutex;
        if starts_blocking {
            config.density.density().enter();
        }
        Self {
            mode: AtomicU8::new(config.initial_mode.as_raw()),
            ticket: TicketLock::new(),
            mcs: McsLock::new(),
            mutex: BlockingMutex::new(config.blocking_backend),
            stats: LockStats::new(),
            ema_bits: AtomicU64::new(0f64.to_bits()),
            required_calm: AtomicU64::new(config.initial_calm_rounds),
            population: PopulationMembership::new(starts_blocking),
            config,
            monitor,
            transitions: StdMutex::new(Vec::new()),
        }
    }

    /// Joins the blocking-density population (at most once until the
    /// matching leave).
    fn enter_population(&self) {
        self.population.enter(self.config.density.density());
    }

    /// Leaves the blocking-density population (at most once per enter).
    fn leave_population(&self) {
        self.population.leave(self.config.density.density());
    }

    /// Called when this lock's GLS entry is freed: a retired lock no
    /// longer belongs to the live blocking population the Auto backend
    /// heuristic reads (the allocation stays parked for resurrection, but
    /// it serves no traffic).
    pub(crate) fn note_retired(&self) {
        self.leave_population();
    }

    /// Called when this lock's GLS entry is resurrected: if it retired in
    /// mutex mode it rejoins the blocking population.
    pub(crate) fn note_resurrected(&self) {
        if self.mode() == GlkMode::Mutex {
            self.enter_population();
        }
    }

    /// The mode the lock currently operates in.
    pub fn mode(&self) -> GlkMode {
        GlkMode::from_raw(self.mode.load(Ordering::Acquire))
    }

    /// The configuration this lock runs with.
    pub fn config(&self) -> &GlkConfig {
        &self.config
    }

    /// Acquisition and queuing statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Number of completed acquisitions (the paper's `num_acquired`).
    pub fn acquisitions(&self) -> u64 {
        self.stats.acquisitions()
    }

    /// Smoothed queue length currently driving adaptation decisions.
    pub fn smoothed_queue(&self) -> f64 {
        f64::from_bits(self.ema_bits.load(Ordering::Relaxed))
    }

    /// Mode transitions recorded so far (empty unless
    /// [`GlkConfig::record_transitions`] is enabled).
    pub fn transitions(&self) -> Vec<ModeTransition> {
        self.transitions
            .lock()
            .map(|t| t.clone())
            .unwrap_or_default()
    }

    /// Number of threads currently holding or waiting for the lock, summed
    /// over all three low-level locks: during a mode transition waiters are
    /// still parked on the previous mode's lock, and they remain queuing
    /// behind *this* GLK lock until they migrate.
    pub fn queue_length(&self) -> u64 {
        self.ticket.queue_length() + self.mcs.queue_length() + self.mutex.queue_length()
    }

    #[inline]
    fn lock_mode(&self, mode: GlkMode) {
        match mode {
            GlkMode::Ticket => self.ticket.lock(),
            GlkMode::Mcs => self.mcs.lock(),
            GlkMode::Mutex => self.mutex.lock(&self.config),
        }
    }

    #[inline]
    fn try_lock_mode(&self, mode: GlkMode) -> bool {
        match mode {
            GlkMode::Ticket => self.ticket.try_lock(),
            GlkMode::Mcs => self.mcs.try_lock(),
            GlkMode::Mutex => self.mutex.try_lock(&self.config),
        }
    }

    #[inline]
    fn unlock_mode(&self, mode: GlkMode) {
        match mode {
            GlkMode::Ticket => self.ticket.unlock(),
            GlkMode::Mcs => self.mcs.unlock(),
            GlkMode::Mutex => self.mutex.unlock(&self.config),
        }
    }

    /// The parking-lot address this lock's blocking waiters sleep under,
    /// when the lock currently blocks through the shared lot (used by
    /// condvar requeue-on-notify; `None` in spin modes or with per-lock
    /// blocking state). The answer is inherently racy — the mode can
    /// change right after — which is safe because the requeue machinery
    /// only commits when the target word is observably held (see
    /// [`gls_locks::futex_mutex::prepare_direct_requeue`]).
    pub(crate) fn blocking_park_addr(&self) -> Option<usize> {
        if self.mode() != GlkMode::Mutex {
            return None;
        }
        self.mutex.park_addr()
    }

    /// Releases the low-level lock of a mode this thread acquired but will
    /// not keep (the mode changed under it, or its own adaptation flipped
    /// it). When the stale mode is mutex with a futex-backed queue, the
    /// release broadcasts: the queue may hold condvar waiters requeued
    /// onto the futex word, which re-acquire through the *current* mode
    /// and never re-release the word — the ordinary one-wakeup drain chain
    /// would strand everyone parked behind them, and with the lock leaving
    /// mutex mode there may never be another release of that word.
    #[inline]
    fn release_stale_mode(&self, stale: GlkMode) {
        match stale {
            GlkMode::Mutex => self.mutex.unlock_stale(&self.config),
            other => self.unlock_mode(other),
        }
    }

    /// Acquires the lock (paper Figure 4).
    pub fn lock(&self) {
        loop {
            let current = self.mode();
            self.lock_mode(current);
            // Line 15 of Figure 4: if the mode is unchanged and no adaptation
            // was performed, we hold the lock; otherwise release the
            // low-level lock (possibly of the old mode) and retry.
            if self.mode() == current && !self.try_adapt(current) {
                return;
            }
            self.release_stale_mode(current);
        }
    }

    /// Attempts to acquire the lock without waiting.
    pub fn try_lock(&self) -> bool {
        loop {
            let current = self.mode();
            if !self.try_lock_mode(current) {
                return false;
            }
            if self.mode() == current && !self.try_adapt(current) {
                return true;
            }
            self.release_stale_mode(current);
        }
    }

    /// Releases the lock.
    ///
    /// Only the holder may change the mode, and it does so *before* releasing
    /// the low-level lock it acquired, so reading the mode here always names
    /// the lock we actually hold.
    pub fn unlock(&self) {
        self.unlock_mode(self.mode());
    }

    /// Whether the lock is currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        match self.mode() {
            GlkMode::Ticket => self.ticket.is_locked(),
            GlkMode::Mcs => self.mcs.is_locked(),
            GlkMode::Mutex => self.mutex.is_locked(),
        }
    }

    /// Statistics collection and adaptation, performed by the thread that
    /// just acquired low-level lock `current`. Returns `true` if the mode was
    /// changed (in which case the caller must release and retry).
    fn try_adapt(&self, current: GlkMode) -> bool {
        if self.config.adaptation_disabled() {
            self.stats.record_acquisition();
            return false;
        }
        let acquisitions = self.stats.record_acquisition();

        // Periodic queue sampling (paper: every 128 critical sections).
        // The sample sums all three low-level queues, not just the current
        // mode's: right after a mode switch the waiters of the previous mode
        // drain out of its queue one by one, and counting only the new lock
        // would undercount contention during that migration — the EMA would
        // collapse and bounce the mode straight back (most visible when
        // context switches are slow relative to the adaptation period).
        if acquisitions.is_multiple_of(self.config.sampling_period) {
            self.stats.record_queue_sample(self.queue_length());
        }

        // Periodic adaptation (paper: every 4096 critical sections).
        if !acquisitions.is_multiple_of(self.config.adaptation_period) {
            return false;
        }

        // Fold this window's average queuing into the EMA and reset the
        // window. Only the holder executes this, so plain read-modify-write
        // on the atomic bits is race-free.
        let window_avg = self.stats.average_queue();
        let previous = self.smoothed_queue();
        let smoothed = if self.stats.queue_samples() == 0 {
            previous
        } else {
            let alpha = self.config.ema_alpha;
            if self.stats.acquisitions() <= self.config.adaptation_period {
                window_avg
            } else {
                alpha * window_avg + (1.0 - alpha) * previous
            }
        };
        self.ema_bits.store(smoothed.to_bits(), Ordering::Relaxed);
        self.stats.reset_queue_window();

        let monitor = self.monitor.monitor();
        let target = self.decide_mode(current, smoothed, monitor);
        if target == current {
            return false;
        }

        if self.config.record_transitions {
            let transition = ModeTransition {
                from: current,
                to: target,
                smoothed_queue: smoothed,
                multiprogrammed: monitor.is_multiprogrammed(),
                at_acquisition: acquisitions,
            };
            if let Ok(mut log) = self.transitions.lock() {
                log.push(transition);
            }
        }
        self.stats.record_transition();
        gls_runtime::flight::record(
            gls_runtime::flight::FlightEventKind::ModeTransition,
            self as *const _ as usize,
            (u64::from(current.as_raw()) << 8) | u64::from(target.as_raw()),
        );
        self.mode.store(target.as_raw(), Ordering::Release);
        // Maintain the blocking-lock density the Auto backend heuristic
        // reads — *after* publishing the mode, so a racing
        // `note_resurrected` (which re-reads the mode) cannot re-count a
        // lock that is just leaving mutex mode; the CAS-guarded pairing
        // keeps a racing free/resurrect from unbalancing the count.
        if target == GlkMode::Mutex {
            self.enter_population();
        } else if current == GlkMode::Mutex {
            self.leave_population();
        }
        true
    }

    /// The adaptation policy (§3, "Selecting the GLK Mode").
    fn decide_mode(
        &self,
        current: GlkMode,
        smoothed: f64,
        monitor: &gls_runtime::SystemLoadMonitor,
    ) -> GlkMode {
        let multiprogrammed = monitor.is_multiprogrammed();

        // Multiprogramming forces mutex mode — but only for locks that see
        // real contention; lightly contended locks should finish their
        // critical sections as fast as possible and stay ticket.
        if multiprogrammed {
            return if smoothed >= self.config.min_queue_for_mutex {
                GlkMode::Mutex
            } else {
                GlkMode::Ticket
            };
        }

        if current == GlkMode::Mutex {
            // Leaving mutex mode requires an exponentially growing streak of
            // calm observations, to avoid bouncing: blocking reduces the
            // system load, which would immediately re-enable spinning, which
            // would re-trigger multiprogramming, and so on.
            let required = self.required_calm.load(Ordering::Relaxed);
            if monitor.calm_ticks() < required {
                return GlkMode::Mutex;
            }
            let next = (required.saturating_mul(2)).min(self.config.max_calm_rounds);
            self.required_calm.store(next, Ordering::Relaxed);
            return if smoothed > self.config.ticket_to_mcs_queue {
                GlkMode::Mcs
            } else {
                GlkMode::Ticket
            };
        }

        // Spin-mode selection with hysteresis.
        if smoothed > self.config.ticket_to_mcs_queue {
            GlkMode::Mcs
        } else if smoothed < self.config.mcs_to_ticket_queue {
            GlkMode::Ticket
        } else {
            current
        }
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn fast_config() -> GlkConfig {
        GlkConfig::default()
            .with_adaptation_period(256)
            .with_sampling_period(16)
            .with_transition_recording(true)
    }

    fn manual_monitor() -> Arc<SystemLoadMonitor> {
        Arc::new(SystemLoadMonitor::manual(SystemLoadConfig::default()))
    }

    #[test]
    fn starts_in_ticket_mode_and_counts_acquisitions() {
        let lock = GlkLock::new();
        assert_eq!(lock.mode(), GlkMode::Ticket);
        for _ in 0..100 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.acquisitions(), 100);
        assert_eq!(
            lock.mode(),
            GlkMode::Ticket,
            "uncontended lock must stay ticket"
        );
    }

    #[test]
    fn try_lock_respects_holder() {
        let lock = GlkLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion_across_modes() {
        // Force frequent adaptation so the test exercises mode changes while
        // checking that no increment is lost.
        let lock = Arc::new(GlkLock::with_config(
            GlkConfig::default()
                .with_adaptation_period(64)
                .with_sampling_period(8),
        ));
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let guard = std::cell::UnsafeCell::new(0u64);
        struct Shared(std::cell::UnsafeCell<u64>);
        // SAFETY: the cell is only touched while holding the lock under
        // test; that exclusion is exactly what the test verifies.
        unsafe impl Sync for Shared {}
        let shared = Arc::new(Shared(guard));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        lock.lock();
                        // Non-atomic increment: lost updates reveal any
                        // mutual-exclusion violation across mode switches.
                        // SAFETY: written while holding the lock under test.
                        unsafe { *shared.0.get() += 1 };
                        counter.fetch_add(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
        // SAFETY: all worker threads are joined; nothing races this read.
        assert_eq!(unsafe { *shared.0.get() }, 80_000);
    }

    #[test]
    fn adapts_to_mcs_under_contention() {
        let lock = Arc::new(GlkLock::with_config_and_monitor(
            fast_config(),
            MonitorHandle::Custom(manual_monitor()),
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        lock.lock();
                        gls_runtime::spin_cycles(500);
                        lock.unlock();
                    }
                })
            })
            .collect();
        // Wait until the lock has had ample opportunity to adapt.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lock.mode() != GlkMode::Mcs && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            lock.mode(),
            GlkMode::Mcs,
            "8 contending threads should push GLK into mcs mode (smoothed queue {:.2})",
            lock.smoothed_queue()
        );
        assert!(!lock.transitions().is_empty());
    }

    #[test]
    fn returns_to_ticket_when_contention_drops() {
        let monitor = manual_monitor();
        let lock = Arc::new(GlkLock::with_config_and_monitor(
            fast_config().with_initial_mode(GlkMode::Mcs),
            MonitorHandle::Custom(monitor),
        ));
        // Single-threaded use: the queue is always exactly 1, far below the
        // mcs->ticket threshold, so the lock must fall back to ticket mode.
        for _ in 0..2_000 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.mode(), GlkMode::Ticket);
    }

    #[test]
    fn switches_to_mutex_under_multiprogramming() {
        let monitor = manual_monitor();
        // Simulate oversubscription: more runnable threads than hardware
        // contexts, then poll once so the monitor latches the state.
        let hw = gls_runtime::hardware_contexts();
        let guards: Vec<_> = (0..hw * 2 + 1).map(|_| monitor.runnable_guard()).collect();
        monitor.poll_once();
        assert!(monitor.is_multiprogrammed());

        let lock = Arc::new(GlkLock::with_config_and_monitor(
            fast_config(),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        ));
        // Create real contention so the smoothed queue exceeds the
        // min-queue-for-mutex threshold.
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        lock.lock();
                        gls_runtime::spin_cycles(300);
                        lock.unlock();
                    }
                })
            })
            .collect();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while lock.mode() != GlkMode::Mutex && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.mode(), GlkMode::Mutex);
        drop(guards);
    }

    #[test]
    fn lightly_contended_locks_never_switch_to_mutex() {
        let monitor = manual_monitor();
        let hw = gls_runtime::hardware_contexts();
        let _guards: Vec<_> = (0..hw * 2 + 1).map(|_| monitor.runnable_guard()).collect();
        monitor.poll_once();
        assert!(monitor.is_multiprogrammed());

        let lock = GlkLock::with_config_and_monitor(
            fast_config(),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        );
        // Single-threaded (queue length 1 < min_queue_for_mutex): stays ticket
        // even though the system is multiprogrammed.
        for _ in 0..2_000 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.mode(), GlkMode::Ticket);
    }

    #[test]
    fn leaving_mutex_requires_calm_and_doubles_requirement() {
        let monitor = manual_monitor();
        let lock = GlkLock::with_config_and_monitor(
            fast_config().with_initial_mode(GlkMode::Mutex),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        );
        let initial_required = lock.required_calm.load(Ordering::Relaxed);
        // No calm ticks yet: the lock must stay in mutex mode.
        for _ in 0..1_000 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.mode(), GlkMode::Mutex);
        // Record plenty of calm observations, then the lock may leave.
        for _ in 0..64 {
            monitor.poll_once();
        }
        for _ in 0..1_000 {
            lock.lock();
            lock.unlock();
        }
        assert_eq!(lock.mode(), GlkMode::Ticket);
        assert!(lock.required_calm.load(Ordering::Relaxed) > initial_required);
    }

    #[test]
    fn adaptation_disabled_freezes_mode() {
        let lock = Arc::new(GlkLock::with_config(
            GlkConfig::default()
                .with_initial_mode(GlkMode::Mcs)
                .without_adaptation(),
        ));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        lock.lock();
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.mode(), GlkMode::Mcs);
        assert!(lock.transitions().is_empty());
    }

    #[test]
    fn parking_backend_switches_to_mutex_and_excludes() {
        use super::super::config::BlockingBackend;
        let monitor = manual_monitor();
        let hw = gls_runtime::hardware_contexts();
        let _guards: Vec<_> = (0..hw * 2 + 1).map(|_| monitor.runnable_guard()).collect();
        monitor.poll_once();
        assert!(monitor.is_multiprogrammed());

        let lock = Arc::new(GlkLock::with_config_and_monitor(
            fast_config().with_blocking_backend(BlockingBackend::ParkingLot),
            MonitorHandle::Custom(Arc::clone(&monitor)),
        ));
        assert!(matches!(lock.mutex, BlockingMutex::Parking(_)));
        struct Shared(std::cell::UnsafeCell<u64>);
        // SAFETY: the cell is only touched while holding the lock under
        // test; that exclusion is exactly what the test verifies.
        unsafe impl Sync for Shared {}
        let shared = Arc::new(Shared(std::cell::UnsafeCell::new(0)));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        lock.lock();
                        // Non-atomic increment: lost updates reveal any
                        // exclusion violation across mode switches into the
                        // futex-backed mutex mode.
                        // SAFETY: written while holding the lock under test.
                        unsafe { *shared.0.get() += 1 };
                        gls_runtime::spin_cycles(100);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all worker threads are joined; nothing races this read.
        assert_eq!(unsafe { *shared.0.get() }, 60_000);
        assert!(
            lock.transitions()
                .iter()
                .any(|t| t.to == GlkMode::Mutex || t.from == GlkMode::Mutex),
            "multiprogrammed contended lock should have visited mutex mode \
             (smoothed queue {:.2}, transitions {:?})",
            lock.smoothed_queue(),
            lock.transitions()
        );
    }

    #[test]
    fn auto_backend_decides_by_density_and_migrates_on_release() {
        use super::super::config::BlockingDensity;
        let density = BlockingDensity::new();
        let threshold = 4usize;
        let lock = AutoBlockingMutex::new();
        assert_eq!(lock.uses_parking_lot(), None, "undecided until first use");
        // Low density: the first use decides the embedded per-lock mutex.
        lock.lock(&density, threshold);
        assert_eq!(lock.uses_parking_lot(), Some(false));
        assert!(lock.is_locked());
        assert!(!lock.try_lock(&density, threshold));
        assert!(lock.blocking_heap_bytes() > 0, "per-lock box allocated");
        // Past the threshold, the holder migrates on release...
        for _ in 0..threshold {
            density.enter();
        }
        lock.unlock(&density, threshold);
        assert_eq!(lock.uses_parking_lot(), Some(true));
        assert!(!lock.is_locked());
        // ...and below half the threshold it migrates back.
        lock.lock(&density, threshold);
        for _ in 0..threshold {
            density.leave();
        }
        lock.unlock(&density, threshold);
        assert_eq!(lock.uses_parking_lot(), Some(false));
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn auto_backend_born_past_threshold_never_allocates_per_lock_state() {
        use super::super::config::BlockingDensity;
        let density = BlockingDensity::new();
        for _ in 0..8 {
            density.enter();
        }
        let lock = AutoBlockingMutex::new();
        lock.lock(&density, 4);
        lock.unlock(&density, 4);
        assert_eq!(lock.uses_parking_lot(), Some(true));
        assert_eq!(
            lock.blocking_heap_bytes(),
            0,
            "a lock born past the density threshold pays only the futex word"
        );
    }

    #[test]
    fn auto_backend_excludes_across_forced_migrations() {
        use super::super::config::BlockingDensity;
        use std::sync::Arc;
        struct Shared(std::cell::UnsafeCell<u64>);
        // SAFETY: the cell is only touched while holding the lock under
        // test; that exclusion is exactly what the test verifies.
        unsafe impl Sync for Shared {}
        let density = Arc::new(BlockingDensity::new());
        let lock = Arc::new(AutoBlockingMutex::new());
        let shared = Arc::new(Shared(std::cell::UnsafeCell::new(0)));
        let stop = Arc::new(AtomicBool::new(false));
        // A churn thread oscillates the density across the threshold so
        // releases keep migrating the backend while workers fight for the
        // lock.
        let churn = {
            let density = Arc::clone(&density);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..8 {
                        density.enter();
                    }
                    std::thread::yield_now();
                    for _ in 0..8 {
                        density.leave();
                    }
                }
            })
        };
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let density = Arc::clone(&density);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        lock.lock(&density, 4);
                        // Non-atomic increment: lost updates reveal an
                        // exclusion violation across a backend migration.
                        // SAFETY: written while holding the lock under test.
                        unsafe { *shared.0.get() += 1 };
                        lock.unlock(&density, 4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        churn.join().unwrap();
        // SAFETY: all worker threads are joined; nothing races this read.
        assert_eq!(unsafe { *shared.0.get() }, 60_000);
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn glk_mode_transitions_maintain_blocking_density() {
        use super::super::config::{BlockingDensity, DensityHandle};
        use std::sync::Arc;
        let density = Arc::new(BlockingDensity::new());
        let monitor = manual_monitor();
        {
            let lock = GlkLock::with_config_and_monitor(
                fast_config()
                    .with_initial_mode(GlkMode::Mutex)
                    .with_density(DensityHandle::Custom(Arc::clone(&density))),
                MonitorHandle::Custom(Arc::clone(&monitor)),
            );
            assert_eq!(density.live(), 1, "initial mutex mode counts");
            // Calm single-threaded use leaves mutex mode -> count drops.
            for _ in 0..64 {
                monitor.poll_once();
            }
            for _ in 0..1_000 {
                lock.lock();
                lock.unlock();
            }
            assert_eq!(lock.mode(), GlkMode::Ticket);
            assert_eq!(density.live(), 0, "leaving mutex mode decrements");
        }
        assert_eq!(density.live(), 0, "drop of a ticket-mode lock is neutral");
        {
            let _lock = GlkLock::with_config_and_monitor(
                fast_config()
                    .with_initial_mode(GlkMode::Mutex)
                    .with_density(DensityHandle::Custom(Arc::clone(&density))),
                MonitorHandle::Custom(monitor),
            );
            assert_eq!(density.live(), 1);
        }
        assert_eq!(density.live(), 0, "dropping a mutex-mode lock decrements");
    }

    #[test]
    fn queue_length_reports_holder() {
        let lock = GlkLock::new();
        assert_eq!(lock.queue_length(), 0);
        lock.lock();
        assert_eq!(lock.queue_length(), 1);
        assert!(lock.is_locked());
        lock.unlock();
        assert_eq!(lock.queue_length(), 0);
    }
}
