//! Error and issue types reported by the GLS service.

use std::fmt;

use gls_locks::LockKind;
use gls_runtime::ThreadId;

/// A lock-related correctness issue detected by GLS (§4.2 of the paper).
///
/// In normal mode the service never returns these; in debug mode each
/// detected issue is both returned to the caller and appended to the
/// service's issue log ([`crate::GlsService::issues`]).
#[derive(Debug, Clone, PartialEq)]
pub enum GlsError {
    /// An unlock was attempted on an address that was never locked
    /// ("accessing uninitialized locks").
    UninitializedLock {
        /// The address passed to the unlock call.
        addr: usize,
    },
    /// The current owner tried to acquire the same lock again.
    DoubleLock {
        /// The lock's address.
        addr: usize,
        /// The offending thread.
        thread: ThreadId,
    },
    /// An unlock was attempted on a lock that is already free.
    ReleaseFreeLock {
        /// The lock's address.
        addr: usize,
    },
    /// A thread other than the owner attempted to release the lock.
    WrongOwner {
        /// The lock's address.
        addr: usize,
        /// The thread currently holding the lock.
        owner: ThreadId,
        /// The thread that attempted the release.
        caller: ThreadId,
    },
    /// A cycle of waits-for relationships was found at runtime.
    Deadlock {
        /// The cycle, as `(thread, address the thread waits on)` pairs,
        /// starting and ending with the detecting thread.
        cycle: Vec<(ThreadId, usize)>,
    },
    /// An address created through one explicit algorithm interface was later
    /// used through a different one.
    AlgorithmMismatch {
        /// The lock's address.
        addr: usize,
        /// Algorithm the lock was created with.
        created: LockKind,
        /// Algorithm requested by the offending call.
        requested: LockKind,
    },
}

impl GlsError {
    /// The address this issue refers to (the first lock of the cycle for
    /// deadlocks).
    pub fn addr(&self) -> usize {
        match self {
            GlsError::UninitializedLock { addr }
            | GlsError::DoubleLock { addr, .. }
            | GlsError::ReleaseFreeLock { addr }
            | GlsError::WrongOwner { addr, .. }
            | GlsError::AlgorithmMismatch { addr, .. } => *addr,
            GlsError::Deadlock { cycle } => cycle.first().map(|(_, a)| *a).unwrap_or(0),
        }
    }

    /// Short machine-readable category name (used in reports and tests).
    pub fn category(&self) -> &'static str {
        match self {
            GlsError::UninitializedLock { .. } => "uninitialized-lock",
            GlsError::DoubleLock { .. } => "double-lock",
            GlsError::ReleaseFreeLock { .. } => "release-free-lock",
            GlsError::WrongOwner { .. } => "wrong-owner",
            GlsError::Deadlock { .. } => "deadlock",
            GlsError::AlgorithmMismatch { .. } => "algorithm-mismatch",
        }
    }
}

impl fmt::Display for GlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlsError::UninitializedLock { addr } => {
                write!(f, "[GLS]WARNING> LOCK {addr:#x} - Uninitialized lock")
            }
            GlsError::DoubleLock { addr, thread } => {
                write!(
                    f,
                    "[GLS]WARNING> LOCK {addr:#x} - Double locking by {thread}"
                )
            }
            GlsError::ReleaseFreeLock { addr } => {
                write!(f, "[GLS]WARNING> UNLOCK {addr:#x} - Already free")
            }
            GlsError::WrongOwner {
                addr,
                owner,
                caller,
            } => write!(
                f,
                "[GLS]WARNING> UNLOCK {addr:#x} - Owned by {owner}, released by {caller}"
            ),
            GlsError::Deadlock { cycle } => {
                write!(f, "[GLS]WARNING> DEADLOCK ")?;
                if let Some((_, first)) = cycle.first() {
                    write!(f, "{first:#x} ")?;
                }
                write!(f, "- cycle detected")?;
                for (thread, addr) in cycle {
                    write!(f, " -> [{thread} waits for {addr:#x}]")?;
                }
                Ok(())
            }
            GlsError::AlgorithmMismatch {
                addr,
                created,
                requested,
            } => write!(
                f,
                "[GLS]WARNING> LOCK {addr:#x} - Created as {created}, used as {requested}"
            ),
        }
    }
}

impl std::error::Error for GlsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        let e = GlsError::UninitializedLock { addr: 0x6344e0 };
        assert!(e.to_string().contains("Uninitialized lock"));
        assert!(e.to_string().contains("0x6344e0"));

        let e = GlsError::ReleaseFreeLock { addr: 0x62a494 };
        assert!(e.to_string().contains("Already free"));
    }

    #[test]
    fn deadlock_display_lists_cycle() {
        let e = GlsError::Deadlock {
            cycle: vec![
                (ThreadId::from_raw(2), 0x1ad0010),
                (ThreadId::from_raw(9), 0x1acfff4),
                (ThreadId::from_raw(2), 0x1ad0010),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("DEADLOCK"));
        assert!(s.contains("T2 waits for 0x1ad0010"));
        assert!(s.contains("T9 waits for 0x1acfff4"));
    }

    #[test]
    fn categories_are_distinct() {
        let errors = [
            GlsError::UninitializedLock { addr: 1 },
            GlsError::DoubleLock {
                addr: 1,
                thread: ThreadId::from_raw(0),
            },
            GlsError::ReleaseFreeLock { addr: 1 },
            GlsError::WrongOwner {
                addr: 1,
                owner: ThreadId::from_raw(0),
                caller: ThreadId::from_raw(1),
            },
            GlsError::Deadlock { cycle: vec![] },
            GlsError::AlgorithmMismatch {
                addr: 1,
                created: LockKind::Glk,
                requested: LockKind::Mcs,
            },
        ];
        let mut cats: Vec<_> = errors.iter().map(|e| e.category()).collect();
        cats.sort();
        cats.dedup();
        assert_eq!(cats.len(), errors.len());
    }

    #[test]
    fn addr_accessor() {
        assert_eq!(GlsError::ReleaseFreeLock { addr: 7 }.addr(), 7);
        assert_eq!(GlsError::Deadlock { cycle: vec![] }.addr(), 0);
    }
}
