//! The per-address lock object stored in the GLS hash table.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

use gls_locks::{
    ClhLock, FutexLock, FutexRwLock, LockKind, McsLock, MutexLock, QueueInformed, RawLock,
    RawRwLock, RawTryLock, TasLock, TicketLock, TtasLock,
};
use gls_runtime::{LockStats, ThreadId};

use super::holders::HolderSet;
use crate::glk::{GlkConfig, GlkLock, GlkRwLock, MonitorHandle};

/// The concrete lock implementation behind a GLS entry.
///
/// `gls_lock` (the default interface) creates [`AlgorithmLock::Glk`] entries;
/// the explicit `gls_A_lock` interfaces create entries of the corresponding
/// algorithm (paper Table 1).
// One entry exists per distinct lock address and lives for the lock's whole
// lifetime, so the GLK variant's size is not worth an extra indirection on
// the acquisition fast path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum AlgorithmLock {
    /// Adaptive GLK lock (default).
    Glk(GlkLock),
    /// Test-and-set spinlock.
    Tas(TasLock),
    /// Test-and-test-and-set spinlock.
    Ttas(TtasLock),
    /// Ticket spinlock.
    Ticket(TicketLock),
    /// MCS queue lock.
    Mcs(McsLock),
    /// CLH queue lock.
    Clh(ClhLock),
    /// Blocking mutex.
    Mutex(MutexLock),
    /// Word-sized blocking mutex parked on the shared parking lot.
    Futex(FutexLock),
    /// Word-sized blocking reader-writer lock parked on the shared parking
    /// lot (exclusive `lock`/`unlock` calls acquire write access).
    FutexRw(FutexRwLock),
    /// Adaptive reader-writer lock (the entry kind behind the rw interface;
    /// exclusive `lock`/`unlock` calls acquire write access).
    Rw(GlkRwLock),
}

impl AlgorithmLock {
    pub(crate) fn new(kind: LockKind, glk_config: &GlkConfig, monitor: &MonitorHandle) -> Self {
        match kind {
            LockKind::Glk => AlgorithmLock::Glk(GlkLock::with_config_and_monitor(
                glk_config.clone(),
                monitor.clone(),
            )),
            LockKind::Tas => AlgorithmLock::Tas(TasLock::new()),
            LockKind::Ttas => AlgorithmLock::Ttas(TtasLock::new()),
            LockKind::Ticket => AlgorithmLock::Ticket(TicketLock::new()),
            LockKind::Mcs => AlgorithmLock::Mcs(McsLock::new()),
            LockKind::Clh => AlgorithmLock::Clh(ClhLock::new()),
            LockKind::Mutex => AlgorithmLock::Mutex(MutexLock::new()),
            LockKind::Futex => AlgorithmLock::Futex(FutexLock::new()),
            LockKind::FutexRw => AlgorithmLock::FutexRw(FutexRwLock::new()),
            LockKind::Rw => AlgorithmLock::Rw(GlkRwLock::with_config_and_monitor(
                glk_config.clone(),
                monitor.clone(),
            )),
        }
    }

    pub(crate) fn kind(&self) -> LockKind {
        match self {
            AlgorithmLock::Glk(_) => LockKind::Glk,
            AlgorithmLock::Tas(_) => LockKind::Tas,
            AlgorithmLock::Ttas(_) => LockKind::Ttas,
            AlgorithmLock::Ticket(_) => LockKind::Ticket,
            AlgorithmLock::Mcs(_) => LockKind::Mcs,
            AlgorithmLock::Clh(_) => LockKind::Clh,
            AlgorithmLock::Mutex(_) => LockKind::Mutex,
            AlgorithmLock::Futex(_) => LockKind::Futex,
            AlgorithmLock::FutexRw(_) => LockKind::FutexRw,
            AlgorithmLock::Rw(_) => LockKind::Rw,
        }
    }

    pub(crate) fn lock(&self) {
        match self {
            AlgorithmLock::Glk(l) => l.lock(),
            AlgorithmLock::Tas(l) => l.lock(),
            AlgorithmLock::Ttas(l) => l.lock(),
            AlgorithmLock::Ticket(l) => l.lock(),
            AlgorithmLock::Mcs(l) => l.lock(),
            AlgorithmLock::Clh(l) => l.lock(),
            AlgorithmLock::Mutex(l) => l.lock(),
            AlgorithmLock::Futex(l) => l.lock(),
            AlgorithmLock::FutexRw(l) => l.lock(),
            AlgorithmLock::Rw(l) => l.write_lock(),
        }
    }

    pub(crate) fn try_lock(&self) -> bool {
        match self {
            AlgorithmLock::Glk(l) => l.try_lock(),
            AlgorithmLock::Tas(l) => l.try_lock(),
            AlgorithmLock::Ttas(l) => l.try_lock(),
            AlgorithmLock::Ticket(l) => l.try_lock(),
            AlgorithmLock::Mcs(l) => l.try_lock(),
            AlgorithmLock::Clh(l) => l.try_lock(),
            AlgorithmLock::Mutex(l) => l.try_lock(),
            AlgorithmLock::Futex(l) => l.try_lock(),
            AlgorithmLock::FutexRw(l) => l.try_lock(),
            AlgorithmLock::Rw(l) => l.try_write_lock(),
        }
    }

    pub(crate) fn unlock(&self) {
        match self {
            AlgorithmLock::Glk(l) => l.unlock(),
            AlgorithmLock::Tas(l) => l.unlock(),
            AlgorithmLock::Ttas(l) => l.unlock(),
            AlgorithmLock::Ticket(l) => l.unlock(),
            AlgorithmLock::Mcs(l) => l.unlock(),
            AlgorithmLock::Clh(l) => l.unlock(),
            AlgorithmLock::Mutex(l) => l.unlock(),
            AlgorithmLock::Futex(l) => l.unlock(),
            AlgorithmLock::FutexRw(l) => l.unlock(),
            AlgorithmLock::Rw(l) => l.write_unlock(),
        }
    }

    /// Acquires shared access. Entries that are not reader-writer locks
    /// degrade to exclusive access — safe, merely pessimistic.
    pub(crate) fn read_lock(&self) {
        match self {
            AlgorithmLock::Rw(l) => l.read_lock(),
            AlgorithmLock::FutexRw(l) => l.read_lock(),
            _ => self.lock(),
        }
    }

    /// Attempts to acquire shared access without waiting.
    pub(crate) fn try_read_lock(&self) -> bool {
        match self {
            AlgorithmLock::Rw(l) => l.try_read_lock(),
            AlgorithmLock::FutexRw(l) => l.try_read_lock(),
            _ => self.try_lock(),
        }
    }

    /// Releases shared access (exclusive access for non-rw entries).
    pub(crate) fn read_unlock(&self) {
        match self {
            AlgorithmLock::Rw(l) => l.read_unlock(),
            AlgorithmLock::FutexRw(l) => l.read_unlock(),
            _ => self.unlock(),
        }
    }

    /// Whether this entry is a reader-writer lock (shared holders possible).
    pub(crate) fn is_rw(&self) -> bool {
        matches!(self, AlgorithmLock::Rw(_) | AlgorithmLock::FutexRw(_))
    }

    pub(crate) fn queue_length(&self) -> u64 {
        match self {
            AlgorithmLock::Glk(l) => l.queue_length(),
            AlgorithmLock::Tas(l) => l.queue_length(),
            AlgorithmLock::Ttas(l) => l.queue_length(),
            AlgorithmLock::Ticket(l) => l.queue_length(),
            AlgorithmLock::Mcs(l) => l.queue_length(),
            AlgorithmLock::Clh(l) => l.queue_length(),
            AlgorithmLock::Mutex(l) => l.queue_length(),
            AlgorithmLock::Futex(l) => l.queue_length(),
            AlgorithmLock::FutexRw(l) => l.queue_length(),
            AlgorithmLock::Rw(l) => l.queue_length(),
        }
    }

    /// Access to the underlying GLK lock for entries created by the default
    /// interface (used by the transition log and tests).
    pub(crate) fn as_glk(&self) -> Option<&GlkLock> {
        match self {
            AlgorithmLock::Glk(l) => Some(l),
            _ => None,
        }
    }
}

/// A lock object plus the metadata GLS keeps about it (ownership for the
/// debug mode, latency/queuing statistics for the profiler).
#[derive(Debug)]
pub(crate) struct LockEntry {
    /// The address this entry was created for.
    pub(crate) addr: usize,
    /// The lock implementation.
    pub(crate) lock: AlgorithmLock,
    /// Owner thread id + 1, or 0 when free. Maintained only in debug mode.
    /// SeqCst: the deadlock detector relies on every thread observing the
    /// latest ownership and waits-for edges (see `DebugState`).
    owner: AtomicU32,
    /// Threads currently holding shared (read) access. Maintained only in
    /// debug mode, for rw entries; a waiting writer waits on *all* of them.
    /// Sharded by thread id so heavy read concurrency in debug mode does
    /// not serialize on one mutex, and allocated lazily on the first
    /// recorded hold so the sharded set's footprint (~0.5 kB) is only paid
    /// by entries that actually see debug-mode shared traffic.
    readers: OnceLock<Box<HolderSet>>,
    /// Cycle timestamp of the last acquisition (profiler mode).
    acquired_at: AtomicU64,
    /// Profiler statistics: queuing, lock latency, critical-section latency.
    pub(crate) stats: LockStats,
}

impl LockEntry {
    pub(crate) fn new(addr: usize, lock: AlgorithmLock) -> Self {
        Self {
            addr,
            lock,
            owner: AtomicU32::new(0),
            readers: OnceLock::new(),
            acquired_at: AtomicU64::new(0),
            stats: LockStats::new(),
        }
    }

    /// Records `thread` as the owner (debug mode).
    pub(crate) fn set_owner(&self, thread: ThreadId) {
        self.owner.store(thread.as_u32() + 1, Ordering::SeqCst);
    }

    /// Clears ownership (debug mode).
    pub(crate) fn clear_owner(&self) {
        self.owner.store(0, Ordering::SeqCst);
    }

    /// The current owner, if ownership tracking has recorded one.
    pub(crate) fn owner(&self) -> Option<ThreadId> {
        match self.owner.load(Ordering::SeqCst) {
            0 => None,
            raw => Some(ThreadId::from_raw(raw - 1)),
        }
    }

    /// Records `thread` as a shared holder (debug mode, rw entries).
    pub(crate) fn add_reader(&self, thread: ThreadId) {
        self.readers
            .get_or_init(|| Box::new(HolderSet::new()))
            .add(thread);
    }

    /// Removes one shared-holder record for `thread`; returns whether one
    /// existed (debug mode, rw entries).
    pub(crate) fn remove_reader(&self, thread: ThreadId) -> bool {
        self.readers.get().is_some_and(|r| r.remove(thread))
    }

    /// Whether `thread` currently holds shared access (debug mode).
    pub(crate) fn has_reader(&self, thread: ThreadId) -> bool {
        self.readers.get().is_some_and(|r| r.contains(thread))
    }

    /// Every thread currently holding this entry: the exclusive owner and
    /// all shared holders. This is what a waiting writer waits on.
    pub(crate) fn holders(&self) -> Vec<ThreadId> {
        let mut holders = self.readers.get().map(|r| r.snapshot()).unwrap_or_default();
        if let Some(owner) = self.owner() {
            holders.push(owner);
        }
        holders
    }

    /// Stamps the acquisition time (profiler mode).
    pub(crate) fn stamp_acquired(&self, cycles: u64) {
        self.acquired_at.store(cycles, Ordering::Relaxed);
    }

    /// The last stamped acquisition time.
    pub(crate) fn acquired_at(&self) -> u64 {
        self.acquired_at.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(kind: LockKind) -> AlgorithmLock {
        AlgorithmLock::new(kind, &GlkConfig::default(), &MonitorHandle::Global)
    }

    #[test]
    fn every_kind_constructs_and_locks() {
        for kind in LockKind::ALL {
            let lock = make(kind);
            assert_eq!(lock.kind(), kind);
            lock.lock();
            assert_eq!(lock.queue_length(), 1);
            lock.unlock();
            assert_eq!(lock.queue_length(), 0);
        }
    }

    #[test]
    fn try_lock_works_for_every_kind() {
        for kind in LockKind::ALL {
            let lock = make(kind);
            assert!(lock.try_lock(), "{kind} try_lock on free lock");
            assert!(!lock.try_lock(), "{kind} try_lock on held lock");
            lock.unlock();
        }
    }

    #[test]
    fn as_glk_only_for_glk_entries() {
        assert!(make(LockKind::Glk).as_glk().is_some());
        assert!(make(LockKind::Mcs).as_glk().is_none());
    }

    #[test]
    fn entry_ownership_tracking() {
        let entry = LockEntry::new(0x1000, make(LockKind::Ticket));
        assert_eq!(entry.owner(), None);
        let me = ThreadId::current();
        entry.set_owner(me);
        assert_eq!(entry.owner(), Some(me));
        entry.clear_owner();
        assert_eq!(entry.owner(), None);
    }

    #[test]
    fn rw_entry_supports_shared_access() {
        let lock = make(LockKind::Rw);
        assert!(lock.is_rw());
        lock.read_lock();
        lock.read_lock();
        assert_eq!(lock.queue_length(), 2);
        assert!(!lock.try_lock(), "readers must exclude writers");
        lock.read_unlock();
        lock.read_unlock();
        assert!(lock.try_lock());
        assert!(!lock.try_read_lock(), "writer must exclude readers");
        lock.unlock();
    }

    #[test]
    fn futex_rw_entry_supports_shared_access() {
        let lock = make(LockKind::FutexRw);
        assert!(lock.is_rw());
        lock.read_lock();
        lock.read_lock();
        assert_eq!(lock.queue_length(), 2);
        assert!(!lock.try_lock(), "readers must exclude writers");
        lock.read_unlock();
        lock.read_unlock();
        assert!(lock.try_lock());
        assert!(!lock.try_read_lock(), "writer must exclude readers");
        lock.unlock();
    }

    #[test]
    fn non_rw_entries_degrade_shared_to_exclusive() {
        let lock = make(LockKind::Ticket);
        assert!(!lock.is_rw());
        lock.read_lock();
        assert!(!lock.try_read_lock(), "fallback shared access is exclusive");
        lock.read_unlock();
    }

    #[test]
    fn entry_reader_tracking() {
        let entry = LockEntry::new(0x3000, make(LockKind::Rw));
        let me = ThreadId::current();
        assert!(entry.holders().is_empty());
        entry.add_reader(me);
        entry.add_reader(me);
        assert!(entry.has_reader(me));
        assert_eq!(entry.holders().len(), 2);
        assert!(entry.remove_reader(me));
        assert!(entry.remove_reader(me));
        assert!(!entry.remove_reader(me), "no shared hold left to remove");
        assert!(!entry.has_reader(me));
        entry.set_owner(me);
        assert_eq!(entry.holders(), vec![me]);
        entry.clear_owner();
    }

    #[test]
    fn entry_acquisition_stamp() {
        let entry = LockEntry::new(0x2000, make(LockKind::Mutex));
        entry.stamp_acquired(12345);
        assert_eq!(entry.acquired_at(), 12345);
    }
}
