//! The per-address lock object stored in the GLS hash table.

use gls_sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

use gls_locks::{
    ClhLock, FutexLock, FutexRwLock, LockKind, McsLock, MutexLock, QueueInformed, RawLock,
    RawRwLock, RawTryLock, TasLock, TicketLock, TtasLock,
};
use gls_runtime::{LockStats, ThreadId};

use super::holders::HolderSet;
use super::shards::{ProfileShards, ProfileTotals, ShardSlot};
use crate::glk::{GlkConfig, GlkLock, GlkRwLock, MonitorHandle};

/// The concrete lock implementation behind a GLS entry.
///
/// `gls_lock` (the default interface) creates [`AlgorithmLock::Glk`] entries;
/// the explicit `gls_A_lock` interfaces create entries of the corresponding
/// algorithm (paper Table 1).
// One entry exists per distinct lock address and lives for the lock's whole
// lifetime, so the GLK variant's size is not worth an extra indirection on
// the acquisition fast path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum AlgorithmLock {
    /// Adaptive GLK lock (default).
    Glk(GlkLock),
    /// Test-and-set spinlock.
    Tas(TasLock),
    /// Test-and-test-and-set spinlock.
    Ttas(TtasLock),
    /// Ticket spinlock.
    Ticket(TicketLock),
    /// MCS queue lock.
    Mcs(McsLock),
    /// CLH queue lock.
    Clh(ClhLock),
    /// Blocking mutex.
    Mutex(MutexLock),
    /// Word-sized blocking mutex parked on the shared parking lot.
    Futex(FutexLock),
    /// Word-sized blocking reader-writer lock parked on the shared parking
    /// lot (exclusive `lock`/`unlock` calls acquire write access).
    FutexRw(FutexRwLock),
    /// Adaptive reader-writer lock (the entry kind behind the rw interface;
    /// exclusive `lock`/`unlock` calls acquire write access).
    Rw(GlkRwLock),
}

impl AlgorithmLock {
    pub(crate) fn new(kind: LockKind, glk_config: &GlkConfig, monitor: &MonitorHandle) -> Self {
        match kind {
            LockKind::Glk => AlgorithmLock::Glk(GlkLock::with_config_and_monitor(
                glk_config.clone(),
                monitor.clone(),
            )),
            LockKind::Tas => AlgorithmLock::Tas(TasLock::new()),
            LockKind::Ttas => AlgorithmLock::Ttas(TtasLock::new()),
            LockKind::Ticket => AlgorithmLock::Ticket(TicketLock::new()),
            LockKind::Mcs => AlgorithmLock::Mcs(McsLock::new()),
            LockKind::Clh => AlgorithmLock::Clh(ClhLock::new()),
            LockKind::Mutex => AlgorithmLock::Mutex(MutexLock::new()),
            LockKind::Futex => AlgorithmLock::Futex(FutexLock::new()),
            LockKind::FutexRw => AlgorithmLock::FutexRw(FutexRwLock::new()),
            LockKind::Rw => AlgorithmLock::Rw(GlkRwLock::with_config_and_monitor(
                glk_config.clone(),
                monitor.clone(),
            )),
        }
    }

    pub(crate) fn kind(&self) -> LockKind {
        match self {
            AlgorithmLock::Glk(_) => LockKind::Glk,
            AlgorithmLock::Tas(_) => LockKind::Tas,
            AlgorithmLock::Ttas(_) => LockKind::Ttas,
            AlgorithmLock::Ticket(_) => LockKind::Ticket,
            AlgorithmLock::Mcs(_) => LockKind::Mcs,
            AlgorithmLock::Clh(_) => LockKind::Clh,
            AlgorithmLock::Mutex(_) => LockKind::Mutex,
            AlgorithmLock::Futex(_) => LockKind::Futex,
            AlgorithmLock::FutexRw(_) => LockKind::FutexRw,
            AlgorithmLock::Rw(_) => LockKind::Rw,
        }
    }

    pub(crate) fn lock(&self) {
        match self {
            AlgorithmLock::Glk(l) => l.lock(),
            AlgorithmLock::Tas(l) => l.lock(),
            AlgorithmLock::Ttas(l) => l.lock(),
            AlgorithmLock::Ticket(l) => l.lock(),
            AlgorithmLock::Mcs(l) => l.lock(),
            AlgorithmLock::Clh(l) => l.lock(),
            AlgorithmLock::Mutex(l) => l.lock(),
            AlgorithmLock::Futex(l) => l.lock(),
            AlgorithmLock::FutexRw(l) => l.lock(),
            AlgorithmLock::Rw(l) => l.write_lock(),
        }
    }

    pub(crate) fn try_lock(&self) -> bool {
        match self {
            AlgorithmLock::Glk(l) => l.try_lock(),
            AlgorithmLock::Tas(l) => l.try_lock(),
            AlgorithmLock::Ttas(l) => l.try_lock(),
            AlgorithmLock::Ticket(l) => l.try_lock(),
            AlgorithmLock::Mcs(l) => l.try_lock(),
            AlgorithmLock::Clh(l) => l.try_lock(),
            AlgorithmLock::Mutex(l) => l.try_lock(),
            AlgorithmLock::Futex(l) => l.try_lock(),
            AlgorithmLock::FutexRw(l) => l.try_lock(),
            AlgorithmLock::Rw(l) => l.try_write_lock(),
        }
    }

    pub(crate) fn unlock(&self) {
        match self {
            AlgorithmLock::Glk(l) => l.unlock(),
            AlgorithmLock::Tas(l) => l.unlock(),
            AlgorithmLock::Ttas(l) => l.unlock(),
            AlgorithmLock::Ticket(l) => l.unlock(),
            AlgorithmLock::Mcs(l) => l.unlock(),
            AlgorithmLock::Clh(l) => l.unlock(),
            AlgorithmLock::Mutex(l) => l.unlock(),
            AlgorithmLock::Futex(l) => l.unlock(),
            AlgorithmLock::FutexRw(l) => l.unlock(),
            AlgorithmLock::Rw(l) => l.write_unlock(),
        }
    }

    /// Acquires shared access. Entries that are not reader-writer locks
    /// degrade to exclusive access — safe, merely pessimistic.
    pub(crate) fn read_lock(&self) {
        match self {
            AlgorithmLock::Rw(l) => l.read_lock(),
            AlgorithmLock::FutexRw(l) => l.read_lock(),
            _ => self.lock(),
        }
    }

    /// Attempts to acquire shared access without waiting.
    pub(crate) fn try_read_lock(&self) -> bool {
        match self {
            AlgorithmLock::Rw(l) => l.try_read_lock(),
            AlgorithmLock::FutexRw(l) => l.try_read_lock(),
            _ => self.try_lock(),
        }
    }

    /// Releases shared access (exclusive access for non-rw entries).
    pub(crate) fn read_unlock(&self) {
        match self {
            AlgorithmLock::Rw(l) => l.read_unlock(),
            AlgorithmLock::FutexRw(l) => l.read_unlock(),
            _ => self.unlock(),
        }
    }

    /// Whether this entry is a reader-writer lock (shared holders possible).
    pub(crate) fn is_rw(&self) -> bool {
        matches!(self, AlgorithmLock::Rw(_) | AlgorithmLock::FutexRw(_))
    }

    pub(crate) fn queue_length(&self) -> u64 {
        match self {
            AlgorithmLock::Glk(l) => l.queue_length(),
            AlgorithmLock::Tas(l) => l.queue_length(),
            AlgorithmLock::Ttas(l) => l.queue_length(),
            AlgorithmLock::Ticket(l) => l.queue_length(),
            AlgorithmLock::Mcs(l) => l.queue_length(),
            AlgorithmLock::Clh(l) => l.queue_length(),
            AlgorithmLock::Mutex(l) => l.queue_length(),
            AlgorithmLock::Futex(l) => l.queue_length(),
            AlgorithmLock::FutexRw(l) => l.queue_length(),
            AlgorithmLock::Rw(l) => l.queue_length(),
        }
    }

    /// Number of mode transitions this entry's adaptive lock performed
    /// (0 for non-adaptive algorithms, which never transition).
    pub(crate) fn transition_count(&self) -> u64 {
        match self {
            AlgorithmLock::Glk(l) => l.stats().transitions(),
            AlgorithmLock::Rw(l) => l.stats().transitions(),
            _ => 0,
        }
    }

    /// Access to the underlying GLK lock for entries created by the default
    /// interface (used by the transition log and tests).
    pub(crate) fn as_glk(&self) -> Option<&GlkLock> {
        match self {
            AlgorithmLock::Glk(l) => Some(l),
            _ => None,
        }
    }

    /// The parking-lot address this lock's blocking waiters sleep under,
    /// when the lock currently blocks through the shared parking lot:
    /// always for futex entries, for GLK entries while their mutex mode
    /// runs on a parking backend, `None` otherwise. Condvar
    /// requeue-on-notify moves waiters onto this address instead of waking
    /// them into a block on the mutex; a `None` falls back to plain wakeup.
    pub(crate) fn park_addr(&self) -> Option<usize> {
        match self {
            AlgorithmLock::Futex(l) => Some(l.park_addr()),
            AlgorithmLock::Glk(l) => l.blocking_park_addr(),
            _ => None,
        }
    }

    /// Tells adaptive locks their entry was freed: a retired lock leaves
    /// the live blocking population the Auto backend heuristic reads.
    pub(crate) fn note_retired(&self) {
        match self {
            AlgorithmLock::Glk(l) => l.note_retired(),
            AlgorithmLock::Rw(l) => l.note_retired(),
            _ => {}
        }
    }

    /// Tells adaptive locks their entry was resurrected: a lock retired in
    /// a blocking mode rejoins the population.
    pub(crate) fn note_resurrected(&self) {
        match self {
            AlgorithmLock::Glk(l) => l.note_resurrected(),
            AlgorithmLock::Rw(l) => l.note_resurrected(),
            _ => {}
        }
    }
}

/// A lock object plus the metadata GLS keeps about it (ownership for the
/// debug mode, latency/queuing statistics for the profiler).
// repr(C): the declaration order is the layout. `addr`, `epoch` and the
// head of `lock` (discriminant + lock word) share the entry's first
// cacheline, so a cached hit's epoch validation touches memory the
// immediately following lock operation pulls in anyway.
#[repr(C)]
#[derive(Debug)]
pub(crate) struct LockEntry {
    /// The address this entry was created for.
    pub(crate) addr: usize,
    /// Liveness epoch: even while the entry is live (mapped in the table),
    /// odd while it is retired (freed, parked in the service's retired set).
    /// `free` bumps it to odd, resurrection bumps it back to even, so every
    /// free *or* free-and-recreate of this address changes the value a
    /// per-thread cache slot stored — the cached mapping for this one
    /// address self-invalidates, and no other address is touched.
    epoch: AtomicU64,
    /// Cycle stamp of the in-flight acquisition (0 = none; profile mode).
    /// Deliberately *not* sharded: it is written once per acquisition by
    /// the holder — whose thread owns the entry's lines exclusively at that
    /// point — and keeping it on the entry times cross-thread releases
    /// correctly, where a per-thread slot would let an orphaned stamp be
    /// consumed by an unrelated release that happens to share a shard.
    acquired_at: AtomicU64,
    /// The lock implementation.
    pub(crate) lock: AlgorithmLock,
    /// Owner thread id + 1, or 0 when free. Maintained only in debug mode.
    /// SeqCst: the deadlock detector relies on every thread observing the
    /// latest ownership and waits-for edges (see `DebugState`).
    owner: AtomicU32,
    /// Threads currently holding shared (read) access. Maintained only in
    /// debug mode, for rw entries; a waiting writer waits on *all* of them.
    /// Sharded by thread id so heavy read concurrency in debug mode does
    /// not serialize on one mutex, and allocated lazily on the first
    /// recorded hold so the sharded set's footprint (~0.5 kB) is only paid
    /// by entries that actually see debug-mode shared traffic.
    readers: OnceLock<Box<HolderSet>>,
    /// Sharded profile-mode statistics (queue/latency/critical-section),
    /// allocated lazily on the first profiled call so the ~1 KiB footprint
    /// is only paid by entries a profiling service actually touches.
    profile: OnceLock<Box<ProfileShards>>,
    /// Base statistics: debug mode records acquisitions here; profile mode
    /// writes the sharded slots instead and reports fold both.
    pub(crate) stats: LockStats,
}

impl LockEntry {
    pub(crate) fn new(addr: usize, lock: AlgorithmLock) -> Self {
        Self {
            addr,
            lock,
            epoch: AtomicU64::new(0),
            acquired_at: AtomicU64::new(0),
            owner: AtomicU32::new(0),
            readers: OnceLock::new(),
            profile: OnceLock::new(),
            stats: LockStats::new(),
        }
    }

    /// Stamps the in-flight acquisition time (profile mode; holder only).
    #[inline]
    pub(crate) fn stamp_acquired(&self, cycles: u64) {
        self.acquired_at.store(cycles, Ordering::Relaxed);
    }

    /// Consumes the in-flight acquisition stamp (0 if none was set), so a
    /// release without a matching stamped acquisition records no sample.
    #[inline]
    pub(crate) fn take_acquired(&self) -> u64 {
        let stamp = self.acquired_at.load(Ordering::Relaxed);
        if stamp != 0 {
            self.acquired_at.store(0, Ordering::Relaxed);
        }
        stamp
    }

    /// The entry's current liveness epoch (see the field docs).
    #[inline]
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Whether an epoch value denotes a live (non-retired) entry.
    #[inline]
    pub(crate) fn epoch_is_live(epoch: u64) -> bool {
        epoch.is_multiple_of(2)
    }

    /// Marks the entry retired (called by `free` after unmapping it).
    pub(crate) fn retire(&self) {
        debug_assert!(Self::epoch_is_live(self.epoch.load(Ordering::Relaxed)));
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Marks a retired entry live again (called on resurrection, before the
    /// entry is re-published in the table).
    pub(crate) fn resurrect(&self) {
        debug_assert!(!Self::epoch_is_live(self.epoch.load(Ordering::Relaxed)));
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Records `thread` as the owner (debug mode).
    pub(crate) fn set_owner(&self, thread: ThreadId) {
        self.owner.store(thread.as_u32() + 1, Ordering::SeqCst);
    }

    /// Clears ownership (debug mode).
    pub(crate) fn clear_owner(&self) {
        self.owner.store(0, Ordering::SeqCst);
    }

    /// The current owner, if ownership tracking has recorded one.
    pub(crate) fn owner(&self) -> Option<ThreadId> {
        match self.owner.load(Ordering::SeqCst) {
            0 => None,
            raw => Some(ThreadId::from_raw(raw - 1)),
        }
    }

    /// Records `thread` as a shared holder (debug mode, rw entries).
    pub(crate) fn add_reader(&self, thread: ThreadId) {
        self.readers
            .get_or_init(|| Box::new(HolderSet::new()))
            .add(thread);
    }

    /// Removes one shared-holder record for `thread`; returns whether one
    /// existed (debug mode, rw entries).
    pub(crate) fn remove_reader(&self, thread: ThreadId) -> bool {
        self.readers.get().is_some_and(|r| r.remove(thread))
    }

    /// Whether `thread` currently holds shared access (debug mode).
    pub(crate) fn has_reader(&self, thread: ThreadId) -> bool {
        self.readers.get().is_some_and(|r| r.contains(thread))
    }

    /// Every thread currently holding this entry: the exclusive owner and
    /// all shared holders. This is what a waiting writer waits on.
    pub(crate) fn holders(&self) -> Vec<ThreadId> {
        let mut holders = self.readers.get().map(|r| r.snapshot()).unwrap_or_default();
        if let Some(owner) = self.owner() {
            holders.push(owner);
        }
        holders
    }

    /// The entry's sharded profile statistics, allocating them on first use.
    #[inline]
    pub(crate) fn profile_shards(&self) -> &ProfileShards {
        self.profile.get_or_init(|| Box::new(ProfileShards::new()))
    }

    /// The calling thread's profile-stat slot, allocating the sharded set on
    /// first use (the service goes through [`Self::profile_shards`] so it
    /// can also reach the histograms; tests use this shorthand).
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn profile_slot(&self) -> &ShardSlot {
        self.profile_shards().slot()
    }

    /// Merged acquisition-latency distribution of measured acquisitions
    /// (empty if the entry never saw profiled traffic).
    pub(crate) fn lock_latency_histogram(&self) -> gls_runtime::LatencyHistogram {
        self.profile
            .get()
            .map(|shards| shards.lock_latency_histogram())
            .unwrap_or_default()
    }

    /// Merged critical-section-latency distribution of measured releases.
    pub(crate) fn cs_latency_histogram(&self) -> gls_runtime::LatencyHistogram {
        self.profile
            .get()
            .map(|shards| shards.cs_latency_histogram())
            .unwrap_or_default()
    }

    /// The address a condvar waiter can be requeued onto so the mutex's own
    /// release wakes it (see [`AlgorithmLock::park_addr`]).
    pub(crate) fn park_addr(&self) -> Option<usize> {
        self.lock.park_addr()
    }

    /// Folds the sharded profile statistics and the base `LockStats` (debug
    /// mode writes the latter) into one set of totals for reporting.
    pub(crate) fn profile_totals(&self) -> ProfileTotals {
        let mut totals = self
            .profile
            .get()
            .map(|shards| shards.totals())
            .unwrap_or_default();
        totals.acquisitions += self.stats.acquisitions();
        totals.queue_total += self.stats.queue_total();
        totals.queue_samples += self.stats.queue_samples();
        totals.lock_latency_total += self.stats.lock_latency_total();
        totals.lock_latency_samples += self.stats.lock_latency_samples();
        totals.cs_latency_total += self.stats.cs_latency_total();
        totals.cs_latency_samples += self.stats.cs_latency_samples();
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(kind: LockKind) -> AlgorithmLock {
        AlgorithmLock::new(kind, &GlkConfig::default(), &MonitorHandle::Global)
    }

    #[test]
    fn every_kind_constructs_and_locks() {
        for kind in LockKind::ALL {
            let lock = make(kind);
            assert_eq!(lock.kind(), kind);
            lock.lock();
            assert_eq!(lock.queue_length(), 1);
            lock.unlock();
            assert_eq!(lock.queue_length(), 0);
        }
    }

    #[test]
    fn try_lock_works_for_every_kind() {
        for kind in LockKind::ALL {
            let lock = make(kind);
            assert!(lock.try_lock(), "{kind} try_lock on free lock");
            assert!(!lock.try_lock(), "{kind} try_lock on held lock");
            lock.unlock();
        }
    }

    #[test]
    fn as_glk_only_for_glk_entries() {
        assert!(make(LockKind::Glk).as_glk().is_some());
        assert!(make(LockKind::Mcs).as_glk().is_none());
    }

    #[test]
    fn entry_ownership_tracking() {
        let entry = LockEntry::new(0x1000, make(LockKind::Ticket));
        assert_eq!(entry.owner(), None);
        let me = ThreadId::current();
        entry.set_owner(me);
        assert_eq!(entry.owner(), Some(me));
        entry.clear_owner();
        assert_eq!(entry.owner(), None);
    }

    #[test]
    fn rw_entry_supports_shared_access() {
        let lock = make(LockKind::Rw);
        assert!(lock.is_rw());
        lock.read_lock();
        lock.read_lock();
        assert_eq!(lock.queue_length(), 2);
        assert!(!lock.try_lock(), "readers must exclude writers");
        lock.read_unlock();
        lock.read_unlock();
        assert!(lock.try_lock());
        assert!(!lock.try_read_lock(), "writer must exclude readers");
        lock.unlock();
    }

    #[test]
    fn futex_rw_entry_supports_shared_access() {
        let lock = make(LockKind::FutexRw);
        assert!(lock.is_rw());
        lock.read_lock();
        lock.read_lock();
        assert_eq!(lock.queue_length(), 2);
        assert!(!lock.try_lock(), "readers must exclude writers");
        lock.read_unlock();
        lock.read_unlock();
        assert!(lock.try_lock());
        assert!(!lock.try_read_lock(), "writer must exclude readers");
        lock.unlock();
    }

    #[test]
    fn non_rw_entries_degrade_shared_to_exclusive() {
        let lock = make(LockKind::Ticket);
        assert!(!lock.is_rw());
        lock.read_lock();
        assert!(!lock.try_read_lock(), "fallback shared access is exclusive");
        lock.read_unlock();
    }

    #[test]
    fn entry_reader_tracking() {
        let entry = LockEntry::new(0x3000, make(LockKind::Rw));
        let me = ThreadId::current();
        assert!(entry.holders().is_empty());
        entry.add_reader(me);
        entry.add_reader(me);
        assert!(entry.has_reader(me));
        assert_eq!(entry.holders().len(), 2);
        assert!(entry.remove_reader(me));
        assert!(entry.remove_reader(me));
        assert!(!entry.remove_reader(me), "no shared hold left to remove");
        assert!(!entry.has_reader(me));
        entry.set_owner(me);
        assert_eq!(entry.holders(), vec![me]);
        entry.clear_owner();
    }

    #[test]
    fn entry_epoch_tracks_retire_and_resurrect() {
        let entry = LockEntry::new(0x2000, make(LockKind::Mutex));
        let born = entry.epoch();
        assert!(LockEntry::epoch_is_live(born));
        entry.retire();
        assert!(!LockEntry::epoch_is_live(entry.epoch()));
        entry.resurrect();
        assert!(LockEntry::epoch_is_live(entry.epoch()));
        assert_ne!(
            entry.epoch(),
            born,
            "a free/recreate cycle must change the epoch a cache slot stored"
        );
    }

    #[test]
    fn entry_profile_totals_merge_shards_and_base_stats() {
        let entry = LockEntry::new(0x2000, make(LockKind::Mutex));
        assert_eq!(entry.profile_totals().acquisitions, 0);
        let slot = entry.profile_slot();
        slot.record_acquisition();
        slot.record_lock_latency(40);
        slot.record_cs_latency(100);
        slot.record_queue_sample(3);
        // Debug mode writes the base stats; reports must fold both.
        entry.stats.record_acquisition();
        let totals = entry.profile_totals();
        assert_eq!(totals.acquisitions, 2);
        assert!((totals.avg_lock_latency() - 40.0).abs() < 1e-9);
        assert!((totals.avg_cs_latency() - 100.0).abs() < 1e-9);
        assert!((totals.avg_queue() - 3.0).abs() < 1e-9);
    }
}
