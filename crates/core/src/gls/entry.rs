//! The per-address lock object stored in the GLS hash table.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use gls_locks::{
    ClhLock, LockKind, McsLock, MutexLock, QueueInformed, RawLock, RawTryLock, TasLock, TicketLock,
    TtasLock,
};
use gls_runtime::{LockStats, ThreadId};

use crate::glk::{GlkConfig, GlkLock, MonitorHandle};

/// The concrete lock implementation behind a GLS entry.
///
/// `gls_lock` (the default interface) creates [`AlgorithmLock::Glk`] entries;
/// the explicit `gls_A_lock` interfaces create entries of the corresponding
/// algorithm (paper Table 1).
// One entry exists per distinct lock address and lives for the lock's whole
// lifetime, so the GLK variant's size is not worth an extra indirection on
// the acquisition fast path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum AlgorithmLock {
    /// Adaptive GLK lock (default).
    Glk(GlkLock),
    /// Test-and-set spinlock.
    Tas(TasLock),
    /// Test-and-test-and-set spinlock.
    Ttas(TtasLock),
    /// Ticket spinlock.
    Ticket(TicketLock),
    /// MCS queue lock.
    Mcs(McsLock),
    /// CLH queue lock.
    Clh(ClhLock),
    /// Blocking mutex.
    Mutex(MutexLock),
}

impl AlgorithmLock {
    pub(crate) fn new(kind: LockKind, glk_config: &GlkConfig, monitor: &MonitorHandle) -> Self {
        match kind {
            LockKind::Glk => AlgorithmLock::Glk(GlkLock::with_config_and_monitor(
                glk_config.clone(),
                monitor.clone(),
            )),
            LockKind::Tas => AlgorithmLock::Tas(TasLock::new()),
            LockKind::Ttas => AlgorithmLock::Ttas(TtasLock::new()),
            LockKind::Ticket => AlgorithmLock::Ticket(TicketLock::new()),
            LockKind::Mcs => AlgorithmLock::Mcs(McsLock::new()),
            LockKind::Clh => AlgorithmLock::Clh(ClhLock::new()),
            LockKind::Mutex => AlgorithmLock::Mutex(MutexLock::new()),
        }
    }

    pub(crate) fn kind(&self) -> LockKind {
        match self {
            AlgorithmLock::Glk(_) => LockKind::Glk,
            AlgorithmLock::Tas(_) => LockKind::Tas,
            AlgorithmLock::Ttas(_) => LockKind::Ttas,
            AlgorithmLock::Ticket(_) => LockKind::Ticket,
            AlgorithmLock::Mcs(_) => LockKind::Mcs,
            AlgorithmLock::Clh(_) => LockKind::Clh,
            AlgorithmLock::Mutex(_) => LockKind::Mutex,
        }
    }

    pub(crate) fn lock(&self) {
        match self {
            AlgorithmLock::Glk(l) => l.lock(),
            AlgorithmLock::Tas(l) => l.lock(),
            AlgorithmLock::Ttas(l) => l.lock(),
            AlgorithmLock::Ticket(l) => l.lock(),
            AlgorithmLock::Mcs(l) => l.lock(),
            AlgorithmLock::Clh(l) => l.lock(),
            AlgorithmLock::Mutex(l) => l.lock(),
        }
    }

    pub(crate) fn try_lock(&self) -> bool {
        match self {
            AlgorithmLock::Glk(l) => l.try_lock(),
            AlgorithmLock::Tas(l) => l.try_lock(),
            AlgorithmLock::Ttas(l) => l.try_lock(),
            AlgorithmLock::Ticket(l) => l.try_lock(),
            AlgorithmLock::Mcs(l) => l.try_lock(),
            AlgorithmLock::Clh(l) => l.try_lock(),
            AlgorithmLock::Mutex(l) => l.try_lock(),
        }
    }

    pub(crate) fn unlock(&self) {
        match self {
            AlgorithmLock::Glk(l) => l.unlock(),
            AlgorithmLock::Tas(l) => l.unlock(),
            AlgorithmLock::Ttas(l) => l.unlock(),
            AlgorithmLock::Ticket(l) => l.unlock(),
            AlgorithmLock::Mcs(l) => l.unlock(),
            AlgorithmLock::Clh(l) => l.unlock(),
            AlgorithmLock::Mutex(l) => l.unlock(),
        }
    }

    pub(crate) fn queue_length(&self) -> u64 {
        match self {
            AlgorithmLock::Glk(l) => l.queue_length(),
            AlgorithmLock::Tas(l) => l.queue_length(),
            AlgorithmLock::Ttas(l) => l.queue_length(),
            AlgorithmLock::Ticket(l) => l.queue_length(),
            AlgorithmLock::Mcs(l) => l.queue_length(),
            AlgorithmLock::Clh(l) => l.queue_length(),
            AlgorithmLock::Mutex(l) => l.queue_length(),
        }
    }

    /// Access to the underlying GLK lock for entries created by the default
    /// interface (used by the transition log and tests).
    pub(crate) fn as_glk(&self) -> Option<&GlkLock> {
        match self {
            AlgorithmLock::Glk(l) => Some(l),
            _ => None,
        }
    }
}

/// A lock object plus the metadata GLS keeps about it (ownership for the
/// debug mode, latency/queuing statistics for the profiler).
#[derive(Debug)]
pub(crate) struct LockEntry {
    /// The address this entry was created for.
    pub(crate) addr: usize,
    /// The lock implementation.
    pub(crate) lock: AlgorithmLock,
    /// Owner thread id + 1, or 0 when free. Maintained only in debug mode.
    owner: AtomicU32,
    /// Cycle timestamp of the last acquisition (profiler mode).
    acquired_at: AtomicU64,
    /// Profiler statistics: queuing, lock latency, critical-section latency.
    pub(crate) stats: LockStats,
}

impl LockEntry {
    pub(crate) fn new(addr: usize, lock: AlgorithmLock) -> Self {
        Self {
            addr,
            lock,
            owner: AtomicU32::new(0),
            acquired_at: AtomicU64::new(0),
            stats: LockStats::new(),
        }
    }

    /// Records `thread` as the owner (debug mode).
    pub(crate) fn set_owner(&self, thread: ThreadId) {
        self.owner.store(thread.as_u32() + 1, Ordering::Release);
    }

    /// Clears ownership (debug mode).
    pub(crate) fn clear_owner(&self) {
        self.owner.store(0, Ordering::Release);
    }

    /// The current owner, if ownership tracking has recorded one.
    pub(crate) fn owner(&self) -> Option<ThreadId> {
        match self.owner.load(Ordering::Acquire) {
            0 => None,
            raw => Some(ThreadId::from_raw(raw - 1)),
        }
    }

    /// Stamps the acquisition time (profiler mode).
    pub(crate) fn stamp_acquired(&self, cycles: u64) {
        self.acquired_at.store(cycles, Ordering::Relaxed);
    }

    /// The last stamped acquisition time.
    pub(crate) fn acquired_at(&self) -> u64 {
        self.acquired_at.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(kind: LockKind) -> AlgorithmLock {
        AlgorithmLock::new(kind, &GlkConfig::default(), &MonitorHandle::Global)
    }

    #[test]
    fn every_kind_constructs_and_locks() {
        for kind in LockKind::ALL {
            let lock = make(kind);
            assert_eq!(lock.kind(), kind);
            lock.lock();
            assert_eq!(lock.queue_length(), 1);
            lock.unlock();
            assert_eq!(lock.queue_length(), 0);
        }
    }

    #[test]
    fn try_lock_works_for_every_kind() {
        for kind in LockKind::ALL {
            let lock = make(kind);
            assert!(lock.try_lock(), "{kind} try_lock on free lock");
            assert!(!lock.try_lock(), "{kind} try_lock on held lock");
            lock.unlock();
        }
    }

    #[test]
    fn as_glk_only_for_glk_entries() {
        assert!(make(LockKind::Glk).as_glk().is_some());
        assert!(make(LockKind::Mcs).as_glk().is_none());
    }

    #[test]
    fn entry_ownership_tracking() {
        let entry = LockEntry::new(0x1000, make(LockKind::Ticket));
        assert_eq!(entry.owner(), None);
        let me = ThreadId::current();
        entry.set_owner(me);
        assert_eq!(entry.owner(), Some(me));
        entry.clear_owner();
        assert_eq!(entry.owner(), None);
    }

    #[test]
    fn entry_acquisition_stamp() {
        let entry = LockEntry::new(0x2000, make(LockKind::Mutex));
        entry.stamp_acquired(12345);
        assert_eq!(entry.acquired_at(), 12345);
    }
}
