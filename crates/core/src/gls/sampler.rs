//! Per-thread adaptive sampling gate for the profiler (ROADMAP item 5).
//!
//! Full-measurement profiling reads the cycle counter twice per acquisition
//! and samples the queue depth, which costs ~4.6× normal-mode throughput on
//! a contended lock — too much to leave on in production. The sampler thins
//! the *measurement* (not the counting: acquisition totals stay exact) to
//! every Nth acquisition per thread, and adapts N from the thread's own
//! observed acquisition rate so measured samples land near a configured
//! budget of samples per second ([`GlsConfig::with_sampling`]). A thread
//! hammering a hot lock at 10 M acq/s with a 10 k samples/s budget settles
//! at N ≈ 1000; a thread taking one lock per second is measured every time.
//!
//! The state is a handful of `Cell`s in a `thread_local`: no atomics, no
//! sharing, nothing for the fast path to contend on. The gate costs one
//! decrement-and-test per acquisition; the rate re-estimate reads the cycle
//! counter once per [`ADAPT_WINDOW`] acquisitions, which amortizes to
//! nothing.
//!
//! The sampler is per *thread*, not per service: two services with
//! different budgets on the same thread would fight over the stride. That
//! trade keeps the gate allocation-free; realistic deployments run one GLS
//! service per process (the paper's model), and the stride re-converges
//! within one window either way.
//!
//! [`GlsConfig::with_sampling`]: super::GlsConfig::with_sampling

use std::cell::Cell;

use gls_runtime::cycles;

/// Acquisitions between stride re-estimates. A power of two, matching the
/// spirit of GLK's `adaptation_period`: long enough that the once-per-window
/// `rdtsc` vanishes, short enough that a phase change (lock goes hot/cold)
/// is picked up within milliseconds on a busy thread.
pub(crate) const ADAPT_WINDOW: u64 = 4096;

/// Upper bound on the sampling stride, so a pathological rate estimate can
/// never silence the profiler for longer than ~a million acquisitions.
const MAX_STRIDE: u64 = 1 << 20;

struct SamplerState {
    /// Acquisitions left until the next measured sample.
    countdown: Cell<u64>,
    /// Current stride: measure every `stride`-th acquisition.
    stride: Cell<u64>,
    /// Acquisitions seen in the current adaptation window.
    window_acquisitions: Cell<u64>,
    /// Cycle stamp of the window start (0 = window not started yet).
    window_start: Cell<u64>,
}

thread_local! {
    static SAMPLER: SamplerState = const {
        SamplerState {
            // Start by measuring everything: cold threads and low-rate
            // locks get full fidelity, and the first window's rate estimate
            // is based on real traffic.
            countdown: Cell::new(0),
            stride: Cell::new(1),
            window_acquisitions: Cell::new(0),
            window_start: Cell::new(0),
        }
    };
}

/// Counts one profiled acquisition on this thread and decides whether it
/// should be *measured* (cycle-stamped and queue-sampled). `None` means
/// full measurement — every acquisition is measured, the historical
/// profile-mode behaviour.
#[inline]
pub(crate) fn should_sample(budget: Option<u64>) -> bool {
    let Some(budget) = budget else {
        return true;
    };
    SAMPLER.with(|s| {
        let seen = s.window_acquisitions.get() + 1;
        if seen >= ADAPT_WINDOW {
            adapt(s, budget);
        } else {
            s.window_acquisitions.set(seen);
        }
        let countdown = s.countdown.get();
        if countdown == 0 {
            s.countdown.set(s.stride.get().saturating_sub(1));
            true
        } else {
            s.countdown.set(countdown - 1);
            false
        }
    })
}

/// Re-estimates this thread's acquisition rate over the window just closed
/// and retargets the stride at `budget` measured samples per second.
#[cold]
fn adapt(s: &SamplerState, budget: u64) {
    let now = cycles::now();
    let start = s.window_start.get();
    s.window_start.set(now);
    s.window_acquisitions.set(0);
    if start == 0 || now <= start {
        // First window (or a cycle-counter anomaly): keep the stride.
        return;
    }
    let elapsed_ns = cycles::cycles_to_duration(now - start).as_nanos() as f64;
    if elapsed_ns <= 0.0 {
        return;
    }
    let rate_per_sec = ADAPT_WINDOW as f64 * 1e9 / elapsed_ns;
    let stride = (rate_per_sec / budget as f64).ceil();
    let stride = if stride.is_finite() {
        (stride as u64).clamp(1, MAX_STRIDE)
    } else {
        MAX_STRIDE
    };
    s.stride.set(stride);
    // Don't let a leftover long countdown from a previous (hotter) phase
    // starve measurement after the rate drops.
    if s.countdown.get() > stride {
        s.countdown.set(stride);
    }
}

/// Test hook: reset this thread's sampler to its initial state.
#[cfg(test)]
pub(crate) fn reset_for_test() {
    SAMPLER.with(|s| {
        s.countdown.set(0);
        s.stride.set(1);
        s.window_acquisitions.set(0);
        s.window_start.set(0);
    });
}

/// Test hook: this thread's current stride.
#[cfg(test)]
pub(crate) fn current_stride() -> u64 {
    SAMPLER.with(|s| s.stride.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_always_samples() {
        reset_for_test();
        for _ in 0..10 {
            assert!(should_sample(None));
        }
    }

    #[test]
    fn initial_stride_measures_everything() {
        reset_for_test();
        for _ in 0..ADAPT_WINDOW - 1 {
            assert!(should_sample(Some(1)));
        }
    }

    #[test]
    fn high_rate_low_budget_grows_the_stride() {
        reset_for_test();
        // Hammer the gate far faster than 1 sample/sec for several windows:
        // the stride must rise above 1, thinning measurement.
        for _ in 0..ADAPT_WINDOW * 4 {
            should_sample(Some(1));
        }
        assert!(
            current_stride() > 1,
            "stride stayed {} despite a 1/s budget",
            current_stride()
        );
        // And with a huge budget the stride relaxes back down.
        for _ in 0..ADAPT_WINDOW * 4 {
            should_sample(Some(u64::MAX / 2));
        }
        assert_eq!(current_stride(), 1, "unreachable budget must not thin");
        reset_for_test();
    }

    #[test]
    fn sampled_fraction_matches_stride() {
        reset_for_test();
        // Warm up until the stride stabilizes for a 1/s budget.
        for _ in 0..ADAPT_WINDOW * 2 {
            should_sample(Some(1));
        }
        let stride = current_stride();
        if stride > 1 {
            let sampled = (0..ADAPT_WINDOW / 2)
                .filter(|_| should_sample(Some(1)))
                .count() as u64;
            // Expected: about one measurement per `stride` acquisitions.
            let expected = ADAPT_WINDOW / 2 / stride;
            assert!(
                sampled <= expected + 2,
                "sampled {sampled}, expected about {expected} (stride {stride})"
            );
        }
        reset_for_test();
    }
}
