//! Sharded shared-holder tracking for debug mode.
//!
//! Debug mode records every thread holding shared (read) access to an rw
//! entry so the deadlock detector can make a waiting writer wait on *all*
//! readers. A single `Mutex<Vec<ThreadId>>` serializes every read
//! acquisition and release of the entry — under heavy read concurrency the
//! debug mode's whole point (observing realistic interleavings) drowns in
//! that one mutex. [`HolderSet`] shards the records by thread id: a reader
//! only ever touches its own shard, so concurrent readers of one lock no
//! longer contend with each other, only the rare full-set snapshot (the
//! deadlock walk) visits every shard.

// Deadlock-detector bookkeeping stays off the gls_sync facade so the
// model explorer never schedules around it (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::sync::Mutex;

use gls_runtime::ThreadId;

/// Number of shards; a power of two so shard selection is a mask. Sixteen
/// shards cover the hardware concurrency of the paper's platforms. The set
/// costs ~0.5 kB when empty (16 mutex-wrapped Vecs), which is why entries
/// allocate it lazily — only on the first debug-mode shared hold.
const SHARDS: usize = 16;

/// A sharded multiset of thread ids (one entry per shared hold).
///
/// `add`/`remove`/`contains` touch exactly one shard — the one owning the
/// thread's id — so concurrent readers of the same lock proceed in
/// parallel. `snapshot` (used by the deadlock detector's owner walks)
/// visits all shards, shard by shard; it is racy by design, like every
/// holder observation the detector makes, and candidate cycles are
/// confirmed later anyway.
#[derive(Debug, Default)]
pub(crate) struct HolderSet {
    shards: [Mutex<Vec<ThreadId>>; SHARDS],
}

impl HolderSet {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn shard(&self, thread: ThreadId) -> &Mutex<Vec<ThreadId>> {
        &self.shards[thread.as_usize() & (SHARDS - 1)]
    }

    /// Records one shared hold by `thread`.
    pub(crate) fn add(&self, thread: ThreadId) {
        if let Ok(mut shard) = self.shard(thread).lock() {
            shard.push(thread);
        }
    }

    /// Removes one shared-hold record for `thread`; returns whether one
    /// existed.
    pub(crate) fn remove(&self, thread: ThreadId) -> bool {
        match self.shard(thread).lock() {
            Ok(mut shard) => match shard.iter().position(|&t| t == thread) {
                Some(index) => {
                    shard.swap_remove(index);
                    true
                }
                None => false,
            },
            Err(_) => false,
        }
    }

    /// Whether `thread` currently has at least one recorded hold.
    pub(crate) fn contains(&self, thread: ThreadId) -> bool {
        self.shard(thread)
            .lock()
            .map(|shard| shard.contains(&thread))
            .unwrap_or(false)
    }

    /// All recorded holds, one entry per hold (racy; the deadlock walk
    /// tolerates and re-validates stale observations).
    pub(crate) fn snapshot(&self) -> Vec<ThreadId> {
        let mut out = Vec::new();
        for shard in &self.shards {
            if let Ok(shard) = shard.lock() {
                out.extend_from_slice(&shard);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_remove_contains_roundtrip() {
        let set = HolderSet::new();
        let me = ThreadId::current();
        assert!(!set.contains(me));
        set.add(me);
        set.add(me);
        assert!(set.contains(me));
        assert_eq!(set.snapshot().len(), 2);
        assert!(set.remove(me));
        assert!(set.remove(me));
        assert!(!set.remove(me), "no hold left to remove");
        assert!(!set.contains(me));
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn concurrent_readers_balance_and_drain() {
        let set = Arc::new(HolderSet::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    let me = ThreadId::current();
                    for _ in 0..10_000 {
                        set.add(me);
                        assert!(set.contains(me));
                        assert!(set.remove(me));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(set.snapshot().is_empty());
    }

    #[test]
    fn snapshot_sees_holds_of_other_threads() {
        let set = Arc::new(HolderSet::new());
        let ids: Vec<ThreadId> = (0..4)
            .map(|_| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    let me = ThreadId::current();
                    set.add(me);
                    me
                })
                .join()
                .unwrap()
            })
            .collect();
        let mut snapshot = set.snapshot();
        let mut expected = ids.clone();
        snapshot.sort();
        expected.sort();
        assert_eq!(snapshot, expected);
    }
}
