//! Sharded per-entry profiling statistics.
//!
//! Profile mode records a queue sample, an acquisition latency and a
//! critical-section latency on *every* lock call. With one shared
//! `LockStats` per entry that is five read-modify-writes on one cacheline —
//! contended acquirers of the same lock serialize on the stat line before
//! they even reach the lock word, which is precisely the overhead a
//! profiler must not add. [`ProfileShards`] splits the counters into
//! [`PROFILE_SHARDS`] cache-padded slots selected by thread id: a thread
//! only ever touches its own slot (collisions are possible beyond
//! `PROFILE_SHARDS` concurrent threads, but remain correct — the slots are
//! atomics), and [`ProfileShards::totals`] folds the slots into one
//! [`ProfileTotals`] when a report is built.
//!
//! The critical-section *stamp* is not sharded: it is written exactly once
//! per acquisition by the lock holder (whose thread already owns the
//! entry's lines exclusively) and lives on the entry itself, which also
//! keeps cross-thread releases correctly timed — sharding it would let an
//! orphaned stamp be consumed by an unrelated release on a colliding shard.

use std::sync::atomic::{AtomicU64, Ordering};

use gls_locks::CachePadded;
use gls_runtime::{AtomicLatencyHistogram, LatencyHistogram, ThreadId};

/// Number of stat shards per profiled entry; a power of two so shard
/// selection is a mask. Matches the sharding of debug-mode holder sets.
pub(crate) const PROFILE_SHARDS: usize = 16;

/// Number of histogram shards per profiled entry. Histograms are ~0.5 KiB
/// each (64 atomic buckets plus extrema), so they get fewer shards than the
/// one-cacheline counter slots: four shards already keep concurrent
/// recorders off each other's lines most of the time, at ~4 KiB per
/// profiled entry instead of the ~17 KiB full sharding would cost.
pub(crate) const HISTOGRAM_SHARDS: usize = 4;

/// One thread-private slice of an entry's profiling counters. At most one
/// cacheline, padded so neighboring shards never share.
#[derive(Debug, Default)]
pub(crate) struct ShardSlot {
    acquisitions: AtomicU64,
    queue_total: AtomicU64,
    queue_samples: AtomicU64,
    lock_latency_total: AtomicU64,
    lock_latency_samples: AtomicU64,
    cs_latency_total: AtomicU64,
    cs_latency_samples: AtomicU64,
}

const _: () = assert!(
    std::mem::size_of::<CachePadded<ShardSlot>>() == 64,
    "a shard slot must occupy exactly one cache line"
);

impl ShardSlot {
    #[inline]
    pub(crate) fn record_acquisition(&self) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_queue_sample(&self, queued: u64) {
        self.queue_total.fetch_add(queued, Ordering::Relaxed);
        self.queue_samples.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_lock_latency(&self, cycles: u64) {
        self.lock_latency_total.fetch_add(cycles, Ordering::Relaxed);
        self.lock_latency_samples.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_cs_latency(&self, cycles: u64) {
        self.cs_latency_total.fetch_add(cycles, Ordering::Relaxed);
        self.cs_latency_samples.fetch_add(1, Ordering::Relaxed);
    }
}

/// One histogram shard: the latency distributions of an entry, recorded on
/// measured acquisitions/releases only.
#[derive(Debug, Default)]
struct HistogramShard {
    lock_latency: AtomicLatencyHistogram,
    cs_latency: AtomicLatencyHistogram,
}

/// The full sharded statistics of one profiled entry (~5 KiB; allocated
/// lazily, only for entries that see profile-mode traffic).
#[derive(Debug, Default)]
pub(crate) struct ProfileShards {
    slots: [CachePadded<ShardSlot>; PROFILE_SHARDS],
    hists: [HistogramShard; HISTOGRAM_SHARDS],
}

impl ProfileShards {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The calling thread's slot.
    #[inline]
    pub(crate) fn slot(&self) -> &ShardSlot {
        &self.slots[ThreadId::current().as_usize() & (PROFILE_SHARDS - 1)]
    }

    /// The calling thread's histogram shard.
    #[inline]
    fn hist(&self) -> &HistogramShard {
        &self.hists[ThreadId::current().as_usize() & (HISTOGRAM_SHARDS - 1)]
    }

    /// Records a measured acquisition latency into the distribution.
    #[inline]
    pub(crate) fn record_lock_latency_hist(&self, cycles: u64) {
        self.hist().lock_latency.record(cycles);
    }

    /// Records a measured critical-section latency into the distribution.
    #[inline]
    pub(crate) fn record_cs_latency_hist(&self, cycles: u64) {
        self.hist().cs_latency.record(cycles);
    }

    /// Folds the sharded acquisition-latency histograms into one merged
    /// distribution (same racy-snapshot semantics as [`Self::totals`]).
    pub(crate) fn lock_latency_histogram(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.hists {
            shard.lock_latency.fold_into(&mut merged);
        }
        merged
    }

    /// Folds the sharded critical-section-latency histograms into one
    /// merged distribution.
    pub(crate) fn cs_latency_histogram(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.hists {
            shard.cs_latency.fold_into(&mut merged);
        }
        merged
    }

    /// Folds every shard into plain totals. Concurrent updates may or may
    /// not be included — the same snapshot semantics the unsharded counters
    /// had.
    pub(crate) fn totals(&self) -> ProfileTotals {
        let mut totals = ProfileTotals::default();
        for slot in &self.slots {
            totals.acquisitions += slot.acquisitions.load(Ordering::Relaxed);
            totals.queue_total += slot.queue_total.load(Ordering::Relaxed);
            totals.queue_samples += slot.queue_samples.load(Ordering::Relaxed);
            totals.lock_latency_total += slot.lock_latency_total.load(Ordering::Relaxed);
            totals.lock_latency_samples += slot.lock_latency_samples.load(Ordering::Relaxed);
            totals.cs_latency_total += slot.cs_latency_total.load(Ordering::Relaxed);
            totals.cs_latency_samples += slot.cs_latency_samples.load(Ordering::Relaxed);
        }
        totals
    }
}

/// Folded profiling counters of one entry (shards + the entry's base
/// `LockStats`, which debug mode still writes).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ProfileTotals {
    pub(crate) acquisitions: u64,
    pub(crate) queue_total: u64,
    pub(crate) queue_samples: u64,
    pub(crate) lock_latency_total: u64,
    pub(crate) lock_latency_samples: u64,
    pub(crate) cs_latency_total: u64,
    pub(crate) cs_latency_samples: u64,
}

impl ProfileTotals {
    fn average(total: u64, samples: u64) -> f64 {
        if samples == 0 {
            0.0
        } else {
            total as f64 / samples as f64
        }
    }

    pub(crate) fn avg_queue(&self) -> f64 {
        Self::average(self.queue_total, self.queue_samples)
    }

    pub(crate) fn avg_lock_latency(&self) -> f64 {
        Self::average(self.lock_latency_total, self.lock_latency_samples)
    }

    pub(crate) fn avg_cs_latency(&self) -> f64 {
        Self::average(self.cs_latency_total, self.cs_latency_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn totals_fold_across_threads_without_losing_counts() {
        let shards = Arc::new(ProfileShards::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let shards = Arc::clone(&shards);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        let slot = shards.slot();
                        slot.record_acquisition();
                        slot.record_queue_sample(2);
                        slot.record_lock_latency(10);
                        slot.record_cs_latency(30);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let totals = shards.totals();
        assert_eq!(totals.acquisitions, 80_000);
        assert_eq!(totals.queue_samples, 80_000);
        assert!((totals.avg_queue() - 2.0).abs() < 1e-9);
        assert!((totals.avg_lock_latency() - 10.0).abs() < 1e-9);
        assert!((totals.avg_cs_latency() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn latency_histograms_merge_across_shards() {
        let shards = Arc::new(ProfileShards::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let shards = Arc::clone(&shards);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        shards.record_lock_latency_hist(100 << i);
                        shards.record_cs_latency_hist(10);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let lock = shards.lock_latency_histogram();
        assert_eq!(lock.count(), 4_000);
        assert_eq!(lock.min(), 100);
        assert_eq!(lock.max(), 800);
        let cs = shards.cs_latency_histogram();
        assert_eq!(cs.count(), 4_000);
        assert!(cs.p999() >= 10);
    }

    #[test]
    fn empty_histograms_merge_empty() {
        let shards = ProfileShards::new();
        assert!(shards.lock_latency_histogram().is_empty());
        assert!(shards.cs_latency_histogram().is_empty());
    }

    #[test]
    fn empty_totals_average_to_zero() {
        let totals = ProfileShards::new().totals();
        assert_eq!(totals.avg_queue(), 0.0);
        assert_eq!(totals.avg_lock_latency(), 0.0);
        assert_eq!(totals.avg_cs_latency(), 0.0);
    }
}
