//! Runtime telemetry snapshots (ROADMAP item 5, observability half).
//!
//! A [`TelemetrySnapshot`] captures, at one moment, everything the locking
//! middleware knows about itself: per-lock profiles with full latency
//! *distributions* (p50/p99/p999, not just averages), lock-cache hit rates,
//! parking-lot occupancy and growth, Auto backend migrations, cohort
//! handoffs, GLK mode transitions and deadlock-detector activity. Snapshots
//! are cheap (relaxed reads plus one table walk), export themselves as JSON
//! ([`TelemetrySnapshot::to_json`]) or human text (`Display`), and can be
//! published periodically from a background thread
//! ([`GlsService::spawn_telemetry_publisher`]).
//!
//! Scope: the per-lock profiles, mode-transition totals and deadlock
//! counters are **service-scoped** (they come from this service's entries
//! and debug state); the lock-cache aggregate, parking-lot, cohort-handoff
//! and backend-migration counters are **process-wide** (those subsystems
//! are shared by every service in the process). A snapshot labels itself
//! accordingly rather than pretending one service owns the whole process.
//!
//! [`GlsService::spawn_telemetry_publisher`]: crate::GlsService::spawn_telemetry_publisher

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gls_locks::{CohortStats, LockKind, ParkingLotStats};
use gls_runtime::LatencyHistogram;

use crate::glk::AutoMigrationStats;

use super::cache::CacheStats;
use super::config::GlsMode;

/// Summary of one latency distribution, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of measured samples.
    pub count: u64,
    /// Exact mean of the samples.
    pub mean: f64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample (0 if empty).
    pub max: u64,
    /// Median (upper bucket bound).
    pub p50: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
    /// 99.9th percentile (upper bucket bound).
    pub p999: u64,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    pub fn of(hist: &LatencyHistogram) -> Self {
        Self {
            count: hist.count(),
            mean: hist.mean(),
            min: hist.min(),
            max: hist.max(),
            p50: hist.p50(),
            p99: hist.p99(),
            p999: hist.p999(),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
            self.count,
            json_f64(self.mean),
            self.min,
            self.max,
            self.p50,
            self.p99,
            self.p999
        )
    }
}

/// Telemetry for one lock object: the averages the profiler always had,
/// plus the latency distributions and the adaptive-mode transition count.
#[derive(Debug, Clone, PartialEq)]
pub struct LockTelemetry {
    /// The address this lock was created for.
    pub addr: usize,
    /// Lock algorithm behind this address.
    pub algorithm: LockKind,
    /// Completed acquisitions (exact — sampling never thins this).
    pub acquisitions: u64,
    /// Average queuing behind the lock at (measured) acquisition time.
    pub avg_queue: f64,
    /// Average lock-acquisition latency, in cycles.
    pub avg_lock_latency: f64,
    /// Average critical-section duration, in cycles.
    pub avg_cs_latency: f64,
    /// Acquisition-latency distribution of measured acquisitions.
    pub lock_latency: HistogramSummary,
    /// Critical-section-latency distribution of measured sections.
    pub cs_latency: HistogramSummary,
    /// Mode transitions this lock performed (adaptive entries only).
    pub transitions: u64,
}

impl LockTelemetry {
    fn to_json(&self) -> String {
        format!(
            "{{\"addr\":{},\"algorithm\":\"{}\",\"acquisitions\":{},\"avg_queue\":{},\
             \"avg_lock_latency\":{},\"avg_cs_latency\":{},\"lock_latency\":{},\
             \"cs_latency\":{},\"transitions\":{}}}",
            self.addr,
            self.algorithm,
            self.acquisitions,
            json_f64(self.avg_queue),
            json_f64(self.avg_lock_latency),
            json_f64(self.avg_cs_latency),
            self.lock_latency.to_json(),
            self.cs_latency.to_json(),
            self.transitions
        )
    }
}

/// Deadlock-detector activity (debug mode; zeros otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadlockTelemetry {
    /// Candidate cycles produced by detection walks (confirmed + phantom).
    pub candidates: u64,
    /// Confirmed deadlocks (each dumped a flight-recorder trail).
    pub confirmed: u64,
}

/// A point-in-time view of the middleware's internal state. Build one with
/// [`GlsService::telemetry_snapshot`](crate::GlsService::telemetry_snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Operating mode of the service the snapshot was taken from.
    pub mode: GlsMode,
    /// Profile-mode sampling budget (samples/sec/thread), `None` = full
    /// measurement.
    pub sampling_budget: Option<u64>,
    /// Live lock objects in the service's table.
    pub lock_count: usize,
    /// Freed-but-parked (resurrectable) lock objects.
    pub retired_count: usize,
    /// Per-lock telemetry, most contended first (service-scoped).
    pub locks: Vec<LockTelemetry>,
    /// Lock-cache counters aggregated across threads (process-wide; exited
    /// or explicitly flushed threads plus the calling thread).
    pub cache: CacheStats,
    /// Shared parking-lot occupancy and growth (process-wide).
    pub parking_lot: ParkingLotStats,
    /// Cohort handoff/bypass counters of the word-sized locks
    /// (process-wide).
    pub cohort: CohortStats,
    /// Auto blocking-backend migration counters (process-wide).
    pub auto_migrations: AutoMigrationStats,
    /// Total GLK/GLK-RW mode transitions across this service's entries.
    pub glk_transitions: u64,
    /// Deadlock-detector activity (service-scoped, debug mode).
    pub deadlock: DeadlockTelemetry,
}

impl TelemetrySnapshot {
    /// Serializes the snapshot as a single JSON object (schema version 1;
    /// validated in CI by `scripts/validate_snapshot_schema.py`).
    pub fn to_json(&self) -> String {
        let locks: Vec<String> = self.locks.iter().map(LockTelemetry::to_json).collect();
        format!(
            "{{\"version\":1,\"mode\":\"{}\",\"sampling_budget\":{},\"lock_count\":{},\
             \"retired_count\":{},\"locks\":[{}],\
             \"cache\":{{\"hits\":{},\"misses\":{},\"invalidations\":{},\"hit_rate\":{}}},\
             \"parking_lot\":{{\"buckets\":{},\"parked\":{},\"growth_events\":{},\
             \"requeued_waiters\":{}}},\
             \"cohort\":{{\"handoffs\":{},\"head_bypasses\":{}}},\
             \"auto_migrations\":{{\"to_parking\":{},\"to_per_lock\":{}}},\
             \"glk_transitions\":{},\
             \"deadlock\":{{\"candidates\":{},\"confirmed\":{}}}}}",
            mode_str(self.mode),
            match self.sampling_budget {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            },
            self.lock_count,
            self.retired_count,
            locks.join(","),
            self.cache.hits,
            self.cache.misses,
            self.cache.invalidations,
            json_f64(self.cache.hit_rate()),
            self.parking_lot.buckets,
            self.parking_lot.parked,
            self.parking_lot.growth_events,
            self.parking_lot.requeued_waiters,
            self.cohort.handoffs,
            self.cohort.head_bypasses,
            self.auto_migrations.to_parking,
            self.auto_migrations.to_per_lock,
            self.glk_transitions,
            self.deadlock.candidates,
            self.deadlock.confirmed
        )
    }
}

fn mode_str(mode: GlsMode) -> &'static str {
    match mode {
        GlsMode::Normal => "normal",
        GlsMode::Debug => "debug",
        GlsMode::Profile => "profile",
    }
}

/// JSON-safe float: `NaN`/`Inf` have no JSON representation, and a
/// telemetry exporter must never emit an unparseable document because one
/// average divided by zero.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[GLS telemetry] mode={} sampling={} locks={} (+{} retired) \
             cache: {} hits / {} misses ({:.1}% hit rate, {} invalidations)",
            mode_str(self.mode),
            match self.sampling_budget {
                Some(b) => format!("{b}/s"),
                None => "full".to_string(),
            },
            self.lock_count,
            self.retired_count,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.invalidations,
        )?;
        writeln!(
            f,
            "[GLS telemetry] parking lot: {} buckets, {} parked, {} growths, {} requeues \
             | cohort: {} handoffs ({} bypasses) | auto migrations: {}→lot {}→per-lock \
             | glk transitions: {} | deadlock: {} candidates, {} confirmed",
            self.parking_lot.buckets,
            self.parking_lot.parked,
            self.parking_lot.growth_events,
            self.parking_lot.requeued_waiters,
            self.cohort.handoffs,
            self.cohort.head_bypasses,
            self.auto_migrations.to_parking,
            self.auto_migrations.to_per_lock,
            self.glk_transitions,
            self.deadlock.candidates,
            self.deadlock.confirmed,
        )?;
        for lock in &self.locks {
            writeln!(
                f,
                "[GLS telemetry]   queue: {:.2} | l-lat: {:.0} (p50 {} p99 {} p999 {}) | \
                 cs-lat: {:.0} (p50 {} p99 {} p999 {}) | acq: {} @ ({:#x}:{})",
                lock.avg_queue,
                lock.avg_lock_latency,
                lock.lock_latency.p50,
                lock.lock_latency.p99,
                lock.lock_latency.p999,
                lock.avg_cs_latency,
                lock.cs_latency.p50,
                lock.cs_latency.p99,
                lock.cs_latency.p999,
                lock.acquisitions,
                lock.addr,
                lock.algorithm,
            )?;
        }
        Ok(())
    }
}

/// Handle to a background telemetry publisher thread
/// ([`GlsService::spawn_telemetry_publisher`]). Dropping the handle stops
/// the thread and joins it.
///
/// [`GlsService::spawn_telemetry_publisher`]: crate::GlsService::spawn_telemetry_publisher
#[derive(Debug)]
pub struct TelemetryPublisher {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryPublisher {
    pub(crate) fn spawn(
        service: Arc<crate::GlsService>,
        interval: Duration,
        mut sink: impl FnMut(&TelemetrySnapshot) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gls-telemetry".into())
            .spawn(move || {
                // Sleep in short slices so a stop request is honored
                // promptly even under long publish intervals. Plain sleep
                // (not gls_sync): the publisher is telemetry, outside the
                // lock protocols the model explorer checks.
                const SLICE: Duration = Duration::from_millis(20);
                loop {
                    let mut remaining = interval;
                    while !remaining.is_zero() {
                        if stop_flag.load(Ordering::Acquire) {
                            return;
                        }
                        let nap = remaining.min(SLICE);
                        #[allow(clippy::disallowed_methods)]
                        std::thread::sleep(nap);
                        remaining = remaining.saturating_sub(nap);
                    }
                    if stop_flag.load(Ordering::Acquire) {
                        return;
                    }
                    sink(&service.telemetry_snapshot());
                }
            })
            .expect("spawning the telemetry publisher thread");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the publisher and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetryPublisher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        TelemetrySnapshot {
            mode: GlsMode::Profile,
            sampling_budget: Some(5_000),
            lock_count: 1,
            retired_count: 0,
            locks: vec![LockTelemetry {
                addr: 0x1000,
                algorithm: LockKind::Glk,
                acquisitions: 42,
                avg_queue: 1.5,
                avg_lock_latency: 100.0,
                avg_cs_latency: 200.0,
                lock_latency: HistogramSummary {
                    count: 42,
                    mean: 100.0,
                    min: 50,
                    max: 400,
                    p50: 127,
                    p99: 511,
                    p999: 511,
                },
                cs_latency: HistogramSummary::default(),
                transitions: 2,
            }],
            cache: CacheStats {
                hits: 90,
                misses: 10,
                invalidations: 1,
            },
            parking_lot: ParkingLotStats {
                buckets: 32,
                parked: 3,
                growth_events: 1,
                requeued_waiters: 4,
            },
            cohort: CohortStats {
                handoffs: 7,
                head_bypasses: 2,
            },
            auto_migrations: AutoMigrationStats {
                to_parking: 1,
                to_per_lock: 1,
            },
            glk_transitions: 2,
            deadlock: DeadlockTelemetry {
                candidates: 0,
                confirmed: 0,
            },
        }
    }

    #[test]
    fn json_has_every_section() {
        let json = sample_snapshot().to_json();
        for key in [
            "\"version\":1",
            "\"mode\":\"profile\"",
            "\"sampling_budget\":5000",
            "\"locks\":[{",
            "\"lock_latency\":{",
            "\"p999\":",
            "\"cache\":{",
            "\"parking_lot\":{",
            "\"cohort\":{",
            "\"auto_migrations\":{",
            "\"glk_transitions\":2",
            "\"deadlock\":{",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn json_null_budget_for_full_measurement() {
        let mut snap = sample_snapshot();
        snap.sampling_budget = None;
        assert!(snap.to_json().contains("\"sampling_budget\":null"));
    }

    #[test]
    fn json_guards_non_finite_floats() {
        let mut snap = sample_snapshot();
        snap.locks[0].avg_queue = f64::NAN;
        snap.locks[0].avg_lock_latency = f64::INFINITY;
        let json = snap.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn display_is_human_readable() {
        let text = sample_snapshot().to_string();
        assert!(text.contains("mode=profile"));
        assert!(text.contains("sampling=5000/s"));
        assert!(text.contains("p99"));
        assert!(text.contains("0x1000"));
    }
}
