//! GLS condition variables, built on the address-keyed parking lot.
//!
//! Real GLS clients (the memcached scenario's background maintenance
//! thread, producer/consumer pipelines) block on *conditions*, not just on
//! locks. [`GlsCondvar`] provides `wait`/`wait_timeout`/`notify_one`/
//! `notify_all` on top of any GLS-managed mutex: the waiter enqueues itself
//! in the [`ParkingLot`](gls_locks::ParkingLot) under the condvar's own
//! address, releases the mutex *after* enqueueing (so a notifier that
//! acquires the mutex afterwards is guaranteed to find it), sleeps, and
//! re-acquires the mutex before returning.
//!
//! # Debug-mode integration
//!
//! A condvar wait must not confuse the deadlock detector. Two properties
//! guarantee it cannot produce phantom reports:
//!
//! * the mutex is released through the normal service path before the
//!   thread sleeps, so the sleeper owns nothing while parked, and
//! * no waits-for edge is published for the park itself — a condvar wait is
//!   resolved by a *signal*, not by a lock release, so it does not belong in
//!   the owner/waits-for graph. Only the re-acquisition after the wake
//!   registers (real) waits-for edges, through the ordinary debug path.
//!
//! # Spurious wakeups
//!
//! As with every condition variable, `wait` may return without a matching
//! notification (e.g. after [`GlsCondvar::notify_all`] raced with a
//! predicate change). Always wait in a loop re-checking the predicate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use gls_locks::park::{DEFAULT_PARK_TOKEN, DEFAULT_UNPARK_TOKEN};
use gls_locks::{ParkResult, ParkingLot};

/// How a condvar wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// A notification (or a spurious wakeup) ended the wait.
    Notified,
    /// The timeout elapsed first.
    TimedOut,
}

impl WaitOutcome {
    /// Whether the wait ended by timeout.
    pub fn timed_out(self) -> bool {
        self == WaitOutcome::TimedOut
    }
}

/// A condition variable whose waiters park in the shared parking lot,
/// keyed by the condvar's address.
///
/// The condvar itself carries no wait-queue state — like
/// [`FutexLock`](gls_locks::FutexLock), its identity is its address — only
/// diagnostic counters. Pair it with a GLS-managed mutex through
/// [`GlsService::wait`](super::GlsService::wait) /
/// [`GlsService::wait_timeout`](super::GlsService::wait_timeout), or with
/// any lock at all through [`GlsCondvar::wait_with`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use gls::{GlsCondvar, GlsService};
///
/// let service = Arc::new(GlsService::new());
/// let ready = Arc::new(GlsCondvar::new());
/// let flag = 0u32; // the mutex identity (any address works)
/// let addr = GlsService::address_of(&flag);
///
/// let waiter = {
///     let (service, ready) = (Arc::clone(&service), Arc::clone(&ready));
///     std::thread::spawn(move || {
///         service.lock_addr(addr).unwrap();
///         // Real code loops over a predicate here.
///         service.wait_addr(&ready, addr).unwrap();
///         service.unlock_addr(addr).unwrap();
///     })
/// };
/// while ready.waiters() == 0 {
///     std::thread::yield_now();
/// }
/// service.lock_addr(addr).unwrap();
/// service.unlock_addr(addr).unwrap();
/// ready.notify_one();
/// waiter.join().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct GlsCondvar {
    /// Threads currently parked on this condvar.
    waiters: AtomicU64,
    /// Completed waits (diagnostics; surfaced next to profiler reports).
    waits: AtomicU64,
    /// Waits that ended by timeout.
    timeouts: AtomicU64,
    /// Notifications delivered to at least one waiter.
    notifies: AtomicU64,
}

impl GlsCondvar {
    /// Creates a condition variable with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The parking-lot key: the condvar's own address.
    fn addr(&self) -> usize {
        self as *const GlsCondvar as usize
    }

    /// Number of threads currently parked on this condvar (racy;
    /// diagnostics and tests).
    pub fn waiters(&self) -> u64 {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Completed waits so far.
    pub fn waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    /// Waits that ended by timeout so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Notifications that woke at least one waiter.
    pub fn notifies(&self) -> u64 {
        self.notifies.load(Ordering::Relaxed)
    }

    /// The low-level wait: enqueue under the condvar's address, run
    /// `unlock` (release the associated mutex) once enqueued, sleep, then
    /// run `relock` before returning.
    ///
    /// This is what [`GlsService::wait`](super::GlsService::wait) and the
    /// system harnesses build on; use it directly when the associated mutex
    /// is not GLS-managed (any `unlock`/`relock` pair works — the condvar
    /// only needs the release to happen after the enqueue).
    pub fn wait_with(
        &self,
        unlock: impl FnOnce(),
        relock: impl FnOnce(),
        timeout: Option<Duration>,
    ) -> WaitOutcome {
        let result = ParkingLot::global().park(
            self.addr(),
            DEFAULT_PARK_TOKEN,
            || {
                // Counted under the bucket lock, atomically with the
                // enqueue: once `waiters()` reports this thread, a
                // notification is guaranteed to find it parked.
                self.waiters.fetch_add(1, Ordering::Relaxed);
                true
            },
            unlock,
            timeout,
        );
        self.waiters.fetch_sub(1, Ordering::Relaxed);
        self.waits.fetch_add(1, Ordering::Relaxed);
        relock();
        match result {
            ParkResult::TimedOut => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                WaitOutcome::TimedOut
            }
            _ => WaitOutcome::Notified,
        }
    }

    /// Wakes the longest-waiting thread, if any; returns whether one was
    /// woken.
    pub fn notify_one(&self) -> bool {
        let result = ParkingLot::global().unpark_one(self.addr(), DEFAULT_UNPARK_TOKEN, |_| {});
        if result.unparked > 0 {
            self.notifies.fetch_add(1, Ordering::Relaxed);
        }
        result.unparked > 0
    }

    /// Wakes every waiting thread; returns how many were woken.
    pub fn notify_all(&self) -> usize {
        let woken = ParkingLot::global().unpark_all(self.addr(), DEFAULT_UNPARK_TOKEN);
        if woken > 0 {
            self.notifies.fetch_add(1, Ordering::Relaxed);
        }
        woken
    }

    /// Notifies the longest-waiting thread, **requeueing** it onto
    /// `mutex_park_addr` — the parking address of the futex-backed mutex
    /// associated with the wait — when that mutex is currently held,
    /// instead of waking it only to have it immediately block on the mutex
    /// (the wake-then-block hop). The decision is made under the parking
    /// -lot bucket locks: if the mutex is held, its parked bit is raised
    /// atomically with the move
    /// ([`gls_locks::futex_mutex::prepare_direct_requeue`]), so the
    /// holder's release is guaranteed to wake the requeued waiter; if the
    /// mutex is free, the waiter is woken normally and acquires it without
    /// a hop.
    ///
    /// Returns whether a waiter was notified (woken or requeued). Prefer
    /// [`GlsService::notify_one`](super::GlsService::notify_one), which
    /// resolves the right park address (and falls back to
    /// [`GlsCondvar::notify_one`] for non-futex-backed mutexes).
    ///
    /// `revalidate` runs under the bucket locks, just before the requeue
    /// commits: it must re-check that `mutex_park_addr` is *still* the
    /// address the mutex's release path will unpark (an adaptive mutex may
    /// have migrated its blocking backend, or left its blocking mode,
    /// since the caller resolved the address). On `false` the waiter is
    /// woken instead of requeued.
    ///
    /// # Safety
    ///
    /// `mutex_park_addr` must be the parking address of a live
    /// [`FutexLock`](gls_locks::FutexLock) word that remains valid for the
    /// duration of the call (GLS lock entries are never reclaimed while
    /// their service lives, so addresses from the entry API qualify).
    pub unsafe fn notify_one_requeue(
        &self,
        mutex_park_addr: usize,
        revalidate: impl FnOnce() -> bool,
    ) -> bool {
        let result = ParkingLot::global().unpark_requeue_with(
            self.addr(),
            mutex_park_addr,
            || {
                // SAFETY: forwarded from this function's contract; the
                // decide closure runs under the bucket lock of
                // `mutex_park_addr`, as `prepare_direct_requeue` requires.
                if revalidate()
                    && unsafe { gls_locks::futex_mutex::prepare_direct_requeue(mutex_park_addr) }
                {
                    (0, 1)
                } else {
                    (1, 0)
                }
            },
            DEFAULT_UNPARK_TOKEN,
            |_| {},
        );
        let notified = result.unparked + result.requeued > 0;
        if notified {
            self.notifies.fetch_add(1, Ordering::Relaxed);
        }
        notified
    }

    /// Notifies every waiting thread, requeueing them onto
    /// `mutex_park_addr` when that futex-backed mutex is held (they are
    /// then woken one at a time by successive releases of the mutex — the
    /// classic wait-morphing broadcast, with no thundering herd on a held
    /// mutex). When the mutex is free, one waiter is woken to take it and
    /// the rest are requeued behind it. Returns how many waiters were
    /// notified (woken or requeued).
    ///
    /// # Safety
    ///
    /// Same contract as [`GlsCondvar::notify_one_requeue`].
    pub unsafe fn notify_all_requeue(
        &self,
        mutex_park_addr: usize,
        revalidate: impl FnOnce() -> bool,
    ) -> usize {
        let mutex_held = std::cell::Cell::new(false);
        let result = ParkingLot::global().unpark_requeue_with(
            self.addr(),
            mutex_park_addr,
            || {
                // The mutex may have stopped parking under this address
                // (backend migration, mode change) since the caller
                // resolved it: wake everyone instead of requeueing onto a
                // word whose release path no longer runs.
                if !revalidate() {
                    return (usize::MAX, 0);
                }
                // SAFETY: forwarded from this function's contract.
                let held =
                    unsafe { gls_locks::futex_mutex::prepare_direct_requeue(mutex_park_addr) };
                mutex_held.set(held);
                if held {
                    (0, usize::MAX)
                } else {
                    (1, usize::MAX)
                }
            },
            DEFAULT_UNPARK_TOKEN,
            |result| {
                // Waiters were requeued behind a *free* mutex (the one
                // woken waiter is about to take it): raise its parked bit
                // so every subsequent release takes the slow path and wakes
                // the next one — without it the fast-path unlock would
                // strand them.
                if !mutex_held.get() && result.requeued > 0 {
                    // SAFETY: forwarded from this function's contract; the
                    // callback still holds the bucket locks.
                    unsafe {
                        gls_locks::futex_mutex::mark_parked_for_requeue(mutex_park_addr);
                    }
                }
            },
        );
        let notified = result.unparked + result.requeued;
        if notified > 0 {
            self.notifies.fetch_add(1, Ordering::Relaxed);
        }
        notified
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    #[test]
    fn wait_with_releases_and_reacquires() {
        let cv = Arc::new(GlsCondvar::new());
        let mutex = Arc::new(Mutex::new(false));
        let waiter = {
            let cv = Arc::clone(&cv);
            let mutex = Arc::clone(&mutex);
            std::thread::spawn(move || {
                let guard = std::cell::RefCell::new(Some(mutex.lock().unwrap()));
                let outcome = cv.wait_with(
                    || drop(guard.borrow_mut().take()),
                    || *guard.borrow_mut() = Some(mutex.lock().unwrap()),
                    None,
                );
                assert_eq!(outcome, WaitOutcome::Notified);
                let relocked = guard.borrow();
                assert!(**relocked.as_ref().unwrap(), "predicate set before notify");
            })
        };
        while cv.waiters() == 0 {
            std::thread::yield_now();
        }
        // The waiter parked and released the mutex: we can take it.
        *mutex.lock().unwrap() = true;
        assert!(cv.notify_one());
        waiter.join().unwrap();
        assert_eq!(cv.waits(), 1);
        assert_eq!(cv.notifies(), 1);
        assert_eq!(cv.waiters(), 0);
    }

    #[test]
    fn wait_timeout_expires_without_notifier() {
        let cv = GlsCondvar::new();
        let relocked = AtomicBool::new(false);
        let start = Instant::now();
        let outcome = cv.wait_with(
            || {},
            || relocked.store(true, Ordering::Relaxed),
            Some(Duration::from_millis(40)),
        );
        assert!(outcome.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(40));
        assert!(relocked.load(Ordering::Relaxed), "relock runs on timeout");
        assert_eq!(cv.timeouts(), 1);
        assert_eq!(cv.waiters(), 0);
    }

    #[test]
    fn notify_without_waiters_reports_nobody() {
        let cv = GlsCondvar::new();
        assert!(!cv.notify_one());
        assert_eq!(cv.notify_all(), 0);
        assert_eq!(cv.notifies(), 0);
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let cv = Arc::new(GlsCondvar::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cv = Arc::clone(&cv);
                std::thread::spawn(move || cv.wait_with(|| {}, || {}, None))
            })
            .collect();
        while cv.waiters() < 4 {
            std::thread::yield_now();
        }
        assert_eq!(cv.notify_all(), 4);
        for h in handles {
            assert_eq!(h.join().unwrap(), WaitOutcome::Notified);
        }
    }
}
