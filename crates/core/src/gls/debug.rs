//! Debug-mode state: waits-for tracking, issue log and deadlock detection.
//!
//! GLS implements deadlock detection by augmenting the hash table "with a
//! waiting array that indicates which lock each thread is waiting on" (§4.2).
//! A thread about to block behind a lock first walks owner → waits-for →
//! owner relationships; a cycle that returns to the invoking thread is a
//! candidate deadlock, confirmed by re-validating every edge after the
//! configured threshold (a real deadlock is frozen; phantom cycles assembled
//! from a non-atomic walk dissolve).
//!
//! Reader-writer locks make the waits-for graph a multigraph: a lock can
//! have several shared holders, and a waiting writer waits on *all* of them,
//! so the walk is a depth-first search over every holder rather than a
//! single owner chain.
//!
//! All bookkeeping uses `SeqCst`: when two threads close a cycle
//! simultaneously, each publishes its waits-for edge before walking, and the
//! total order guarantees at least one of them observes the other's edge —
//! with weaker orderings both could miss and the deadlock would go
//! unreported.

// The issue log, confirmation deadlines and flight-recorder trails are
// cold reporting bookkeeping, kept on raw std sync (see clippy.toml). The
// protocol state itself — waiting records and epochs — goes through the
// gls_sync facade so the model explorer can schedule around every
// publish/walk/confirm step.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::collections::HashMap;
use std::sync::Mutex as StdMutex;
use std::time::{Duration, Instant};

use gls_sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use gls_runtime::thread_id::MAX_THREADS;
use gls_runtime::{FlightEvent, ThreadId};

use crate::error::GlsError;

/// The flight-recorder trail dumped when the deadlock detector confirmed a
/// cycle: the confirming thread's most recent lock events (slow-path
/// acquisitions, parks, handoffs, mode transitions …), turning "we
/// deadlocked" into a replayable event sequence. Collected automatically;
/// retrieve via [`GlsService::deadlock_trails`](crate::GlsService::deadlock_trails).
#[derive(Debug, Clone)]
pub struct DeadlockTrail {
    /// The thread that confirmed the cycle (whose ring was dumped).
    pub thread: ThreadId,
    /// The confirmed waits-for cycle, as reported in the issue.
    pub cycle: Vec<(ThreadId, usize)>,
    /// The thread's retained flight events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// A candidate deadlock: the waits-for cycle plus the epoch at which every
/// participating thread's waiting record was observed. Confirmation requires
/// the records to still carry the same epochs — i.e. every thread has been
/// waiting continuously since the walk.
#[derive(Debug, Clone)]
pub(crate) struct CycleCandidate {
    /// `(thread, address the thread waits on)`, starting and ending with the
    /// detecting thread.
    pub(crate) cycle: Vec<(ThreadId, usize)>,
    /// The waiting epoch observed for each entry of `cycle`.
    epochs: Vec<u64>,
}

impl CycleCandidate {
    /// A rotation-invariant identity for the cycle, so the same deadlock
    /// detected by different participating threads (each starting the walk
    /// at itself) coalesces onto one confirmation deadline. Hashes the
    /// `(thread, addr)` edges rotated to start at the minimum element,
    /// dropping the duplicated closing entry.
    pub(crate) fn key(&self) -> u64 {
        let edges = &self.cycle[..self.cycle.len().saturating_sub(1)];
        if edges.is_empty() {
            return 0;
        }
        let start = edges
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, a))| (t.as_u32(), a))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for i in 0..edges.len() {
            let (thread, addr) = edges[(start + i) % edges.len()];
            for word in [thread.as_u32() as u64, addr as u64] {
                hash ^= word;
                hash = hash.wrapping_mul(0x1000_0000_01b3); // FNV prime
            }
        }
        hash
    }
}

/// Debug bookkeeping shared by all operations of one service instance.
#[derive(Debug)]
pub(crate) struct DebugState {
    /// `waiting[tid]` = address the thread is currently waiting on (0: none).
    waiting: Box<[AtomicUsize]>,
    /// Bumped on every `set_waiting`/`clear_waiting` of the thread, so a
    /// cycle candidate can later prove the thread never stopped waiting.
    epochs: Box<[AtomicU64]>,
    /// Detected issues, in detection order.
    issues: StdMutex<Vec<GlsError>>,
    /// Total candidate cycles produced by detection walks (confirmed or
    /// phantom). Exported so operators can see adversarial churn: a high
    /// candidate rate with no confirmed deadlock means the workload keeps
    /// assembling phantom cycles and paying confirmation waits.
    candidates: AtomicU64,
    /// In-flight confirmations keyed by cycle identity: every thread that
    /// detects the same cycle shares one deadline instead of each starting
    /// its own full grace period, so N participants (or repeated
    /// re-detections under churn) confirm in one period of wall time
    /// instead of stacking them.
    confirmations: StdMutex<HashMap<u64, Instant>>,
    /// Flight-recorder trails of confirmed deadlocks, in confirmation order.
    trails: StdMutex<Vec<DeadlockTrail>>,
}

impl DebugState {
    pub(crate) fn new() -> Self {
        Self {
            waiting: (0..MAX_THREADS).map(|_| AtomicUsize::new(0)).collect(),
            epochs: (0..MAX_THREADS).map(|_| AtomicU64::new(0)).collect(),
            issues: StdMutex::new(Vec::new()),
            candidates: AtomicU64::new(0),
            confirmations: StdMutex::new(HashMap::new()),
            trails: StdMutex::new(Vec::new()),
        }
    }

    /// Stores the flight-recorder trail of a just-confirmed deadlock.
    pub(crate) fn record_trail(&self, trail: DeadlockTrail) {
        if let Ok(mut trails) = self.trails.lock() {
            trails.push(trail);
        }
    }

    /// A snapshot of the trails dumped by confirmed deadlocks so far.
    pub(crate) fn trails(&self) -> Vec<DeadlockTrail> {
        self.trails.lock().map(|t| t.clone()).unwrap_or_default()
    }

    /// Total candidate cycles produced so far (the candidate-rate counter).
    pub(crate) fn candidate_count(&self) -> u64 {
        self.candidates.load(Ordering::Relaxed)
    }

    /// Registers `candidate` for confirmation and returns how long the
    /// caller should wait before re-validating: the full grace period for
    /// the first detector of this cycle, the *remainder* of the shared
    /// deadline for every other thread that detects the same cycle while a
    /// confirmation is in flight (possibly zero). This coalescing bounds
    /// total confirmation latency per cycle at one grace period no matter
    /// how many threads participate or how often churn re-detects it.
    pub(crate) fn confirmation_wait(
        &self,
        candidate: &CycleCandidate,
        grace: Duration,
    ) -> Duration {
        let key = candidate.key();
        let now = Instant::now();
        let Ok(mut confirmations) = self.confirmations.lock() else {
            return grace;
        };
        let deadline = *confirmations.entry(key).or_insert_with(|| now + grace);
        deadline.saturating_duration_since(now)
    }

    /// Ends the in-flight confirmation of `candidate` (verdict reached:
    /// reported as a real deadlock, dissolved as a phantom, or the lock was
    /// acquired meanwhile). A later re-detection of the same cycle starts a
    /// fresh grace period.
    pub(crate) fn finish_confirmation(&self, candidate: &CycleCandidate) {
        if let Ok(mut confirmations) = self.confirmations.lock() {
            confirmations.remove(&candidate.key());
        }
    }

    /// Records that `thread` is waiting on `addr`.
    pub(crate) fn set_waiting(&self, thread: ThreadId, addr: usize) {
        self.epochs[thread.as_usize()].fetch_add(1, Ordering::SeqCst);
        self.waiting[thread.as_usize()].store(addr, Ordering::SeqCst);
    }

    /// Clears the waits-for record of `thread`.
    pub(crate) fn clear_waiting(&self, thread: ThreadId) {
        self.waiting[thread.as_usize()].store(0, Ordering::SeqCst);
        self.epochs[thread.as_usize()].fetch_add(1, Ordering::SeqCst);
    }

    /// The address `thread` is waiting on, if any.
    pub(crate) fn waiting_on(&self, thread: ThreadId) -> Option<usize> {
        match self.waiting[thread.as_usize()].load(Ordering::SeqCst) {
            0 => None,
            addr => Some(addr),
        }
    }

    fn epoch_of(&self, thread: ThreadId) -> u64 {
        self.epochs[thread.as_usize()].load(Ordering::SeqCst)
    }

    /// Appends an issue to the log.
    pub(crate) fn record(&self, issue: GlsError) {
        if let Ok(mut log) = self.issues.lock() {
            log.push(issue);
        }
    }

    /// A snapshot of the issues detected so far.
    pub(crate) fn issues(&self) -> Vec<GlsError> {
        self.issues.lock().map(|l| l.clone()).unwrap_or_default()
    }

    /// Clears the issue log (tests and long-running services).
    pub(crate) fn clear_issues(&self) {
        if let Ok(mut log) = self.issues.lock() {
            log.clear();
        }
    }

    /// Runs the deadlock-detection walk on behalf of `me`, which is about to
    /// wait on `wait_addr`. `holders_of` resolves every current holder of a
    /// lock address — the exclusive owner, or all shared readers of an rw
    /// entry (a waiting writer waits on all of them).
    ///
    /// Returns a candidate cycle that includes `me`, if one is found. The
    /// walk is not an atomic snapshot, so the candidate must be confirmed
    /// with [`DebugState::still_deadlocked`] after a grace period.
    pub(crate) fn detect_deadlock(
        &self,
        me: ThreadId,
        wait_addr: usize,
        holders_of: impl Fn(usize) -> Vec<ThreadId>,
    ) -> Option<CycleCandidate> {
        let mut path: Vec<(ThreadId, usize)> = vec![(me, wait_addr)];
        let mut epochs: Vec<u64> = vec![self.epoch_of(me)];
        let mut visited: Vec<ThreadId> = vec![me];
        if self.dfs(
            me,
            wait_addr,
            &holders_of,
            &mut path,
            &mut epochs,
            &mut visited,
        ) {
            path.push((me, wait_addr));
            epochs.push(epochs[0]);
            self.candidates.fetch_add(1, Ordering::Relaxed);
            return Some(CycleCandidate {
                cycle: path,
                epochs,
            });
        }
        None
    }

    /// Depth-first search for a holder chain from `addr` back to `me`.
    /// Appends the discovered waits-for edges to `path`/`epochs` and returns
    /// `true` when the cycle closes.
    fn dfs(
        &self,
        me: ThreadId,
        addr: usize,
        holders_of: &impl Fn(usize) -> Vec<ThreadId>,
        path: &mut Vec<(ThreadId, usize)>,
        epochs: &mut Vec<u64>,
        visited: &mut Vec<ThreadId>,
    ) -> bool {
        if path.len() > MAX_THREADS {
            return false;
        }
        for holder in holders_of(addr) {
            if holder == me {
                // Cycle closed: a holder of the last lock is the invoking
                // thread itself.
                return true;
            }
            if visited.contains(&holder) {
                continue;
            }
            visited.push(holder);
            let Some(next) = self.waiting_on(holder) else {
                continue;
            };
            // Capture the epoch *after* the address: if the record churns in
            // between, confirmation later fails — erring towards silence.
            let epoch = self.epoch_of(holder);
            path.push((holder, next));
            epochs.push(epoch);
            if self.dfs(me, next, holders_of, path, epochs, visited) {
                return true;
            }
            path.pop();
            epochs.pop();
        }
        false
    }

    /// Confirms a candidate cycle: every waits-for edge must still be in
    /// place and every participant must have been waiting *continuously*
    /// since the walk (same epoch). Threads frozen in a real deadlock pass
    /// this; phantom cycles assembled from stale reads do not, because any
    /// progress bumps an epoch.
    pub(crate) fn still_deadlocked(
        &self,
        candidate: &CycleCandidate,
        holders_of: impl Fn(usize) -> Vec<ThreadId>,
    ) -> bool {
        // Ownership edges first: each waited-on lock is still held by the
        // next thread in the cycle.
        for window in candidate.cycle.windows(2) {
            let (_, awaited) = window[0];
            let (holder, _) = window[1];
            if !holders_of(awaited).contains(&holder) {
                return false;
            }
        }
        // Waiting edges and epochs last: with every participant provably
        // parked since before the ownership reads above, those reads form a
        // consistent snapshot.
        for (&(thread, addr), &epoch) in candidate.cycle.iter().zip(&candidate.epochs) {
            if self.waiting_on(thread) != Some(addr) || self.epoch_of(thread) != epoch {
                return false;
            }
        }
        true
    }

    /// The historical bug [`DebugState::still_deadlocked`] fixed, re-seeded
    /// for the model suite: confirmation that checks ownership and waiting
    /// *addresses* but not epochs, so a thread that made progress and then
    /// re-waited on the same lock looks frozen and a phantom cycle gets
    /// confirmed. Only compiled for the model tests that prove the explorer
    /// catches it.
    #[cfg(gls_model)]
    pub(crate) fn still_deadlocked_no_epochs(
        &self,
        candidate: &CycleCandidate,
        holders_of: impl Fn(usize) -> Vec<ThreadId>,
    ) -> bool {
        for window in candidate.cycle.windows(2) {
            let (_, awaited) = window[0];
            let (holder, _) = window[1];
            if !holders_of(awaited).contains(&holder) {
                return false;
            }
        }
        for &(thread, addr) in candidate.cycle.iter() {
            if self.waiting_on(thread) != Some(addr) {
                return false;
            }
        }
        true
    }
}

/// Model-checker surface for the detector's publish-edge → walk → confirm
/// protocol. `DebugState` and `CycleCandidate` are crate-private (the
/// service drives them); the model tests in `crates/model/tests` need to
/// drive the same code from virtual threads, so this wrapper re-exposes
/// exactly the protocol steps, taking plain `u32` thread ids. Compiled only
/// under `--cfg gls_model`.
#[cfg(gls_model)]
pub mod model {
    use super::{CycleCandidate, DebugState};
    use gls_runtime::ThreadId;

    /// A [`DebugState`] scoped to one model execution.
    #[derive(Debug)]
    pub struct ModelDetector {
        state: DebugState,
    }

    impl Default for ModelDetector {
        fn default() -> Self {
            Self::new()
        }
    }

    /// An opaque candidate cycle produced by [`ModelDetector::detect`].
    #[derive(Debug, Clone)]
    pub struct ModelCandidate(CycleCandidate);

    impl ModelCandidate {
        /// Whether `thread` participates in the candidate cycle.
        pub fn involves(&self, thread: u32) -> bool {
            let id = ThreadId::from_raw(thread);
            self.0.cycle.iter().any(|&(t, _)| t == id)
        }
    }

    fn to_ids(raw: Vec<u32>) -> Vec<ThreadId> {
        raw.into_iter().map(ThreadId::from_raw).collect()
    }

    impl ModelDetector {
        /// A fresh detector with no waits-for edges published.
        pub fn new() -> Self {
            Self {
                state: DebugState::new(),
            }
        }

        /// Publishes the waits-for edge `thread → addr`.
        pub fn set_waiting(&self, thread: u32, addr: usize) {
            self.state.set_waiting(ThreadId::from_raw(thread), addr);
        }

        /// Retracts `thread`'s waits-for edge (it acquired, or gave up).
        pub fn clear_waiting(&self, thread: u32) {
            self.state.clear_waiting(ThreadId::from_raw(thread));
        }

        /// The detection walk on behalf of `me`, about to wait on
        /// `wait_addr`; `holders` resolves each lock to its current holders.
        pub fn detect(
            &self,
            me: u32,
            wait_addr: usize,
            holders: impl Fn(usize) -> Vec<u32>,
        ) -> Option<ModelCandidate> {
            self.state
                .detect_deadlock(ThreadId::from_raw(me), wait_addr, |addr| {
                    to_ids(holders(addr))
                })
                .map(ModelCandidate)
        }

        /// Epoch-validated confirmation (the shipped protocol).
        pub fn still_deadlocked(
            &self,
            candidate: &ModelCandidate,
            holders: impl Fn(usize) -> Vec<u32>,
        ) -> bool {
            self.state
                .still_deadlocked(&candidate.0, |addr| to_ids(holders(addr)))
        }

        /// The seeded epoch-skipping confirmation bug (see
        /// [`DebugState::still_deadlocked_no_epochs`]).
        pub fn still_deadlocked_no_epochs(
            &self,
            candidate: &ModelCandidate,
            holders: impl Fn(usize) -> Vec<u32>,
        ) -> bool {
            self.state
                .still_deadlocked_no_epochs(&candidate.0, |addr| to_ids(holders(addr)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tid(n: u32) -> ThreadId {
        ThreadId::from_raw(n)
    }

    fn owners(pairs: &[(usize, u32)]) -> HashMap<usize, Vec<ThreadId>> {
        pairs.iter().map(|&(a, t)| (a, vec![tid(t)])).collect()
    }

    fn lookup(map: &HashMap<usize, Vec<ThreadId>>) -> impl Fn(usize) -> Vec<ThreadId> + '_ {
        move |addr| map.get(&addr).cloned().unwrap_or_default()
    }

    #[test]
    fn waiting_roundtrip() {
        let d = DebugState::new();
        assert_eq!(d.waiting_on(tid(3)), None);
        d.set_waiting(tid(3), 0x500);
        assert_eq!(d.waiting_on(tid(3)), Some(0x500));
        d.clear_waiting(tid(3));
        assert_eq!(d.waiting_on(tid(3)), None);
    }

    #[test]
    fn issue_log_accumulates_and_clears() {
        let d = DebugState::new();
        d.record(GlsError::ReleaseFreeLock { addr: 0x1 });
        d.record(GlsError::UninitializedLock { addr: 0x2 });
        assert_eq!(d.issues().len(), 2);
        d.clear_issues();
        assert!(d.issues().is_empty());
    }

    #[test]
    fn no_deadlock_when_chain_terminates() {
        let d = DebugState::new();
        // T0 waits on lock A owned by T1, which waits on nothing.
        let map = owners(&[(0xa, 1)]);
        assert!(d.detect_deadlock(tid(0), 0xa, lookup(&map)).is_none());
    }

    #[test]
    fn detects_two_thread_cycle() {
        let d = DebugState::new();
        // T0 holds B and waits on A; T1 holds A and waits on B.
        let map = owners(&[(0xa, 1), (0xb, 0)]);
        d.set_waiting(tid(0), 0xa);
        d.set_waiting(tid(1), 0xb);
        let candidate = d
            .detect_deadlock(tid(0), 0xa, lookup(&map))
            .expect("cycle should be detected");
        assert_eq!(candidate.cycle.first().unwrap().0, tid(0));
        assert_eq!(candidate.cycle.last().unwrap().0, tid(0));
        assert!(candidate
            .cycle
            .iter()
            .any(|&(t, a)| t == tid(1) && a == 0xb));
    }

    #[test]
    fn detects_three_thread_cycle() {
        let d = DebugState::new();
        // T0 waits A (owned by T1), T1 waits B (owned by T2), T2 waits C
        // (owned by T0).
        let map = owners(&[(0xa, 1), (0xb, 2), (0xc, 0)]);
        d.set_waiting(tid(1), 0xb);
        d.set_waiting(tid(2), 0xc);
        let candidate = d
            .detect_deadlock(tid(0), 0xa, lookup(&map))
            .expect("three-way cycle should be detected");
        assert!(candidate.cycle.len() >= 4);
    }

    #[test]
    fn unrelated_cycle_is_not_attributed_to_me() {
        let d = DebugState::new();
        // T1 and T2 deadlock with each other; T0 waits on a lock owned by T1
        // but is not part of the cycle, so detection from T0 reports nothing
        // (T0 cannot be the one to break it).
        let map = owners(&[(0xa, 1), (0xb, 2), (0xc, 1)]);
        d.set_waiting(tid(1), 0xb);
        d.set_waiting(tid(2), 0xc);
        assert!(d.detect_deadlock(tid(0), 0xa, lookup(&map)).is_none());
    }

    #[test]
    fn writer_waits_on_every_shared_holder() {
        let d = DebugState::new();
        // T0 (a writer) waits on rw lock A held by readers T1 and T2; only
        // T2 waits on B, which T0 owns — the cycle runs through the *second*
        // shared holder, so a single-owner walk would miss it.
        let mut map: HashMap<usize, Vec<ThreadId>> = HashMap::new();
        map.insert(0xa, vec![tid(1), tid(2)]);
        map.insert(0xb, vec![tid(0)]);
        d.set_waiting(tid(2), 0xb);
        let candidate = d
            .detect_deadlock(tid(0), 0xa, lookup(&map))
            .expect("cycle through a shared holder must be found");
        assert!(candidate
            .cycle
            .iter()
            .any(|&(t, a)| t == tid(2) && a == 0xb));
    }

    #[test]
    fn confirmation_requires_frozen_waiters() {
        let d = DebugState::new();
        let map = owners(&[(0xa, 1), (0xb, 0)]);
        d.set_waiting(tid(0), 0xa);
        d.set_waiting(tid(1), 0xb);
        let candidate = d.detect_deadlock(tid(0), 0xa, lookup(&map)).unwrap();
        // Nothing moved: the candidate is confirmed.
        assert!(d.still_deadlocked(&candidate, lookup(&map)));
        // T1 made progress (cleared and re-registered the same wait): the
        // epoch changed, so the candidate is a phantom and must be dropped.
        d.clear_waiting(tid(1));
        d.set_waiting(tid(1), 0xb);
        assert!(!d.still_deadlocked(&candidate, lookup(&map)));
    }

    #[test]
    fn cycle_key_is_rotation_invariant() {
        // The same two-thread deadlock, detected once from T0 and once
        // from T1, must coalesce onto one confirmation key.
        let d = DebugState::new();
        let map = owners(&[(0xa, 1), (0xb, 0)]);
        d.set_waiting(tid(0), 0xa);
        d.set_waiting(tid(1), 0xb);
        let from_t0 = d.detect_deadlock(tid(0), 0xa, lookup(&map)).unwrap();
        let from_t1 = d.detect_deadlock(tid(1), 0xb, lookup(&map)).unwrap();
        assert_ne!(
            from_t0.cycle, from_t1.cycle,
            "walks start at different threads"
        );
        assert_eq!(from_t0.key(), from_t1.key(), "identity coalesces");
        // A different cycle gets a different key.
        let map2 = owners(&[(0xc, 3), (0xd, 2)]);
        d.set_waiting(tid(2), 0xc);
        d.set_waiting(tid(3), 0xd);
        let other = d.detect_deadlock(tid(2), 0xc, lookup(&map2)).unwrap();
        assert_ne!(from_t0.key(), other.key());
    }

    #[test]
    fn candidate_counter_tracks_detections() {
        let d = DebugState::new();
        let map = owners(&[(0xa, 1), (0xb, 0)]);
        assert_eq!(d.candidate_count(), 0);
        // A terminating chain produces no candidate.
        assert!(d.detect_deadlock(tid(5), 0xa, lookup(&map)).is_none());
        assert_eq!(d.candidate_count(), 0);
        d.set_waiting(tid(0), 0xa);
        d.set_waiting(tid(1), 0xb);
        let _ = d.detect_deadlock(tid(0), 0xa, lookup(&map)).unwrap();
        let _ = d.detect_deadlock(tid(0), 0xa, lookup(&map)).unwrap();
        assert_eq!(d.candidate_count(), 2);
    }

    #[test]
    fn same_cycle_confirmations_share_one_deadline() {
        let d = DebugState::new();
        let map = owners(&[(0xa, 1), (0xb, 0)]);
        d.set_waiting(tid(0), 0xa);
        d.set_waiting(tid(1), 0xb);
        let c0 = d.detect_deadlock(tid(0), 0xa, lookup(&map)).unwrap();
        let c1 = d.detect_deadlock(tid(1), 0xb, lookup(&map)).unwrap();
        let grace = Duration::from_millis(200);
        let first = d.confirmation_wait(&c0, grace);
        assert!(
            first <= grace && first >= grace / 2,
            "first pays ~full grace"
        );
        // The other participant joins the in-flight confirmation: it waits
        // out the *remainder*, never a fresh full period.
        std::thread::sleep(Duration::from_millis(50));
        let second = d.confirmation_wait(&c1, grace);
        assert!(
            second <= grace - Duration::from_millis(40),
            "coalesced wait must be the remainder (got {second:?})"
        );
        // After the verdict the slate is clean: a re-detection starts a
        // fresh grace period.
        d.finish_confirmation(&c0);
        let fresh = d.confirmation_wait(&c1, grace);
        assert!(fresh >= grace / 2);
        d.finish_confirmation(&c1);
    }

    #[test]
    fn confirmation_requires_intact_ownership() {
        let d = DebugState::new();
        let map = owners(&[(0xa, 1), (0xb, 0)]);
        d.set_waiting(tid(0), 0xa);
        d.set_waiting(tid(1), 0xb);
        let candidate = d.detect_deadlock(tid(0), 0xa, lookup(&map)).unwrap();
        // The lock changed hands: the ownership edge is gone.
        let map_after = owners(&[(0xa, 7), (0xb, 0)]);
        assert!(!d.still_deadlocked(&candidate, lookup(&map_after)));
    }
}
