//! Debug-mode state: waits-for tracking, issue log and deadlock detection.
//!
//! GLS implements deadlock detection by augmenting the hash table "with a
//! waiting array that indicates which lock each thread is waiting on" (§4.2).
//! When a thread has been stuck behind a lock for longer than the configured
//! threshold, it walks owner → waits-for → owner relationships; a cycle that
//! returns to the invoking thread is a deadlock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex as StdMutex;

use gls_runtime::thread_id::MAX_THREADS;
use gls_runtime::ThreadId;

use crate::error::GlsError;

/// Debug bookkeeping shared by all operations of one service instance.
#[derive(Debug)]
pub(crate) struct DebugState {
    /// `waiting[tid]` = address the thread is currently waiting on (0: none).
    waiting: Box<[AtomicUsize]>,
    /// Detected issues, in detection order.
    issues: StdMutex<Vec<GlsError>>,
}

impl DebugState {
    pub(crate) fn new() -> Self {
        let waiting: Vec<AtomicUsize> = (0..MAX_THREADS).map(|_| AtomicUsize::new(0)).collect();
        Self {
            waiting: waiting.into_boxed_slice(),
            issues: StdMutex::new(Vec::new()),
        }
    }

    /// Records that `thread` is waiting on `addr`.
    pub(crate) fn set_waiting(&self, thread: ThreadId, addr: usize) {
        self.waiting[thread.as_usize()].store(addr, Ordering::Release);
    }

    /// Clears the waits-for record of `thread`.
    pub(crate) fn clear_waiting(&self, thread: ThreadId) {
        self.waiting[thread.as_usize()].store(0, Ordering::Release);
    }

    /// The address `thread` is waiting on, if any.
    pub(crate) fn waiting_on(&self, thread: ThreadId) -> Option<usize> {
        match self.waiting[thread.as_usize()].load(Ordering::Acquire) {
            0 => None,
            addr => Some(addr),
        }
    }

    /// Appends an issue to the log.
    pub(crate) fn record(&self, issue: GlsError) {
        if let Ok(mut log) = self.issues.lock() {
            log.push(issue);
        }
    }

    /// A snapshot of the issues detected so far.
    pub(crate) fn issues(&self) -> Vec<GlsError> {
        self.issues.lock().map(|l| l.clone()).unwrap_or_default()
    }

    /// Clears the issue log (tests and long-running services).
    pub(crate) fn clear_issues(&self) {
        if let Ok(mut log) = self.issues.lock() {
            log.clear();
        }
    }

    /// Runs the deadlock-detection procedure on behalf of `me`, which is
    /// currently waiting on `wait_addr`. `owner_of` resolves the current
    /// owner of a lock address.
    ///
    /// Returns the waits-for cycle if one that includes `me` is found.
    pub(crate) fn detect_deadlock(
        &self,
        me: ThreadId,
        wait_addr: usize,
        owner_of: impl Fn(usize) -> Option<ThreadId>,
    ) -> Option<Vec<(ThreadId, usize)>> {
        let mut cycle = vec![(me, wait_addr)];
        let mut wait_on = wait_addr;
        // The chain cannot meaningfully be longer than the number of live
        // threads; the bound also protects against concurrent mutation.
        for _ in 0..MAX_THREADS {
            let owner = owner_of(wait_on)?;
            if owner == me {
                // Cycle closed: owner of the last lock is the invoking thread.
                cycle.push((me, wait_addr));
                return Some(cycle);
            }
            let next = self.waiting_on(owner)?;
            cycle.push((owner, next));
            wait_on = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tid(n: u32) -> ThreadId {
        ThreadId::from_raw(n)
    }

    #[test]
    fn waiting_roundtrip() {
        let d = DebugState::new();
        assert_eq!(d.waiting_on(tid(3)), None);
        d.set_waiting(tid(3), 0x500);
        assert_eq!(d.waiting_on(tid(3)), Some(0x500));
        d.clear_waiting(tid(3));
        assert_eq!(d.waiting_on(tid(3)), None);
    }

    #[test]
    fn issue_log_accumulates_and_clears() {
        let d = DebugState::new();
        d.record(GlsError::ReleaseFreeLock { addr: 0x1 });
        d.record(GlsError::UninitializedLock { addr: 0x2 });
        assert_eq!(d.issues().len(), 2);
        d.clear_issues();
        assert!(d.issues().is_empty());
    }

    #[test]
    fn no_deadlock_when_chain_terminates() {
        let d = DebugState::new();
        // T0 waits on lock A owned by T1, which waits on nothing.
        let owners: HashMap<usize, ThreadId> = [(0xa, tid(1))].into();
        let cycle = d.detect_deadlock(tid(0), 0xa, |addr| owners.get(&addr).copied());
        assert!(cycle.is_none());
    }

    #[test]
    fn detects_two_thread_cycle() {
        let d = DebugState::new();
        // T0 holds B and waits on A; T1 holds A and waits on B.
        let owners: HashMap<usize, ThreadId> = [(0xa, tid(1)), (0xb, tid(0))].into();
        d.set_waiting(tid(1), 0xb);
        let cycle = d
            .detect_deadlock(tid(0), 0xa, |addr| owners.get(&addr).copied())
            .expect("cycle should be detected");
        assert_eq!(cycle.first().unwrap().0, tid(0));
        assert_eq!(cycle.last().unwrap().0, tid(0));
        assert!(cycle.iter().any(|&(t, a)| t == tid(1) && a == 0xb));
    }

    #[test]
    fn detects_three_thread_cycle() {
        let d = DebugState::new();
        // T0 waits A (owned by T1), T1 waits B (owned by T2), T2 waits C
        // (owned by T0).
        let owners: HashMap<usize, ThreadId> = [(0xa, tid(1)), (0xb, tid(2)), (0xc, tid(0))].into();
        d.set_waiting(tid(1), 0xb);
        d.set_waiting(tid(2), 0xc);
        let cycle = d
            .detect_deadlock(tid(0), 0xa, |addr| owners.get(&addr).copied())
            .expect("three-way cycle should be detected");
        assert!(cycle.len() >= 4);
    }

    #[test]
    fn unrelated_cycle_is_not_attributed_to_me() {
        let d = DebugState::new();
        // T1 and T2 deadlock with each other; T0 waits on a lock owned by T1
        // but is not part of the cycle, so detection from T0 reports nothing
        // (T0 cannot be the one to break it).
        let owners: HashMap<usize, ThreadId> = [(0xa, tid(1)), (0xb, tid(2)), (0xc, tid(1))].into();
        d.set_waiting(tid(1), 0xb);
        d.set_waiting(tid(2), 0xc);
        let cycle = d.detect_deadlock(tid(0), 0xa, |addr| owners.get(&addr).copied());
        assert!(cycle.is_none());
    }
}
