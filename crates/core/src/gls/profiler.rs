//! Profiler-mode reports (§4.3).
//!
//! In profiler mode GLS records, per lock object, the average queuing behind
//! the lock, the lock-acquisition latency and the critical-section duration,
//! and can print a report in the same shape as the paper's example output:
//!
//! ```text
//! [GLS] queue: 4.50 | l-lat: 13963 | cs-lat: 2848 @ (0x7fe6318eb4e0)
//! ```

use std::fmt;

/// Profiling data for one lock object.
#[derive(Debug, Clone, PartialEq)]
pub struct LockProfile {
    /// The address this lock was created for.
    pub addr: usize,
    /// Lock algorithm behind this address.
    pub algorithm: gls_locks::LockKind,
    /// Number of completed acquisitions observed by the profiler.
    pub acquisitions: u64,
    /// Average queuing behind the lock (holder + waiters) at acquisition time.
    pub avg_queue: f64,
    /// Average lock-acquisition latency, in cycles.
    pub avg_lock_latency: f64,
    /// Average critical-section duration, in cycles.
    pub avg_cs_latency: f64,
}

impl fmt::Display for LockProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[GLS] queue: {:.2} | l-lat: {:.0} | cs-lat: {:.0} @ ({:#x}:{})",
            self.avg_queue, self.avg_lock_latency, self.avg_cs_latency, self.addr, self.algorithm
        )
    }
}

/// A full profiler report: one entry per lock, sorted by contention.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Per-lock profiles, most contended first.
    pub locks: Vec<LockProfile>,
}

impl ProfileReport {
    /// Builds a report from unsorted per-lock profiles.
    pub fn new(mut locks: Vec<LockProfile>) -> Self {
        locks.sort_by(|a, b| {
            b.avg_queue
                .partial_cmp(&a.avg_queue)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Self { locks }
    }

    /// Locks whose average queuing exceeds `threshold` — the candidates the
    /// paper flags as likely scalability bottlenecks.
    pub fn contended(&self, threshold: f64) -> impl Iterator<Item = &LockProfile> {
        self.locks.iter().filter(move |l| l.avg_queue > threshold)
    }

    /// Number of profiled locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for lock in &self.locks {
            writeln!(f, "{lock}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gls_locks::LockKind;

    fn profile(addr: usize, queue: f64) -> LockProfile {
        LockProfile {
            addr,
            algorithm: LockKind::Glk,
            acquisitions: 100,
            avg_queue: queue,
            avg_lock_latency: 96.0,
            avg_cs_latency: 194.0,
        }
    }

    #[test]
    fn display_matches_paper_shape() {
        let p = profile(0x7fe6318eb660, 0.03);
        let s = p.to_string();
        assert!(s.contains("queue: 0.03"));
        assert!(s.contains("l-lat: 96"));
        assert!(s.contains("cs-lat: 194"));
        assert!(s.contains("0x7fe6318eb660"));
    }

    #[test]
    fn report_sorts_by_contention() {
        let report = ProfileReport::new(vec![profile(1, 0.1), profile(2, 5.0), profile(3, 1.2)]);
        let queues: Vec<f64> = report.locks.iter().map(|l| l.avg_queue).collect();
        assert_eq!(queues, vec![5.0, 1.2, 0.1]);
    }

    #[test]
    fn contended_filters_by_threshold() {
        let report = ProfileReport::new(vec![profile(1, 0.1), profile(2, 5.0), profile(3, 1.2)]);
        let hot: Vec<usize> = report.contended(1.0).map(|l| l.addr).collect();
        assert_eq!(hot, vec![2, 3]);
        assert_eq!(report.len(), 3);
        assert!(!report.is_empty());
    }

    #[test]
    fn report_display_is_one_line_per_lock() {
        let report = ProfileReport::new(vec![profile(1, 0.1), profile(2, 5.0)]);
        assert_eq!(report.to_string().lines().count(), 2);
    }
}
