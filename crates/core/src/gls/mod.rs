//! GLS — the generic locking service (§4 of the paper).
//!
//! GLS hides lock declaration, allocation, initialization and algorithm
//! selection behind a classic lock/unlock interface keyed by **any address**:
//! the service maps the address to a lock object through a CLHT hash table,
//! accelerated by a per-thread set-associative lock cache with precise
//! (per-entry epoch) invalidation. On top of that mapping, GLS provides a
//! debug mode that detects the common locking bugs (uninitialized locks,
//! double locking, releasing a free lock, releasing another thread's lock,
//! deadlocks) and a profiler mode that reports per-lock contention and
//! latency through per-thread stat shards.

mod cache;
mod condvar;
mod config;
mod debug;
mod entry;
mod holders;
mod profiler;
mod sampler;
mod service;
mod shards;
mod telemetry;

pub use cache::{
    aggregated_cache_stats, flush_thread_cache_stats, reset_thread_cache_stats, thread_cache_stats,
    CacheStats, CACHE_SETS, CACHE_WAYS,
};
pub use condvar::{GlsCondvar, WaitOutcome};
pub use config::{GlsConfig, GlsMode};
#[cfg(gls_model)]
pub use debug::model as debug_model;
pub use debug::DeadlockTrail;
pub use profiler::{LockProfile, ProfileReport};
pub use service::{GlsGuard, GlsReadGuard, GlsService, GlsWriteGuard};
pub use telemetry::{
    DeadlockTelemetry, HistogramSummary, LockTelemetry, TelemetryPublisher, TelemetrySnapshot,
};
