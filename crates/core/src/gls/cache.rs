//! The per-thread lock cache (§4.1, "Lock-cache Optimization").
//!
//! The most common locking pattern acquires and then releases the *same*
//! lock, and locks show strong temporal locality per thread — but real
//! services rarely touch exactly one lock: a request path typically walks a
//! handful of them. The cache is therefore **set-associative**: a small
//! per-thread table of [`CACHE_SETS`] sets × [`CACHE_WAYS`] ways,
//! direct-indexed by an address hash, with MRU-protecting round-robin
//! replacement inside a set (LRU-ish at a fraction of true LRU's
//! bookkeeping). A working set of up to `CACHE_SETS × CACHE_WAYS` locks per
//! thread hits without ever touching the CLHT.
//!
//! Invalidation is **precise**: every cached slot carries the epoch of the
//! entry it maps to (see `LockEntry::epoch`), stamped at store time and
//! re-validated on every hit. `free` bumps only the freed entry's epoch, so
//! freeing lock A never evicts cached mappings for lock B — on any thread.
//! The hit path is load → compare → deref → load → compare: no atomic
//! read-modify-write, no shared-memory store. The slots use a
//! structure-of-arrays layout so probing a set compares packed addresses
//! and only touches the payload of the matching way.
//!
//! Hit/miss/invalidation counters are kept per thread (plain `Cell`s, so
//! they cost nothing on the hot path) and exposed through
//! [`thread_cache_stats`] for tests, benchmarks and profiling.

use std::cell::Cell;
// Raw std atomics: the retired-stats accumulator is pure telemetry, updated
// once per thread exit, and stays invisible to the model explorer's
// scheduling points.
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of sets in the per-thread cache (a power of two: set selection is
/// a multiply and a shift).
pub const CACHE_SETS: usize = 16;

/// Associativity of each set.
pub const CACHE_WAYS: usize = 4;

/// The per-way metadata of one set, in structure-of-arrays layout: probes
/// scan `addrs` (one load + compare per way) and read the other arrays only
/// for the matching way.
struct CacheSet {
    /// Cached addresses; 0 marks an empty way (GLS rejects address 0).
    addrs: [Cell<usize>; CACHE_WAYS],
    /// Id of the service each way belongs to.
    services: [Cell<u64>; CACHE_WAYS],
    /// The cached entry pointers.
    entries: [Cell<usize>; CACHE_WAYS],
    /// Entry epochs at store time; a hit is valid only while the entry
    /// still carries its stored epoch.
    epochs: [Cell<u64>; CACHE_WAYS],
    /// Most-recently-used way, protected from eviction.
    mru: Cell<u8>,
}

impl CacheSet {
    // A template for initializing the (thread-local, never shared) cache
    // arrays — each use site gets its own fresh cells.
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: CacheSet = CacheSet {
        addrs: [const { Cell::new(0) }; CACHE_WAYS],
        services: [const { Cell::new(0) }; CACHE_WAYS],
        entries: [const { Cell::new(0) }; CACHE_WAYS],
        epochs: [const { Cell::new(0) }; CACHE_WAYS],
        mru: Cell::new(0),
    };

    fn clear_way(&self, way: usize) {
        self.addrs[way].set(0);
        self.services[way].set(0);
        self.entries[way].set(0);
        self.epochs[way].set(0);
    }
}

struct ThreadCache {
    sets: [CacheSet; CACHE_SETS],
    hits: Cell<u64>,
    misses: Cell<u64>,
    invalidations: Cell<u64>,
}

/// Process-wide accumulator of the counters of *exited* threads: the
/// thread-local counters are plain `Cell`s (free on the hot path) and
/// therefore unreadable from other threads, so each cache folds its totals
/// in here when its thread exits. [`aggregated_cache_stats`] = this
/// accumulator + the calling thread's own live counters.
static RETIRED_HITS: AtomicU64 = AtomicU64::new(0);
static RETIRED_MISSES: AtomicU64 = AtomicU64::new(0);
static RETIRED_INVALIDATIONS: AtomicU64 = AtomicU64::new(0);

impl Drop for ThreadCache {
    fn drop(&mut self) {
        RETIRED_HITS.fetch_add(self.hits.get(), Ordering::Relaxed);
        RETIRED_MISSES.fetch_add(self.misses.get(), Ordering::Relaxed);
        RETIRED_INVALIDATIONS.fetch_add(self.invalidations.get(), Ordering::Relaxed);
    }
}

thread_local! {
    static CACHE: ThreadCache = const {
        ThreadCache {
            sets: [CacheSet::EMPTY; CACHE_SETS],
            hits: Cell::new(0),
            misses: Cell::new(0),
            invalidations: Cell::new(0),
        }
    };
}

/// Fibonacci-hash set selection: addresses are pointers (aligned, shared
/// low bits), so mix before taking the top bits.
#[inline]
fn set_index(addr: usize) -> usize {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    ((addr as u64).wrapping_mul(GOLDEN) >> (64 - CACHE_SETS.trailing_zeros() as u64)) as usize
        & (CACHE_SETS - 1)
}

#[cfg(test)]
pub(crate) fn set_index_for(addr: usize) -> usize {
    set_index(addr)
}

/// Looks up `addr` in the calling thread's cache.
///
/// `validate(entry, epoch)` is called on a candidate slot and must return
/// whether the cached mapping is still current (the service compares the
/// cached epoch against the entry's live epoch). A slot that fails
/// validation is cleared and counted as an invalidation; a validated hit
/// marks its way most-recently-used and returns the entry pointer.
#[inline]
pub(crate) fn lookup(
    service_id: u64,
    addr: usize,
    validate: impl FnOnce(usize, u64) -> bool,
) -> Option<usize> {
    CACHE.with(|cache| {
        let set = &cache.sets[set_index(addr)];
        for way in 0..CACHE_WAYS {
            if set.addrs[way].get() == addr && set.services[way].get() == service_id {
                let entry = set.entries[way].get();
                if validate(entry, set.epochs[way].get()) {
                    set.mru.set(way as u8);
                    cache.hits.set(cache.hits.get() + 1);
                    return Some(entry);
                }
                // The entry was freed (or freed and resurrected) since this
                // way was stored: drop the stale mapping. Only this one
                // address on this one thread pays; every other slot is
                // untouched.
                set.clear_way(way);
                cache.invalidations.set(cache.invalidations.get() + 1);
                cache.misses.set(cache.misses.get() + 1);
                return None;
            }
        }
        cache.misses.set(cache.misses.get() + 1);
        None
    })
}

/// Stores an `(addr → entry)` association observed at `epoch`, evicting a
/// non-MRU way of the address's set (round-robin) if the set is full.
pub(crate) fn store(service_id: u64, addr: usize, entry: usize, epoch: u64) {
    CACHE.with(|cache| {
        let set = &cache.sets[set_index(addr)];
        // Prefer the way already mapping this (service, addr), then an
        // empty way, then the way after the MRU one (round-robin that never
        // evicts the most recently hit mapping).
        let mut victim = usize::MAX;
        for way in 0..CACHE_WAYS {
            let cached = set.addrs[way].get();
            if cached == addr && set.services[way].get() == service_id {
                victim = way;
                break;
            }
            if victim == usize::MAX && cached == 0 {
                victim = way;
            }
        }
        if victim == usize::MAX {
            victim = (set.mru.get() as usize + 1) % CACHE_WAYS;
        }
        set.addrs[victim].set(addr);
        set.services[victim].set(service_id);
        set.entries[victim].set(entry);
        set.epochs[victim].set(epoch);
        set.mru.set(victim as u8);
    });
}

/// Clears the calling thread's cache (used in tests; production code relies
/// on per-entry epoch validation for invalidation instead).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn clear() {
    CACHE.with(|cache| {
        for set in &cache.sets {
            for way in 0..CACHE_WAYS {
                set.clear_way(way);
            }
            set.mru.set(0);
        }
    });
}

/// Hit/miss counters of the calling thread's lock cache.
///
/// The counters are thread-local and span every [`GlsService`] the thread
/// talks to. An epoch-validation failure (the cached entry was freed) counts
/// as both an invalidation and a miss.
///
/// [`GlsService`]: crate::GlsService
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Validated cache hits.
    pub hits: u64,
    /// Lookups that fell through to the hash table.
    pub misses: u64,
    /// Hits discarded because the cached entry's epoch changed (the address
    /// was freed, or freed and re-created, since the slot was stored).
    pub invalidations: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (`0.0` if none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            invalidations: self.invalidations + other.invalidations,
        }
    }
}

/// Returns the calling thread's lock-cache counters.
pub fn thread_cache_stats() -> CacheStats {
    CACHE.with(|cache| CacheStats {
        hits: cache.hits.get(),
        misses: cache.misses.get(),
        invalidations: cache.invalidations.get(),
    })
}

/// Zeroes the calling thread's lock-cache counters (the cached mappings
/// themselves are kept).
pub fn reset_thread_cache_stats() {
    CACHE.with(|cache| {
        cache.hits.set(0);
        cache.misses.set(0);
        cache.invalidations.set(0);
    });
}

/// Folds the calling thread's lock-cache counters into the process-wide
/// accumulator and zeroes them, so a long-lived worker can publish its
/// counters to [`aggregated_cache_stats`] without exiting. The drop of the
/// thread-local cache does this automatically at thread exit.
pub fn flush_thread_cache_stats() {
    CACHE.with(|cache| {
        RETIRED_HITS.fetch_add(cache.hits.get(), Ordering::Relaxed);
        RETIRED_MISSES.fetch_add(cache.misses.get(), Ordering::Relaxed);
        RETIRED_INVALIDATIONS.fetch_add(cache.invalidations.get(), Ordering::Relaxed);
        cache.hits.set(0);
        cache.misses.set(0);
        cache.invalidations.set(0);
    });
}

/// Lock-cache counters aggregated across threads: everything folded into
/// the process-wide accumulator (threads that exited, plus explicit
/// [`flush_thread_cache_stats`] calls) plus the calling thread's live
/// counters. Live counters of *other* running threads are not included —
/// they are plain `Cell`s and unreadable across threads by design; workers
/// flush on exit, so the aggregate converges as they finish.
pub fn aggregated_cache_stats() -> CacheStats {
    let retired = CacheStats {
        hits: RETIRED_HITS.load(Ordering::Relaxed),
        misses: RETIRED_MISSES.load(Ordering::Relaxed),
        invalidations: RETIRED_INVALIDATIONS.load(Ordering::Relaxed),
    };
    retired + thread_cache_stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIVE: u64 = 0;

    fn always_valid(_entry: usize, _epoch: u64) -> bool {
        true
    }

    fn probe(service: u64, addr: usize) -> Option<usize> {
        lookup(service, addr, always_valid)
    }

    /// CACHE_WAYS + 1 distinct addresses that all land in one set.
    fn same_set_addrs() -> Vec<usize> {
        let mut addrs = Vec::new();
        let mut addr = 0x40;
        let target = set_index_for(addr);
        while addrs.len() < CACHE_WAYS + 1 {
            if set_index_for(addr) == target {
                addrs.push(addr);
            }
            addr += 0x40;
        }
        addrs
    }

    #[test]
    fn miss_on_empty_cache() {
        clear();
        assert_eq!(probe(1, 0x100), None);
    }

    #[test]
    fn hit_after_store() {
        clear();
        store(1, 0x100, 0xdead, LIVE);
        assert_eq!(probe(1, 0x100), Some(0xdead));
    }

    #[test]
    fn miss_on_other_address_or_service() {
        clear();
        store(1, 0x100, 0xdead, LIVE);
        assert_eq!(probe(1, 0x200), None, "different address");
        assert_eq!(probe(2, 0x100), None, "different service");
    }

    #[test]
    fn failed_validation_clears_the_slot_and_counts() {
        clear();
        reset_thread_cache_stats();
        store(1, 0x100, 0xdead, LIVE);
        // The validator sees exactly what was stored.
        let seen = Cell::new((0usize, u64::MAX));
        let got = lookup(1, 0x100, |entry, epoch| {
            seen.set((entry, epoch));
            false
        });
        assert_eq!(got, None);
        assert_eq!(seen.get(), (0xdead, LIVE));
        // The slot is gone: the next lookup is a plain miss, not another
        // invalidation.
        assert_eq!(probe(1, 0x100), None);
        let stats = thread_cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn working_set_up_to_capacity_all_hits() {
        clear();
        // Per-set worst case is CACHE_WAYS distinct addresses; build an
        // address set that fills every set to its associativity exactly.
        let mut per_set = vec![Vec::new(); CACHE_SETS];
        let mut addr = 0x40;
        while per_set.iter().any(|v: &Vec<usize>| v.len() < CACHE_WAYS) {
            let set = set_index_for(addr);
            if per_set[set].len() < CACHE_WAYS {
                per_set[set].push(addr);
            }
            addr += 0x40;
        }
        let addrs: Vec<usize> = per_set.into_iter().flatten().collect();
        assert_eq!(addrs.len(), CACHE_SETS * CACHE_WAYS);
        for &a in &addrs {
            store(7, a, a + 1, LIVE);
        }
        reset_thread_cache_stats();
        for _ in 0..3 {
            for &a in &addrs {
                assert_eq!(probe(7, a), Some(a + 1));
            }
        }
        let stats = thread_cache_stats();
        assert_eq!(stats.misses, 0, "a full working set must never miss");
        assert_eq!(stats.hits, 3 * addrs.len() as u64);
        assert!((stats.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overflowing_a_set_never_evicts_the_mru_way() {
        clear();
        let addrs = same_set_addrs();
        for &a in &addrs[..CACHE_WAYS] {
            store(1, a, a + 1, LIVE);
        }
        // Make addrs[0] the protected most-recently-used way.
        assert_eq!(probe(1, addrs[0]), Some(addrs[0] + 1));
        store(1, addrs[CACHE_WAYS], 0xbeef, LIVE);
        assert_eq!(
            probe(1, addrs[0]),
            Some(addrs[0] + 1),
            "the MRU way survives an overflow store"
        );
        assert_eq!(probe(1, addrs[CACHE_WAYS]), Some(0xbeef));
        let evicted = addrs[1..CACHE_WAYS]
            .iter()
            .filter(|&&a| probe(1, a).is_none())
            .count();
        assert_eq!(evicted, 1, "an overflow store evicts exactly one way");
    }

    #[test]
    fn store_replaces_existing_mapping_for_same_address() {
        clear();
        store(1, 0x100, 0xaaaa, LIVE);
        store(1, 0x100, 0xbbbb, LIVE + 2);
        let seen = Cell::new(0u64);
        let got = lookup(1, 0x100, |_, epoch| {
            seen.set(epoch);
            true
        });
        assert_eq!(got, Some(0xbbbb), "same address re-store updates in place");
        assert_eq!(seen.get(), LIVE + 2, "epoch travels with the new mapping");
        // No duplicate way was created for the address.
        let addrs = same_set_addrs();
        clear();
        for &a in &addrs[..CACHE_WAYS] {
            store(1, a, a + 1, LIVE);
        }
        store(1, addrs[0], 0x1234, LIVE);
        for &a in &addrs[1..CACHE_WAYS] {
            assert_eq!(probe(1, a), Some(a + 1), "re-store evicts nothing");
        }
        assert_eq!(probe(1, addrs[0]), Some(0x1234));
    }

    #[test]
    fn cache_is_thread_local() {
        clear();
        store(1, 0x100, 0xcccc, LIVE);
        let other = std::thread::spawn(|| probe(1, 0x100)).join().unwrap();
        assert_eq!(other, None);
        assert_eq!(probe(1, 0x100), Some(0xcccc));
    }

    #[test]
    fn exited_threads_fold_into_the_aggregate() {
        let before = aggregated_cache_stats();
        std::thread::spawn(|| {
            clear();
            store(7, 0x700, 0x7007, LIVE);
            assert!(probe(7, 0x700).is_some()); // 1 hit
            assert!(probe(7, 0x704).is_none()); // 1 miss
        })
        .join()
        .unwrap();
        let after = aggregated_cache_stats();
        // Concurrent tests also touch the cache, so lower-bound the deltas.
        assert!(after.hits > before.hits);
        assert!(after.misses > before.misses);
    }

    #[test]
    fn flush_publishes_live_counters_without_thread_exit() {
        std::thread::spawn(|| {
            clear();
            reset_thread_cache_stats();
            store(9, 0x900, 0x9009, LIVE);
            assert!(probe(9, 0x900).is_some());
            let live = thread_cache_stats();
            assert_eq!(live.hits, 1);
            let before = aggregated_cache_stats();
            flush_thread_cache_stats();
            assert_eq!(thread_cache_stats(), CacheStats::default());
            let after = aggregated_cache_stats();
            // The flushed hit moved from the live counter to the
            // accumulator: the aggregate must not have shrunk.
            assert!(after.hits >= before.hits);
            // Prevent double-fold at thread exit from inflating totals: the
            // counters were zeroed, so drop adds nothing.
        })
        .join()
        .unwrap();
    }
}
