//! The per-thread lock cache (§4.1, "Lock-cache Optimization").
//!
//! The most common locking pattern acquires and then releases the *same*
//! lock, and locks show strong temporal locality per thread. GLS therefore
//! keeps a single-entry per-thread cache mapping the most recently used
//! address to its lock object, avoiding the hash-table lookup entirely on a
//! hit. A generation counter invalidates every thread's cache when any lock
//! is removed from the service.

use std::cell::Cell;

/// One cached `(service, generation, address, entry)` association.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CachedLock {
    service_id: u64,
    generation: u64,
    addr: usize,
    entry: usize,
}

thread_local! {
    static CACHE: Cell<Option<CachedLock>> = const { Cell::new(None) };
}

/// Looks up `addr` in the calling thread's cache.
///
/// Returns the raw entry pointer (as `usize`) if the cache holds a mapping
/// for this service, this generation and this address.
pub(crate) fn lookup(service_id: u64, generation: u64, addr: usize) -> Option<usize> {
    CACHE.with(|slot| match slot.get() {
        Some(cached)
            if cached.service_id == service_id
                && cached.generation == generation
                && cached.addr == addr =>
        {
            Some(cached.entry)
        }
        _ => None,
    })
}

/// Replaces the calling thread's cached association.
pub(crate) fn store(service_id: u64, generation: u64, addr: usize, entry: usize) {
    CACHE.with(|slot| {
        slot.set(Some(CachedLock {
            service_id,
            generation,
            addr,
            entry,
        }))
    });
}

/// Clears the calling thread's cache (used in tests; production code relies
/// on the generation counter for invalidation instead).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn clear() {
    CACHE.with(|slot| slot.set(None));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_on_empty_cache() {
        clear();
        assert_eq!(lookup(1, 0, 0x100), None);
    }

    #[test]
    fn hit_after_store() {
        clear();
        store(1, 0, 0x100, 0xdead);
        assert_eq!(lookup(1, 0, 0x100), Some(0xdead));
    }

    #[test]
    fn miss_on_other_address_service_or_generation() {
        clear();
        store(1, 5, 0x100, 0xdead);
        assert_eq!(lookup(1, 5, 0x200), None, "different address");
        assert_eq!(lookup(2, 5, 0x100), None, "different service");
        assert_eq!(lookup(1, 6, 0x100), None, "different generation");
    }

    #[test]
    fn store_replaces_previous_entry() {
        clear();
        store(1, 0, 0x100, 0xaaaa);
        store(1, 0, 0x300, 0xbbbb);
        assert_eq!(lookup(1, 0, 0x100), None, "single-entry cache evicts");
        assert_eq!(lookup(1, 0, 0x300), Some(0xbbbb));
    }

    #[test]
    fn cache_is_thread_local() {
        clear();
        store(1, 0, 0x100, 0xcccc);
        let other = std::thread::spawn(|| lookup(1, 0, 0x100)).join().unwrap();
        assert_eq!(other, None);
        assert_eq!(lookup(1, 0, 0x100), Some(0xcccc));
    }
}
