//! GLS service configuration.

use std::time::Duration;

use gls_locks::LockKind;

use crate::glk::{GlkConfig, MonitorHandle};

/// Operating mode of a [`GlsService`](crate::GlsService).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GlsMode {
    /// Plain locking service: no ownership tracking, no profiling.
    #[default]
    Normal,
    /// Debug mode: ownership tracking, misuse detection and runtime deadlock
    /// detection (§4.2). Adds overhead.
    Debug,
    /// Profiler mode: per-lock queuing, acquisition latency and
    /// critical-section latency statistics (§4.3). Low overhead.
    Profile,
}

/// Configuration of a GLS service instance.
///
/// # Example
///
/// ```
/// use gls::{GlsConfig, GlsMode};
///
/// let config = GlsConfig::default().with_mode(GlsMode::Profile);
/// assert_eq!(config.mode, GlsMode::Profile);
/// ```
#[derive(Debug, Clone)]
pub struct GlsConfig {
    /// Operating mode.
    pub mode: GlsMode,
    /// Algorithm used by the default `lock` interface. The paper's default is
    /// GLK; the explicit interfaces override this per call.
    pub default_kind: LockKind,
    /// Configuration handed to every GLK lock created by this service.
    pub glk: GlkConfig,
    /// Grace period before a suspected deadlock is confirmed (debug mode).
    /// A thread finding a waits-for cycle as it is about to block waits this
    /// long and re-validates every edge: real deadlocks are frozen, phantom
    /// cycles assembled from a racy walk dissolve. Paper: "more than a
    /// second".
    pub deadlock_check_after: Duration,
    /// Initial capacity (number of lock objects) of the address → lock table.
    pub initial_capacity: usize,
    /// Whether the per-thread set-associative lock cache accelerates the
    /// address → entry mapping (on by default). Turning it off sends every
    /// operation through the CLHT — useful for measuring what the cache
    /// buys (see the `fig17_fastpath` benchmark), not for production.
    pub lock_cache: bool,
    /// The system-load monitor used by GLK entries.
    pub monitor: MonitorHandle,
    /// Profile-mode sampling budget in **samples per second per thread**, or
    /// `None` for full measurement (every acquisition timed — the historical
    /// behaviour, ~4.6× normal-mode cost under contention). With a budget,
    /// each thread times only every Nth acquisition, adapting N from its
    /// observed acquisition rate toward the budget; untimed acquisitions
    /// still count (acquisition totals stay exact), so per-lock averages
    /// keep their meaning while the two `rdtsc` reads leave the common
    /// path. See [`GlsConfig::with_sampling`].
    pub sampling_budget: Option<u64>,
}

impl Default for GlsConfig {
    fn default() -> Self {
        Self {
            mode: GlsMode::Normal,
            default_kind: LockKind::Glk,
            glk: GlkConfig::default(),
            deadlock_check_after: Duration::from_secs(1),
            initial_capacity: 192,
            lock_cache: true,
            monitor: MonitorHandle::Global,
            sampling_budget: None,
        }
    }
}

impl GlsConfig {
    /// Sets the operating mode.
    pub fn with_mode(mut self, mode: GlsMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for `with_mode(GlsMode::Debug)`.
    pub fn debug() -> Self {
        Self::default().with_mode(GlsMode::Debug)
    }

    /// Shorthand for `with_mode(GlsMode::Profile)`.
    pub fn profile() -> Self {
        Self::default().with_mode(GlsMode::Profile)
    }

    /// Sets the algorithm used by the default `lock` interface.
    pub fn with_default_kind(mut self, kind: LockKind) -> Self {
        self.default_kind = kind;
        self
    }

    /// Sets the GLK configuration used for adaptive entries.
    pub fn with_glk(mut self, glk: GlkConfig) -> Self {
        self.glk = glk;
        self
    }

    /// Sets the waiting threshold that triggers deadlock detection.
    pub fn with_deadlock_check_after(mut self, after: Duration) -> Self {
        self.deadlock_check_after = after;
        self
    }

    /// Enables or disables the per-thread lock cache (on by default).
    pub fn with_lock_cache(mut self, enabled: bool) -> Self {
        self.lock_cache = enabled;
        self
    }

    /// Sets the system-load monitor used by GLK entries.
    pub fn with_monitor(mut self, monitor: MonitorHandle) -> Self {
        self.monitor = monitor;
        self
    }

    /// Enables the adaptive sampling profiler: in [`GlsMode::Profile`],
    /// each thread times only every Nth acquisition, with N adapted from
    /// the thread's observed acquisition rate so that it lands about
    /// `budget` timed samples per second. Acquisition *counts* stay exact;
    /// only the latency/queue sampling is thinned. This is what makes
    /// profile mode cheap enough to leave on in production (ROADMAP item 5:
    /// profiled ≤ 2× normal, vs ~4.6× with full measurement).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn with_sampling(mut self, budget: u64) -> Self {
        assert!(budget > 0, "sampling budget must be positive");
        self.sampling_budget = Some(budget);
        self
    }

    /// Disables sampling again: every acquisition is measured.
    pub fn with_full_measurement(mut self) -> Self {
        self.sampling_budget = None;
        self
    }

    /// Whether ownership tracking is enabled.
    pub fn tracks_ownership(&self) -> bool {
        self.mode == GlsMode::Debug
    }

    /// Whether profiling is enabled.
    pub fn profiles(&self) -> bool {
        self.mode == GlsMode::Profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_glk_and_normal_mode() {
        let c = GlsConfig::default();
        assert_eq!(c.mode, GlsMode::Normal);
        assert_eq!(c.default_kind, LockKind::Glk);
        assert_eq!(c.deadlock_check_after, Duration::from_secs(1));
        assert!(c.lock_cache, "the lock cache is on by default");
        assert!(!c.tracks_ownership());
        assert!(!c.profiles());
    }

    #[test]
    fn lock_cache_can_be_disabled() {
        let c = GlsConfig::default().with_lock_cache(false);
        assert!(!c.lock_cache);
    }

    #[test]
    fn mode_shorthands() {
        assert!(GlsConfig::debug().tracks_ownership());
        assert!(GlsConfig::profile().profiles());
    }

    #[test]
    fn builders_apply() {
        let c = GlsConfig::default()
            .with_default_kind(LockKind::Ticket)
            .with_deadlock_check_after(Duration::from_millis(100));
        assert_eq!(c.default_kind, LockKind::Ticket);
        assert_eq!(c.deadlock_check_after, Duration::from_millis(100));
    }
}
