//! The GLS service: mapping arbitrary addresses to lock objects.

use gls_sync::atomic::{AtomicU64, Ordering};
use gls_sync::sync::Mutex as StdMutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use gls_clht::{Clht, ClhtStats};
use gls_locks::LockKind;
use gls_runtime::{cycles, ThreadId};

use crate::error::GlsError;
use crate::glk::ModeTransition;

use super::cache;
use super::condvar::{GlsCondvar, WaitOutcome};
use super::config::{GlsConfig, GlsMode};
use super::debug::{DeadlockTrail, DebugState};
use super::entry::{AlgorithmLock, LockEntry};
use super::profiler::{LockProfile, ProfileReport};
use super::sampler;
use super::telemetry::{
    DeadlockTelemetry, HistogramSummary, LockTelemetry, TelemetryPublisher, TelemetrySnapshot,
};

/// Monotonic id generator so per-thread lock caches can tell services apart.
static NEXT_SERVICE_ID: AtomicU64 = AtomicU64::new(1);

/// The generic locking service (GLS).
///
/// GLS provides the classic lock interface but accepts **any address** (any
/// value, except 0/NULL) as the lock identifier; the service transparently
/// maps the address to a lock object through a CLHT hash table and a
/// per-thread lock cache. The default interface uses the adaptive GLK
/// algorithm; explicit per-algorithm interfaces are available through
/// [`GlsService::lock_with`] (paper Table 1).
///
/// # Interface summary (paper Table 1, extended with reader-writer locking)
///
/// | Interface | Methods | Entry algorithm |
/// |---|---|---|
/// | Default | [`lock`](Self::lock), [`try_lock`](Self::try_lock), [`unlock`](Self::unlock), [`guard`](Self::guard) | GLK (adaptive) |
/// | Explicit | [`lock_with`](Self::lock_with), [`try_lock_with`](Self::try_lock_with), [`unlock_with`](Self::unlock_with) | caller-chosen [`LockKind`] |
/// | Reader-writer | [`read_lock`](Self::read_lock), [`write_lock`](Self::write_lock), [`try_read_lock`](Self::try_read_lock), [`try_write_lock`](Self::try_write_lock), [`read_unlock`](Self::read_unlock), [`write_unlock`](Self::write_unlock), [`read_guard`](Self::read_guard), [`write_guard`](Self::write_guard) | GLK-RW (adaptive rw) |
/// | Condition variables | [`wait`](Self::wait), [`wait_timeout`](Self::wait_timeout) with a [`GlsCondvar`] | any mutex entry |
/// | Management | [`free`](Self::free), [`lock_count`](Self::lock_count), [`issues`](Self::issues), [`profile_report`](Self::profile_report) | — |
///
/// The rw interface shares everything the mutex interface has: address-based
/// mapping, the per-thread lock cache, profiling (queue/latency statistics)
/// and the debug mode — including deadlock detection that understands shared
/// holders (a waiting writer waits on *all* current readers). Mixing the rw
/// and mutex interfaces on one address degrades shared acquisitions of
/// non-rw entries to exclusive ones (safe, merely pessimistic); the debug
/// mode flags the mismatch.
///
/// # Example
///
/// ```
/// use gls::GlsService;
///
/// let service = GlsService::new();
/// let account_balance = 100u64; // any object can act as the lock identity
///
/// service.lock(&account_balance).unwrap();
/// // ... critical section protecting the balance ...
/// service.unlock(&account_balance).unwrap();
///
/// // Or, RAII style:
/// {
///     let _guard = service.guard(&account_balance).unwrap();
///     // critical section
/// }
/// ```
#[derive(Debug)]
pub struct GlsService {
    id: u64,
    table: Clht,
    config: GlsConfig,
    debug: DebugState,
    /// Entries removed via `free`, kept allocated until the service is
    /// dropped so concurrent (buggy) users can never observe freed memory,
    /// and resurrected as-is when the same address is re-created so
    /// lock/free churn does not leak. The map doubles as the
    /// **pending-free marker**: `free` publishes the entry here *before*
    /// removing it from the table (and a resurrecting create clears the
    /// stale marker only *after* re-publishing the entry in the table), so
    /// a release path that misses the table is deterministically guaranteed
    /// to find the entry here — there is no remove→park window and the
    /// release paths never sleep. Invalidation of per-thread cache slots is
    /// *precise*: `free` bumps only the freed entry's epoch (see
    /// `LockEntry::epoch`), so no other address's cached mapping is
    /// disturbed anywhere in the process.
    retired: StdMutex<RetiredSet>,
}

/// A pending-free marker / parked allocation: the entry pointer plus the
/// (live, even) epoch the claiming `free` observed. The epoch stamp lets a
/// resurrecting create distinguish its own stale marker (strictly older
/// than the resurrected epoch) from a fresh marker published by the *next*
/// free of the same address.
#[derive(Debug, Clone, Copy)]
struct PendingFree {
    ptr: usize,
    epoch: u64,
}

/// The parked allocations of freed addresses.
#[derive(Debug, Default)]
struct RetiredSet {
    /// addr → pending-free record, one per freed (or mid-free) address;
    /// `entry_for` resurrects from here, keyed lookups so free/recreate
    /// churn over many addresses stays O(1) per operation.
    parked: HashMap<usize, PendingFree>,
    /// Defensive holding pen for allocations displaced from `parked`.
    /// With the pending-free protocol the per-address allocation is stable
    /// (a create always resurrects the parked entry — the marker is
    /// published before the address is ever unmapped — so no duplicate
    /// allocation can arise); entries land here only if that invariant is
    /// ever violated, and are reclaimed when the service drops.
    displaced: Vec<usize>,
}

impl Default for GlsService {
    fn default() -> Self {
        Self::new()
    }
}

impl GlsService {
    /// Creates a service with the default configuration (GLK locks, normal
    /// mode). This is the Rust equivalent of `gls_init()`.
    pub fn new() -> Self {
        Self::with_config(GlsConfig::default())
    }

    /// Creates a service with a custom configuration.
    pub fn with_config(mut config: GlsConfig) -> Self {
        // The blocking-backend heuristic reads the live count of *this
        // service's* blocking-mode locks: give the service its own density
        // tracker unless the caller wired a custom one.
        if matches!(config.glk.density, crate::glk::DensityHandle::Global) {
            config.glk.density = crate::glk::DensityHandle::Custom(std::sync::Arc::new(
                crate::glk::BlockingDensity::new(),
            ));
        }
        Self {
            id: NEXT_SERVICE_ID.fetch_add(1, Ordering::Relaxed),
            table: Clht::with_capacity(config.initial_capacity),
            config,
            debug: DebugState::new(),
            retired: StdMutex::new(RetiredSet::default()),
        }
    }

    /// The process-wide default service used by the free-function interface.
    pub fn global() -> &'static GlsService {
        static GLOBAL: OnceLock<GlsService> = OnceLock::new();
        GLOBAL.get_or_init(GlsService::new)
    }

    /// The configuration this service runs with.
    pub fn config(&self) -> &GlsConfig {
        &self.config
    }

    /// Converts a reference into the address key GLS uses internally.
    pub fn address_of<T: ?Sized>(m: &T) -> usize {
        m as *const T as *const () as usize
    }

    // ------------------------------------------------------------------
    // Default interface (gls_lock / gls_trylock / gls_unlock)
    // ------------------------------------------------------------------

    /// Acquires the lock associated with the address of `m`, creating it on
    /// first use with the service's default algorithm (GLK unless
    /// reconfigured).
    ///
    /// # Errors
    ///
    /// In debug mode, returns the detected issue (double locking, deadlock)
    /// without acquiring. In normal and profile mode this never fails.
    pub fn lock<T: ?Sized>(&self, m: &T) -> Result<(), GlsError> {
        self.lock_addr(Self::address_of(m))
    }

    /// [`GlsService::lock`] for a raw address (e.g. `gls_lock(17)`).
    #[inline]
    pub fn lock_addr(&self, addr: usize) -> Result<(), GlsError> {
        self.lock_impl(addr, self.config.default_kind)
    }

    /// Attempts to acquire the lock associated with `m` without waiting.
    ///
    /// # Errors
    ///
    /// In debug mode, returns the detected issue (e.g. double locking).
    pub fn try_lock<T: ?Sized>(&self, m: &T) -> Result<bool, GlsError> {
        self.try_lock_addr(Self::address_of(m))
    }

    /// [`GlsService::try_lock`] for a raw address.
    pub fn try_lock_addr(&self, addr: usize) -> Result<bool, GlsError> {
        self.try_lock_impl(addr, self.config.default_kind)
    }

    /// Releases the lock associated with `m`.
    ///
    /// # Errors
    ///
    /// Returns [`GlsError::UninitializedLock`] if the address was never
    /// locked; in debug mode additionally detects releasing a free lock and
    /// releasing a lock owned by another thread.
    pub fn unlock<T: ?Sized>(&self, m: &T) -> Result<(), GlsError> {
        self.unlock_addr(Self::address_of(m))
    }

    /// [`GlsService::unlock`] for a raw address.
    #[inline]
    pub fn unlock_addr(&self, addr: usize) -> Result<(), GlsError> {
        self.unlock_impl(addr, None)
    }

    // ------------------------------------------------------------------
    // Explicit per-algorithm interface (gls_A_lock / gls_A_unlock)
    // ------------------------------------------------------------------

    /// Acquires the lock for `addr`, creating it with algorithm `kind` if it
    /// does not exist yet.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::lock`].
    pub fn lock_with(&self, kind: LockKind, addr: usize) -> Result<(), GlsError> {
        self.lock_impl(addr, kind)
    }

    /// Attempts to acquire the lock for `addr` using algorithm `kind`.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::try_lock`].
    pub fn try_lock_with(&self, kind: LockKind, addr: usize) -> Result<bool, GlsError> {
        self.try_lock_impl(addr, kind)
    }

    /// Releases the lock for `addr`, checking (in debug mode) that it was
    /// created with algorithm `kind`.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::unlock`].
    pub fn unlock_with(&self, kind: LockKind, addr: usize) -> Result<(), GlsError> {
        self.unlock_impl(addr, Some(kind))
    }

    // ------------------------------------------------------------------
    // RAII interface
    // ------------------------------------------------------------------

    /// Acquires the lock for `m` and returns a guard that releases it when
    /// dropped.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::lock`].
    pub fn guard<'a, T: ?Sized>(&'a self, m: &T) -> Result<GlsGuard<'a>, GlsError> {
        self.guard_addr(Self::address_of(m))
    }

    /// [`GlsService::guard`] for a raw address.
    pub fn guard_addr(&self, addr: usize) -> Result<GlsGuard<'_>, GlsError> {
        self.lock_addr(addr)?;
        Ok(GlsGuard {
            service: self,
            addr,
        })
    }

    // ------------------------------------------------------------------
    // Reader-writer interface (gls_read_lock / gls_write_lock / ...)
    // ------------------------------------------------------------------

    /// Acquires shared (read) access to the lock associated with `m`,
    /// creating an adaptive reader-writer entry on first use.
    ///
    /// # Errors
    ///
    /// In debug mode, returns the detected issue (double locking, deadlock)
    /// without acquiring. In normal and profile mode this never fails.
    pub fn read_lock<T: ?Sized>(&self, m: &T) -> Result<(), GlsError> {
        self.read_lock_addr(Self::address_of(m))
    }

    /// [`GlsService::read_lock`] for a raw address.
    pub fn read_lock_addr(&self, addr: usize) -> Result<(), GlsError> {
        self.read_lock_impl(addr)
    }

    /// Acquires exclusive (write) access to the lock associated with `m`,
    /// creating an adaptive reader-writer entry on first use.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::read_lock`].
    pub fn write_lock<T: ?Sized>(&self, m: &T) -> Result<(), GlsError> {
        self.write_lock_addr(Self::address_of(m))
    }

    /// [`GlsService::write_lock`] for a raw address.
    pub fn write_lock_addr(&self, addr: usize) -> Result<(), GlsError> {
        // Exclusive access on an rw entry *is* the classic lock operation,
        // so the write side reuses the whole lock/profile/debug machinery.
        self.lock_impl(addr, LockKind::Rw)
    }

    /// Attempts to acquire shared access without waiting.
    ///
    /// # Errors
    ///
    /// In debug mode, returns the detected issue (e.g. double locking).
    pub fn try_read_lock<T: ?Sized>(&self, m: &T) -> Result<bool, GlsError> {
        self.try_read_lock_addr(Self::address_of(m))
    }

    /// [`GlsService::try_read_lock`] for a raw address.
    pub fn try_read_lock_addr(&self, addr: usize) -> Result<bool, GlsError> {
        self.try_read_lock_impl(addr)
    }

    /// Attempts to acquire exclusive access without waiting.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::try_read_lock`].
    pub fn try_write_lock<T: ?Sized>(&self, m: &T) -> Result<bool, GlsError> {
        self.try_write_lock_addr(Self::address_of(m))
    }

    /// [`GlsService::try_write_lock`] for a raw address.
    pub fn try_write_lock_addr(&self, addr: usize) -> Result<bool, GlsError> {
        self.try_lock_impl(addr, LockKind::Rw)
    }

    /// Releases shared access to the lock associated with `m`.
    ///
    /// # Errors
    ///
    /// Returns [`GlsError::UninitializedLock`] if the address was never
    /// locked; in debug mode additionally detects releasing shared access
    /// the calling thread does not hold.
    pub fn read_unlock<T: ?Sized>(&self, m: &T) -> Result<(), GlsError> {
        self.read_unlock_addr(Self::address_of(m))
    }

    /// [`GlsService::read_unlock`] for a raw address.
    pub fn read_unlock_addr(&self, addr: usize) -> Result<(), GlsError> {
        self.read_unlock_impl(addr)
    }

    /// Releases exclusive access to the lock associated with `m`.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::unlock`].
    pub fn write_unlock<T: ?Sized>(&self, m: &T) -> Result<(), GlsError> {
        self.write_unlock_addr(Self::address_of(m))
    }

    /// [`GlsService::write_unlock`] for a raw address.
    pub fn write_unlock_addr(&self, addr: usize) -> Result<(), GlsError> {
        self.unlock_impl(addr, None)
    }

    /// Acquires shared access to `m` and returns a guard releasing it on
    /// drop.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::read_lock`].
    pub fn read_guard<'a, T: ?Sized>(&'a self, m: &T) -> Result<GlsReadGuard<'a>, GlsError> {
        self.read_guard_addr(Self::address_of(m))
    }

    /// [`GlsService::read_guard`] for a raw address.
    pub fn read_guard_addr(&self, addr: usize) -> Result<GlsReadGuard<'_>, GlsError> {
        self.read_lock_addr(addr)?;
        Ok(GlsReadGuard {
            service: self,
            addr,
        })
    }

    /// Acquires exclusive access to `m` and returns a guard releasing it on
    /// drop.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::write_lock`].
    pub fn write_guard<'a, T: ?Sized>(&'a self, m: &T) -> Result<GlsWriteGuard<'a>, GlsError> {
        self.write_guard_addr(Self::address_of(m))
    }

    /// [`GlsService::write_guard`] for a raw address.
    pub fn write_guard_addr(&self, addr: usize) -> Result<GlsWriteGuard<'_>, GlsError> {
        self.write_lock_addr(addr)?;
        Ok(GlsWriteGuard {
            service: self,
            addr,
        })
    }

    // ------------------------------------------------------------------
    // Condition variables (gls_wait / gls_wait_timeout)
    // ------------------------------------------------------------------

    /// Atomically releases the GLS mutex associated with `m` and parks the
    /// calling thread on `cv` until notified, then re-acquires the mutex
    /// before returning. The caller must hold the mutex; always re-check
    /// the waited-on predicate in a loop (spurious wakeups are possible).
    ///
    /// In debug mode the sleeper is invisible to the deadlock detector (it
    /// owns nothing and publishes no waits-for edge while parked), so a
    /// condvar wait can never produce a phantom deadlock report; only the
    /// re-acquisition runs the ordinary deadlock-checked lock path. In
    /// profile mode the re-acquisition is profiled like any lock call.
    ///
    /// # Errors
    ///
    /// In debug mode, returns [`GlsError::WrongOwner`] or
    /// [`GlsError::ReleaseFreeLock`] (recorded in the issue log) when the
    /// calling thread does not hold the mutex — waiting with a lock you do
    /// not own is the same class of bug as releasing one. Errors from the
    /// re-acquisition are propagated.
    pub fn wait<T: ?Sized>(&self, cv: &GlsCondvar, m: &T) -> Result<(), GlsError> {
        self.wait_addr(cv, Self::address_of(m))
    }

    /// [`GlsService::wait`] for a raw address.
    pub fn wait_addr(&self, cv: &GlsCondvar, addr: usize) -> Result<(), GlsError> {
        self.wait_impl(cv, addr, None).map(|_| ())
    }

    /// Like [`GlsService::wait`], but gives up after `timeout` and reports
    /// which way the wait ended. The mutex is re-acquired either way.
    ///
    /// # Errors
    ///
    /// Same as [`GlsService::wait`].
    pub fn wait_timeout<T: ?Sized>(
        &self,
        cv: &GlsCondvar,
        m: &T,
        timeout: Duration,
    ) -> Result<WaitOutcome, GlsError> {
        self.wait_timeout_addr(cv, Self::address_of(m), timeout)
    }

    /// [`GlsService::wait_timeout`] for a raw address.
    pub fn wait_timeout_addr(
        &self,
        cv: &GlsCondvar,
        addr: usize,
        timeout: Duration,
    ) -> Result<WaitOutcome, GlsError> {
        self.wait_impl(cv, addr, Some(timeout))
    }

    fn wait_impl(
        &self,
        cv: &GlsCondvar,
        addr: usize,
        timeout: Option<Duration>,
    ) -> Result<WaitOutcome, GlsError> {
        // Debug mode checks ownership *before* parking: once enqueued the
        // unlock must not fail, or the thread would sleep still holding the
        // mutex it promised to release.
        if self.config.mode == GlsMode::Debug {
            let me = ThreadId::current();
            match self.find_entry(addr).and_then(|e| e.owner()) {
                Some(owner) if owner == me => {}
                Some(owner) => {
                    let issue = GlsError::WrongOwner {
                        addr,
                        owner,
                        caller: me,
                    };
                    self.debug.record(issue.clone());
                    return Err(issue);
                }
                None => {
                    let issue = GlsError::ReleaseFreeLock { addr };
                    self.debug.record(issue.clone());
                    return Err(issue);
                }
            }
        }
        let mut relock_result = Ok(());
        // The mutex is released in `before_sleep`, i.e. *after* the waiter
        // is enqueued under the condvar's address: a notifier that acquires
        // the mutex after this release is guaranteed to see the waiter.
        let outcome = cv.wait_with(
            || {
                let _ = self.unlock_addr(addr);
            },
            || relock_result = self.lock_addr(addr),
            timeout,
        );
        relock_result.map(|()| outcome)
    }

    /// Notifies one waiter of `cv`, requeueing it directly onto the mutex
    /// associated with `m` when that mutex currently blocks through the
    /// shared parking lot and is held: the waiter then skips the
    /// wake-then-block hop and is woken straight by the mutex's release.
    /// Falls back to a plain [`GlsCondvar::notify_one`] for mutexes with
    /// per-lock blocking state (nothing to requeue onto) or a free mutex
    /// (the waiter can take it immediately). Returns whether a waiter was
    /// notified.
    pub fn notify_one<T: ?Sized>(&self, cv: &GlsCondvar, m: &T) -> bool {
        self.notify_one_addr(cv, Self::address_of(m))
    }

    /// [`GlsService::notify_one`] for a raw address.
    pub fn notify_one_addr(&self, cv: &GlsCondvar, addr: usize) -> bool {
        match self.find_entry(addr).and_then(|e| e.park_addr()) {
            // SAFETY: the park address belongs to this entry's futex word;
            // entry allocations are never reclaimed while the service
            // lives (see `entry_ref`), so the word outlives the call. The
            // revalidation (under the bucket locks) re-resolves the park
            // address so a waiter is never requeued onto a word the mutex
            // stopped parking under (backend migration, mode change).
            Some(target) => unsafe {
                cv.notify_one_requeue(target, || {
                    self.find_entry(addr).and_then(|e| e.park_addr()) == Some(target)
                })
            },
            None => cv.notify_one(),
        }
    }

    /// Notifies every waiter of `cv`, requeueing them onto the mutex
    /// associated with `m` when it is futex-backed (wait-morphing
    /// broadcast: the mutex's successive releases wake them one at a time,
    /// with no thundering herd re-contending the mutex). Returns how many
    /// waiters were notified.
    pub fn notify_all<T: ?Sized>(&self, cv: &GlsCondvar, m: &T) -> usize {
        self.notify_all_addr(cv, Self::address_of(m))
    }

    /// [`GlsService::notify_all`] for a raw address.
    pub fn notify_all_addr(&self, cv: &GlsCondvar, addr: usize) -> usize {
        match self.find_entry(addr).and_then(|e| e.park_addr()) {
            // SAFETY: as in `notify_one_addr` — the futex word lives as
            // long as the service, and the revalidation closes the stale
            // -address race.
            Some(target) => unsafe {
                cv.notify_all_requeue(target, || {
                    self.find_entry(addr).and_then(|e| e.park_addr()) == Some(target)
                })
            },
            None => cv.notify_all(),
        }
    }

    // ------------------------------------------------------------------
    // Management, debugging, profiling
    // ------------------------------------------------------------------

    /// Removes the lock object for `m` from the service (`gls_free`).
    /// Returns `true` if a lock object existed.
    pub fn free<T: ?Sized>(&self, m: &T) -> bool {
        self.free_addr(Self::address_of(m))
    }

    /// [`GlsService::free`] for a raw address.
    ///
    /// The free runs the **pending-free protocol**: the entry is published
    /// in the retired map (the pending-free marker) and its epoch is
    /// retired *before* the address is unmapped from the table, all under
    /// the retired mutex. The epoch-parity check under that mutex makes
    /// one free the unique claimant per live cycle (a concurrent free of
    /// the same address observes the odd epoch and reports `false`), and
    /// the marker-before-remove order means a release path that misses the
    /// table always finds the entry in the marker map — deterministically,
    /// with no remove→park window and no sleeps anywhere (see
    /// `entry_for_release`).
    pub fn free_addr(&self, addr: usize) -> bool {
        let Some(ptr) = self.table.get(addr) else {
            return false;
        };
        let entry = Self::entry_ref(ptr);
        {
            let Ok(mut retired) = self.retired.lock() else {
                return false;
            };
            let epoch = entry.epoch();
            if !LockEntry::epoch_is_live(epoch) {
                // A concurrent free already claimed this cycle (and does —
                // or did — the table removal).
                return false;
            }
            // Precise invalidation: bump only *this* entry's epoch. Any
            // per-thread cache slot holding this mapping fails its next
            // epoch validation and drops itself; cached mappings for every
            // other address — on every thread — stay hot. The allocation
            // itself is never reclaimed (or reinitialized) while the
            // service lives: it is parked here and resurrected as-is if
            // the same address is re-created (see `entry_for`), so racing
            // users never observe freed or repurposed memory, and a holder
            // caught by a racing free still releases through the marker.
            entry.retire();
            if let Some(previous) = retired.parked.insert(addr, PendingFree { ptr, epoch }) {
                if previous.ptr != ptr {
                    // Defensive only: per-address allocations are stable
                    // under the pending-free protocol, so a previous marker
                    // can only name the same pointer (re-stamped epoch).
                    retired.displaced.push(previous.ptr);
                }
            }
        }
        // A retired lock serves no traffic: drop it from the live
        // blocking-lock population the Auto backend heuristic reads
        // (re-entered on resurrection; CAS-guarded against a racing
        // holder's adaptation).
        entry.lock.note_retired();
        // The claimant's removal cannot miss: every other free of this
        // cycle bailed on the odd epoch above, and a re-create cannot run
        // until the address is unmapped (`put_if_absent` holds the bucket
        // lock across its existence check and insert).
        let removed = self.table.remove(addr);
        debug_assert_eq!(removed, Some(ptr), "pending-free claimant lost its removal");
        true
    }

    /// Number of retired (freed, not yet resurrected) lock entries parked in
    /// the service: one per freed address that has not been re-created.
    /// Lock/free churn over a working set of addresses therefore stays
    /// bounded by that working set instead of growing per free.
    pub fn retired_count(&self) -> usize {
        self.retired
            .lock()
            .map(|r| r.parked.len() + r.displaced.len())
            .unwrap_or(0)
    }

    /// Number of lock objects currently managed by the service.
    pub fn lock_count(&self) -> usize {
        self.table.len()
    }

    /// Number of this service's locks currently operating in a blocking
    /// mode (GLK mutex mode, GLK-RW blocking mode). This is the density
    /// signal the [`BlockingBackend::Auto`](crate::glk::BlockingBackend)
    /// heuristic reads to migrate blocking state between per-lock
    /// `Mutex + Condvar` pairs and the shared parking lot.
    pub fn blocking_lock_count(&self) -> usize {
        self.config.glk.density.density().live()
    }

    /// Issues detected so far (debug mode).
    pub fn issues(&self) -> Vec<GlsError> {
        self.debug.issues()
    }

    /// Total candidate deadlock cycles produced by debug-mode detection
    /// walks so far — confirmed *and* phantom. A high rate with an empty
    /// issue log means the workload keeps assembling phantom cycles
    /// (adversarial churn) and paying confirmation waits; the coalescing of
    /// same-cycle confirmations bounds each cycle's cost at one grace
    /// period regardless of this rate.
    pub fn deadlock_candidates(&self) -> u64 {
        self.debug.candidate_count()
    }

    /// Clears the recorded issues.
    pub fn clear_issues(&self) {
        self.debug.clear_issues();
    }

    /// Statistics of the underlying address → lock table.
    pub fn table_stats(&self) -> ClhtStats {
        self.table.stats()
    }

    /// Builds a profiler report over every lock object (meaningful when the
    /// service runs in [`GlsMode::Profile`]).
    pub fn profile_report(&self) -> ProfileReport {
        let mut locks = Vec::new();
        self.table.for_each(|_, ptr| {
            let entry = Self::entry_ref(ptr);
            // Fold the per-thread stat shards (profile mode) and the base
            // stats (debug mode) into one profile per lock.
            let totals = entry.profile_totals();
            locks.push(LockProfile {
                addr: entry.addr,
                algorithm: entry.lock.kind(),
                acquisitions: totals.acquisitions,
                avg_queue: totals.avg_queue(),
                avg_lock_latency: totals.avg_lock_latency(),
                avg_cs_latency: totals.avg_cs_latency(),
            });
        });
        ProfileReport::new(locks)
    }

    /// Collects the GLK mode transitions of every adaptive lock (only
    /// populated when the GLK configuration enables transition recording).
    pub fn glk_transitions(&self) -> Vec<(usize, Vec<ModeTransition>)> {
        let mut out = Vec::new();
        self.table.for_each(|addr, ptr| {
            let entry = Self::entry_ref(ptr);
            if let Some(glk) = entry.lock.as_glk() {
                let transitions = glk.transitions();
                if !transitions.is_empty() {
                    out.push((addr, transitions));
                }
            }
        });
        out
    }

    /// Flight-recorder trails dumped by confirmed deadlocks (debug mode):
    /// one per confirmed cycle, holding the confirming thread's most recent
    /// lock events. Empty until a deadlock has been confirmed.
    pub fn deadlock_trails(&self) -> Vec<DeadlockTrail> {
        self.debug.trails()
    }

    /// Captures a [`TelemetrySnapshot`]: per-lock profiles with latency
    /// distributions, cache/parking/cohort/migration counters and
    /// deadlock-detector activity. Cheap enough to call periodically — one
    /// table walk plus relaxed counter reads; concurrent updates may or may
    /// not be included (the same racy-snapshot semantics every report here
    /// has).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut locks = Vec::new();
        let mut glk_transitions = 0;
        self.table.for_each(|_, ptr| {
            let entry = Self::entry_ref(ptr);
            let totals = entry.profile_totals();
            let transitions = entry.lock.transition_count();
            glk_transitions += transitions;
            locks.push(LockTelemetry {
                addr: entry.addr,
                algorithm: entry.lock.kind(),
                acquisitions: totals.acquisitions,
                avg_queue: totals.avg_queue(),
                avg_lock_latency: totals.avg_lock_latency(),
                avg_cs_latency: totals.avg_cs_latency(),
                lock_latency: HistogramSummary::of(&entry.lock_latency_histogram()),
                cs_latency: HistogramSummary::of(&entry.cs_latency_histogram()),
                transitions,
            });
        });
        locks.sort_by(|a, b| {
            b.avg_queue
                .partial_cmp(&a.avg_queue)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let confirmed = self
            .debug
            .issues()
            .iter()
            .filter(|i| matches!(i, GlsError::Deadlock { .. }))
            .count() as u64;
        TelemetrySnapshot {
            mode: self.config.mode,
            sampling_budget: self.config.sampling_budget,
            lock_count: self.lock_count(),
            retired_count: self.retired_count(),
            locks,
            cache: cache::aggregated_cache_stats(),
            parking_lot: gls_locks::ParkingLot::global().stats(),
            cohort: gls_locks::cohort_stats(),
            auto_migrations: crate::glk::auto_migration_stats(),
            glk_transitions,
            deadlock: DeadlockTelemetry {
                candidates: self.debug.candidate_count(),
                confirmed,
            },
        }
    }

    /// Spawns a background thread that publishes a fresh
    /// [`TelemetrySnapshot`] to `sink` every `interval`. The returned
    /// handle stops and joins the thread when dropped (or via
    /// [`TelemetryPublisher::stop`]).
    pub fn spawn_telemetry_publisher(
        self: &Arc<Self>,
        interval: Duration,
        sink: impl FnMut(&TelemetrySnapshot) + Send + 'static,
    ) -> TelemetryPublisher {
        TelemetryPublisher::spawn(Arc::clone(self), interval, sink)
    }

    /// The lock algorithm currently associated with `addr`, if any.
    pub fn algorithm_of(&self, addr: usize) -> Option<LockKind> {
        self.find_entry(addr).map(|e| e.lock.kind())
    }

    /// The thread currently recorded as owner of `addr` (debug mode only).
    pub fn owner_of(&self, addr: usize) -> Option<ThreadId> {
        self.find_entry(addr).and_then(|e| e.owner())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn entry_ref<'a>(ptr: usize) -> &'a LockEntry {
        // SAFETY: entry allocations are only reclaimed when the service is
        // dropped — free() retires the entry and entry_for() resurrects it
        // untouched for the same address; neither deallocates or rewrites —
        // so any pointer obtained from the table or the cache stays valid
        // for the service lifetime, which outlives every `&self` borrow
        // handing it out.
        unsafe { &*(ptr as *const LockEntry) }
    }

    /// Probes the calling thread's lock cache for `addr`. A candidate slot
    /// is validated against the entry's **own** liveness epoch, read at hit
    /// time: the token travels with the entry, so there is no window in
    /// which a racing `free` can slip between a stale validity check and
    /// the cached deref. The whole hit path is load → compare → deref →
    /// load → compare — no atomic read-modify-write, no shared store.
    #[inline]
    fn cache_probe(&self, addr: usize) -> Option<&LockEntry> {
        if !self.config.lock_cache {
            return None;
        }
        cache::lookup(self.id, addr, |ptr, cached_epoch| {
            Self::entry_ref(ptr).epoch() == cached_epoch
        })
        .map(Self::entry_ref)
    }

    /// Caches `addr → entry`, stamping the epoch observed *after* the entry
    /// was obtained from the table. If the entry was retired in the
    /// meantime (odd epoch), nothing is cached: a slot must never hold a
    /// mapping that was already stale when it was stored.
    #[inline]
    fn cache_insert(&self, addr: usize, ptr: usize) {
        if !self.config.lock_cache {
            return;
        }
        let epoch = Self::entry_ref(ptr).epoch();
        if LockEntry::epoch_is_live(epoch) {
            cache::store(self.id, addr, ptr, epoch);
        }
    }

    /// Finds the entry for `addr` without creating it.
    #[inline]
    fn find_entry(&self, addr: usize) -> Option<&LockEntry> {
        if let Some(entry) = self.cache_probe(addr) {
            return Some(entry);
        }
        let ptr = self.table.get(addr)?;
        self.cache_insert(addr, ptr);
        Some(Self::entry_ref(ptr))
    }

    /// Finds the pending-free / retired entry for `addr`, if one is
    /// published. Used by the release paths so a `free` racing with a lock
    /// holder can never strand the holder: its release still lands on the
    /// marked entry.
    fn pending_entry(&self, addr: usize) -> Option<&LockEntry> {
        self.retired
            .lock()
            .ok()
            .and_then(|retired| retired.parked.get(&addr).map(|pending| pending.ptr))
            .map(Self::entry_ref)
    }

    /// Resolves `addr` for a release: the live entry, or the one a racing
    /// (or completed) `free` published as a pending-free marker. The
    /// marker protocol makes this **deterministic and sleep-free**: a free
    /// publishes the marker *before* unmapping the table entry, and a
    /// resurrecting create clears the stale marker only *after*
    /// re-publishing the entry — so at every instant a created-and-not
    /// -freed-forever address is findable in the table or in the marker
    /// map. A table miss followed by a marker miss can therefore only mean
    /// "genuinely uninitialized" or "resurrected between the two probes";
    /// the final table re-check distinguishes them, and each loop
    /// iteration requires another full free+re-create cycle to have
    /// interleaved — progress is bounded by the application's own churn,
    /// never by the scheduler.
    fn entry_for_release(&self, addr: usize) -> Option<&LockEntry> {
        loop {
            if let Some(entry) = self.find_entry(addr) {
                return Some(entry);
            }
            if let Some(entry) = self.pending_entry(addr) {
                return Some(entry);
            }
            // Genuinely uninitialized unless the entry was resurrected
            // between the probes — then the table has it and the next
            // iteration finds it.
            self.table.get(addr)?;
        }
    }

    /// Finds or creates the entry for `addr` using algorithm `kind`.
    #[inline]
    fn entry_for(&self, addr: usize, kind: LockKind) -> &LockEntry {
        assert_ne!(addr, 0, "GLS does not accept NULL (address 0) as a lock");
        if let Some(entry) = self.cache_probe(addr) {
            return entry;
        }
        let mut resurrected = false;
        let ptr = self.table.put_if_absent(addr, || {
            // Resurrect the retired entry for this address if one exists:
            // the entry is reinserted *untouched* except for its liveness
            // epoch (its allocation is never dropped or rewritten while the
            // service lives, so even a racing user — or the deadlock
            // detector's owner walk — holding a stale pointer only ever
            // sees a valid entry for this address). This keeps lock/free
            // churn at a bounded footprint: repeated cycles reuse the same
            // allocation instead of leaking one per free. The marker is
            // only *peeked*, not removed — it keeps covering releases that
            // race this resurrection until the entry is back in the table;
            // the stale marker is cleared after `put_if_absent` returns.
            // Note the algorithm chosen at first creation is resurrected
            // with it; as with `put_if_absent` generally, the first
            // creation of an address wins and debug mode flags kind
            // mismatches.
            let recycled = self
                .retired
                .lock()
                .ok()
                .and_then(|retired| retired.parked.get(&addr).map(|pending| pending.ptr));
            match recycled {
                Some(ptr) => {
                    // Back to even *before* the pointer is re-published, so
                    // no thread can cache the entry mid-transition. The
                    // factory runs at most once per key (under the table's
                    // bucket lock), so resurrection cannot double-run.
                    let entry = Self::entry_ref(ptr);
                    entry.resurrect();
                    // A lock that retired in a blocking mode rejoins the
                    // live blocking population.
                    entry.lock.note_resurrected();
                    resurrected = true;
                    ptr
                }
                None => {
                    let lock = AlgorithmLock::new(kind, &self.config.glk, &self.config.monitor);
                    Box::into_raw(Box::new(LockEntry::new(addr, lock))) as usize
                }
            }
        });
        if resurrected {
            self.clear_stale_marker(addr, ptr);
        }
        self.cache_insert(addr, ptr);
        Self::entry_ref(ptr)
    }

    /// After a resurrection re-published `ptr` in the table, clears the
    /// now-stale pending-free marker — but only if it is *provably* stale:
    /// same allocation, entry currently live, and the marker's epoch stamp
    /// strictly older than the entry's (a fresh marker published by the
    /// *next* free of this address carries the resurrected epoch or newer,
    /// or finds the entry already retired again — both kept).
    fn clear_stale_marker(&self, addr: usize, ptr: usize) {
        if let Ok(mut retired) = self.retired.lock() {
            let current = Self::entry_ref(ptr).epoch();
            let stale = retired.parked.get(&addr).is_some_and(|pending| {
                pending.ptr == ptr && LockEntry::epoch_is_live(current) && pending.epoch < current
            });
            if stale {
                retired.parked.remove(&addr);
            }
        }
    }

    #[inline]
    fn lock_impl(&self, addr: usize, kind: LockKind) -> Result<(), GlsError> {
        let entry = self.entry_for(addr, kind);
        match self.config.mode {
            GlsMode::Normal => {
                entry.lock.lock();
                Ok(())
            }
            GlsMode::Profile => {
                // All statistics go to the calling thread's cache-padded
                // shard: contended acquirers no longer serialize on a
                // shared stat cacheline before even reaching the lock word.
                let shards = entry.profile_shards();
                let slot = shards.slot();
                if sampler::should_sample(self.config.sampling_budget) {
                    slot.record_queue_sample(entry.lock.queue_length());
                    let start = cycles::now();
                    entry.lock.lock();
                    let acquired = cycles::now();
                    let waited = acquired.wrapping_sub(start);
                    slot.record_lock_latency(waited);
                    shards.record_lock_latency_hist(waited);
                    // Fresh stamp *after* the latency bookkeeping: the
                    // critical-section measurement must not include the
                    // recording work above, which is warm when every
                    // acquisition is measured but cold (and several times
                    // slower) at 1-in-N sampling — a systematic bias the
                    // sampling-fidelity test catches.
                    entry.stamp_acquired(cycles::now());
                } else {
                    // Unmeasured acquisition: no cycle reads, no queue
                    // probe, no stamp (so the matching release also skips
                    // its cycle read) — but the count stays exact.
                    entry.lock.lock();
                }
                slot.record_acquisition();
                Ok(())
            }
            GlsMode::Debug => self.debug_acquire(entry, addr, kind, false),
        }
    }

    fn read_lock_impl(&self, addr: usize) -> Result<(), GlsError> {
        let entry = self.entry_for(addr, LockKind::Rw);
        match self.config.mode {
            GlsMode::Normal => {
                entry.lock.read_lock();
                Ok(())
            }
            GlsMode::Profile => {
                let shards = entry.profile_shards();
                let slot = shards.slot();
                if sampler::should_sample(self.config.sampling_budget) {
                    slot.record_queue_sample(entry.lock.queue_length());
                    let start = cycles::now();
                    entry.lock.read_lock();
                    let acquired = cycles::now();
                    let waited = acquired.wrapping_sub(start);
                    slot.record_lock_latency(waited);
                    shards.record_lock_latency_hist(waited);
                    // No critical-section stamp: shared holders overlap, and
                    // two readers may share a stat shard, so their sections
                    // are not individually timed.
                } else {
                    entry.lock.read_lock();
                }
                slot.record_acquisition();
                Ok(())
            }
            GlsMode::Debug => self.debug_acquire(entry, addr, LockKind::Rw, true),
        }
    }

    fn try_read_lock_impl(&self, addr: usize) -> Result<bool, GlsError> {
        let entry = self.entry_for(addr, LockKind::Rw);
        match self.config.mode {
            GlsMode::Normal => Ok(entry.lock.try_read_lock()),
            GlsMode::Profile => {
                let shards = entry.profile_shards();
                let slot = shards.slot();
                if sampler::should_sample(self.config.sampling_budget) {
                    slot.record_queue_sample(entry.lock.queue_length());
                    let start = cycles::now();
                    let acquired = entry.lock.try_read_lock();
                    if acquired {
                        let now = cycles::now();
                        let waited = now.wrapping_sub(start);
                        slot.record_lock_latency(waited);
                        shards.record_lock_latency_hist(waited);
                        slot.record_acquisition();
                    }
                    Ok(acquired)
                } else {
                    let acquired = entry.lock.try_read_lock();
                    if acquired {
                        slot.record_acquisition();
                    }
                    Ok(acquired)
                }
            }
            GlsMode::Debug => {
                let me = ThreadId::current();
                if entry.owner() == Some(me) || entry.has_reader(me) {
                    let issue = GlsError::DoubleLock { addr, thread: me };
                    self.debug.record(issue.clone());
                    return Err(issue);
                }
                let acquired = entry.lock.try_read_lock();
                if acquired {
                    entry.add_reader(me);
                    entry.stats.record_acquisition();
                }
                Ok(acquired)
            }
        }
    }

    fn read_unlock_impl(&self, addr: usize) -> Result<(), GlsError> {
        // Same racing-free fallback as `unlock_impl`: a shared holder's
        // release lands on the retired entry rather than stranding it.
        let Some(entry) = self.entry_for_release(addr) else {
            let issue = GlsError::UninitializedLock { addr };
            if self.config.mode == GlsMode::Debug {
                self.debug.record(issue.clone());
            }
            return Err(issue);
        };
        if self.config.mode == GlsMode::Debug {
            let me = ThreadId::current();
            if !entry.remove_reader(me) {
                // Non-rw entries degrade shared acquisitions to exclusive
                // ones, recorded as ownership; release that instead.
                if !entry.lock.is_rw() && entry.owner() == Some(me) {
                    entry.clear_owner();
                } else {
                    let issue = match entry.holders().first() {
                        Some(&holder) => GlsError::WrongOwner {
                            addr,
                            owner: holder,
                            caller: me,
                        },
                        None => GlsError::ReleaseFreeLock { addr },
                    };
                    self.debug.record(issue.clone());
                    return Err(issue);
                }
            }
        }
        entry.lock.read_unlock();
        Ok(())
    }

    /// The debug-mode acquisition path, for exclusive (`shared == false`)
    /// and shared (`shared == true`) requests alike.
    ///
    /// Deadlock detection piggybacks on the real blocking acquire instead of
    /// polling `try_lock`, which would both destroy the FIFO admission order
    /// of ticket/MCS/CLH entries and burn a hardware context:
    ///
    /// 1. publish the waits-for edge, then attempt a single `try_lock`;
    /// 2. on contention, walk the owner/waits-for graph. A candidate cycle
    ///    is re-validated after [`GlsConfig::deadlock_check_after`] — real
    ///    deadlocks are frozen, phantom cycles assembled from a non-atomic
    ///    walk dissolve — and only a confirmed cycle is reported;
    /// 3. with no cycle in sight, commit to the lock's own blocking acquire
    ///    (queue entry, spin-then-yield or parking — whatever the algorithm
    ///    does). A deadlock formed *later* must be closed by another thread
    ///    publishing its own waits-for edge, and that thread's walk — every
    ///    edge store and load is SeqCst — sees this thread's edge and
    ///    reports the cycle, breaking it by not blocking.
    fn debug_acquire(
        &self,
        entry: &LockEntry,
        addr: usize,
        kind: LockKind,
        shared: bool,
    ) -> Result<(), GlsError> {
        let me = ThreadId::current();
        if entry.owner() == Some(me) || entry.has_reader(me) {
            // Re-entry in any holder role is flagged: rw entries are
            // writer-preferring, so even a recursive read can self-deadlock
            // behind a writer that waits on the first read hold.
            let issue = GlsError::DoubleLock { addr, thread: me };
            self.debug.record(issue.clone());
            return Err(issue);
        }
        if kind != entry.lock.kind() {
            self.debug.record(GlsError::AlgorithmMismatch {
                addr,
                created: entry.lock.kind(),
                requested: kind,
            });
        }
        self.debug.set_waiting(me, addr);
        let try_acquire = || {
            if shared {
                entry.lock.try_read_lock()
            } else {
                entry.lock.try_lock()
            }
        };
        if !try_acquire() {
            // Contended debug-mode acquire: leave a trail for the flight
            // recorder before (possibly) blocking, so a later confirmed
            // deadlock can show which contended acquisitions led up to it.
            gls_runtime::flight::record(
                gls_runtime::flight::FlightEventKind::SlowPathAcquire,
                addr,
                0,
            );
            loop {
                let Some(candidate) = self
                    .debug
                    .detect_deadlock(me, addr, |a| self.holders_of_uncached(a))
                else {
                    // No cycle in sight: hand over to the real blocking
                    // acquire of the underlying algorithm.
                    if shared {
                        entry.lock.read_lock();
                    } else {
                        entry.lock.lock();
                    }
                    break;
                };
                // Confirmations of the same cycle are coalesced onto one
                // shared deadline: every participant (and every
                // re-detection under adversarial churn) waits out at most
                // the *remainder* of one grace period instead of stacking
                // a fresh full period per candidate.
                let wait = self
                    .debug
                    .confirmation_wait(&candidate, self.config.deadlock_check_after);
                if !wait.is_zero() {
                    // A wall-clock grace period is the detector's contract
                    // (deadlock_check_after); nothing can signal it early.
                    #[allow(clippy::disallowed_methods)]
                    std::thread::sleep(wait);
                }
                // The lock may have been released while we slept.
                if try_acquire() {
                    self.debug.finish_confirmation(&candidate);
                    break;
                }
                let deadlocked = self
                    .debug
                    .still_deadlocked(&candidate, |a| self.holders_of_uncached(a));
                self.debug.finish_confirmation(&candidate);
                if deadlocked {
                    self.debug.clear_waiting(me);
                    // Dump this thread's flight-recorder trail: the events
                    // leading up to a confirmed deadlock are exactly the
                    // trail an operator needs to replay how it formed.
                    gls_runtime::flight::record(
                        gls_runtime::flight::FlightEventKind::DeadlockCandidate,
                        addr,
                        candidate.cycle.len() as u64,
                    );
                    let trail = DeadlockTrail {
                        thread: me,
                        cycle: candidate.cycle.clone(),
                        events: gls_runtime::flight::drain(),
                    };
                    eprintln!(
                        "[GLS] confirmed deadlock ({} threads); dumping {} flight events of thread {}",
                        candidate.cycle.len().saturating_sub(1),
                        trail.events.len(),
                        me.as_u32(),
                    );
                    for event in &trail.events {
                        eprintln!(
                            "[GLS]   {} addr={:#x} info={} at={}",
                            event.kind.as_str(),
                            event.addr,
                            event.info,
                            event.at,
                        );
                    }
                    self.debug.record_trail(trail);
                    let issue = GlsError::Deadlock {
                        cycle: candidate.cycle,
                    };
                    self.debug.record(issue.clone());
                    return Err(issue);
                }
                // Phantom cycle: something moved in the meantime; re-walk.
            }
        }
        self.debug.clear_waiting(me);
        if shared {
            entry.add_reader(me);
        } else {
            entry.set_owner(me);
        }
        entry.stats.record_acquisition();
        Ok(())
    }

    /// Holder lookup that bypasses the per-thread cache (the deadlock
    /// detector inspects other threads' locks, which would otherwise evict
    /// the caller's cached entry). Returns every holder: the exclusive owner
    /// or, for rw entries, all shared readers.
    fn holders_of_uncached(&self, addr: usize) -> Vec<ThreadId> {
        match self.table.get(addr) {
            Some(ptr) => Self::entry_ref(ptr).holders(),
            None => Vec::new(),
        }
    }

    fn try_lock_impl(&self, addr: usize, kind: LockKind) -> Result<bool, GlsError> {
        let entry = self.entry_for(addr, kind);
        match self.config.mode {
            GlsMode::Normal => Ok(entry.lock.try_lock()),
            GlsMode::Profile => {
                let shards = entry.profile_shards();
                let slot = shards.slot();
                if sampler::should_sample(self.config.sampling_budget) {
                    slot.record_queue_sample(entry.lock.queue_length());
                    let start = cycles::now();
                    let acquired = entry.lock.try_lock();
                    if acquired {
                        let now = cycles::now();
                        let waited = now.wrapping_sub(start);
                        slot.record_lock_latency(waited);
                        shards.record_lock_latency_hist(waited);
                        // Fresh stamp after the bookkeeping (see lock_impl).
                        entry.stamp_acquired(cycles::now());
                        slot.record_acquisition();
                    }
                    Ok(acquired)
                } else {
                    let acquired = entry.lock.try_lock();
                    if acquired {
                        slot.record_acquisition();
                    }
                    Ok(acquired)
                }
            }
            GlsMode::Debug => {
                let me = ThreadId::current();
                if entry.owner() == Some(me) {
                    let issue = GlsError::DoubleLock { addr, thread: me };
                    self.debug.record(issue.clone());
                    return Err(issue);
                }
                let acquired = entry.lock.try_lock();
                if acquired {
                    entry.set_owner(me);
                    entry.stats.record_acquisition();
                }
                Ok(acquired)
            }
        }
    }

    #[inline]
    fn unlock_impl(&self, addr: usize, expected_kind: Option<LockKind>) -> Result<(), GlsError> {
        // A `free` racing with a lock holder must never strand the holder:
        // if the address is gone from the table but its entry is parked in
        // the retired set, the release lands on the parked entry (debug
        // mode still applies its ownership checks to it).
        let Some(entry) = self.entry_for_release(addr) else {
            let issue = GlsError::UninitializedLock { addr };
            if self.config.mode == GlsMode::Debug {
                self.debug.record(issue.clone());
            }
            return Err(issue);
        };
        if self.config.mode == GlsMode::Debug {
            let me = ThreadId::current();
            match entry.owner() {
                None => {
                    let issue = GlsError::ReleaseFreeLock { addr };
                    self.debug.record(issue.clone());
                    return Err(issue);
                }
                Some(owner) if owner != me => {
                    let issue = GlsError::WrongOwner {
                        addr,
                        owner,
                        caller: me,
                    };
                    self.debug.record(issue.clone());
                    return Err(issue);
                }
                Some(_) => {}
            }
            if let Some(kind) = expected_kind {
                if kind != entry.lock.kind() {
                    self.debug.record(GlsError::AlgorithmMismatch {
                        addr,
                        created: entry.lock.kind(),
                        requested: kind,
                    });
                }
            }
            entry.clear_owner();
        }
        if self.config.mode == GlsMode::Profile {
            // The stamp is consumed from the entry (see `stamp_acquired`),
            // so cross-thread releases are timed correctly; the sample
            // itself goes to the releasing thread's shard.
            let acquired_at = entry.take_acquired();
            if acquired_at != 0 {
                let now = cycles::now();
                let held = now.wrapping_sub(acquired_at);
                let shards = entry.profile_shards();
                shards.slot().record_cs_latency(held);
                shards.record_cs_latency_hist(held);
            }
        }
        entry.lock.unlock();
        Ok(())
    }
}

impl Drop for GlsService {
    fn drop(&mut self) {
        // Reclaim every live entry and every retired entry. `&mut self`
        // guarantees no concurrent access. A pending-free marker may name
        // an entry that is *also* live in the table (the marker is
        // published before the removal and cleared after a resurrection),
        // so the pointer list must be deduplicated before freeing.
        let mut pointers = Vec::new();
        self.table.for_each(|_, ptr| pointers.push(ptr));
        if let Ok(mut retired) = self.retired.lock() {
            pointers.extend(retired.parked.drain().map(|(_, pending)| pending.ptr));
            pointers.append(&mut retired.displaced);
        }
        pointers.sort_unstable();
        pointers.dedup();
        for ptr in pointers {
            // SAFETY: entries were allocated with Box::into_raw and the
            // dedup above guarantees each allocation is freed exactly once.
            unsafe { drop(Box::from_raw(ptr as *mut LockEntry)) };
        }
    }
}

/// RAII guard returned by [`GlsService::guard`]; releases the lock on drop.
#[derive(Debug)]
pub struct GlsGuard<'a> {
    service: &'a GlsService,
    addr: usize,
}

impl GlsGuard<'_> {
    /// The address this guard protects.
    pub fn addr(&self) -> usize {
        self.addr
    }
}

impl Drop for GlsGuard<'_> {
    fn drop(&mut self) {
        // Releasing a lock we acquired cannot fail in normal mode; in debug
        // mode a failure would itself be recorded in the issue log.
        let _ = self.service.unlock_addr(self.addr);
    }
}

/// RAII guard for shared access, returned by [`GlsService::read_guard`];
/// releases the read hold on drop.
#[derive(Debug)]
pub struct GlsReadGuard<'a> {
    service: &'a GlsService,
    addr: usize,
}

impl GlsReadGuard<'_> {
    /// The address this guard protects.
    pub fn addr(&self) -> usize {
        self.addr
    }
}

impl Drop for GlsReadGuard<'_> {
    fn drop(&mut self) {
        let _ = self.service.read_unlock_addr(self.addr);
    }
}

/// RAII guard for exclusive access, returned by
/// [`GlsService::write_guard`]; releases the write hold on drop.
#[derive(Debug)]
pub struct GlsWriteGuard<'a> {
    service: &'a GlsService,
    addr: usize,
}

impl GlsWriteGuard<'_> {
    /// The address this guard protects.
    pub fn addr(&self) -> usize {
        self.addr
    }
}

impl Drop for GlsWriteGuard<'_> {
    fn drop(&mut self) {
        let _ = self.service.write_unlock_addr(self.addr);
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::glk::GlkConfig;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_unlock_arbitrary_values() {
        let svc = GlsService::new();
        // Any non-zero value works as a lock identity, like gls_lock(17).
        svc.lock_addr(17).unwrap();
        svc.unlock_addr(17).unwrap();
        assert_eq!(svc.lock_count(), 1);
    }

    #[test]
    fn unlock_of_unknown_address_reports_uninitialized() {
        let svc = GlsService::new();
        let err = svc.unlock_addr(0x1234).unwrap_err();
        assert_eq!(err.category(), "uninitialized-lock");
    }

    #[test]
    #[should_panic(expected = "NULL")]
    fn null_address_is_rejected() {
        GlsService::new().lock_addr(0).unwrap();
    }

    #[test]
    fn guard_releases_on_drop() {
        let svc = GlsService::new();
        let data = 5u32;
        {
            let _g = svc.guard(&data).unwrap();
            assert!(!svc.try_lock(&data).unwrap());
        }
        assert!(svc.try_lock(&data).unwrap());
        svc.unlock(&data).unwrap();
    }

    #[test]
    fn explicit_interface_creates_requested_algorithm() {
        let svc = GlsService::new();
        svc.lock_with(LockKind::Mcs, 0x10).unwrap();
        svc.unlock_with(LockKind::Mcs, 0x10).unwrap();
        assert_eq!(svc.algorithm_of(0x10), Some(LockKind::Mcs));
        svc.lock_with(LockKind::Ticket, 0x20).unwrap();
        svc.unlock_with(LockKind::Ticket, 0x20).unwrap();
        assert_eq!(svc.algorithm_of(0x20), Some(LockKind::Ticket));
        // The default interface creates GLK entries.
        svc.lock_addr(0x30).unwrap();
        svc.unlock_addr(0x30).unwrap();
        assert_eq!(svc.algorithm_of(0x30), Some(LockKind::Glk));
    }

    #[test]
    fn free_removes_lock_object() {
        let svc = GlsService::new();
        svc.lock_addr(0x40).unwrap();
        svc.unlock_addr(0x40).unwrap();
        assert_eq!(svc.lock_count(), 1);
        assert!(svc.free_addr(0x40));
        assert!(!svc.free_addr(0x40));
        assert_eq!(svc.lock_count(), 0);
        // The address can be re-created afterwards.
        svc.lock_addr(0x40).unwrap();
        svc.unlock_addr(0x40).unwrap();
        assert_eq!(svc.lock_count(), 1);
    }

    #[test]
    fn many_threads_many_locks_mutual_exclusion() {
        let svc = Arc::new(GlsService::new());
        let slots: Arc<Vec<std::sync::atomic::AtomicU64>> = Arc::new(
            (0..16)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
        );
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let svc = Arc::clone(&svc);
                let slots = Arc::clone(&slots);
                std::thread::spawn(move || {
                    for i in 0..5_000usize {
                        let slot = (t * 31 + i) % slots.len();
                        let addr = 0x1000 + slot;
                        svc.lock_addr(addr).unwrap();
                        // Read-modify-write that would lose updates without
                        // mutual exclusion per address.
                        let v = slots[slot].load(Ordering::Relaxed);
                        slots[slot].store(v + 1, Ordering::Relaxed);
                        svc.unlock_addr(addr).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 8 * 5_000);
        assert_eq!(svc.lock_count(), 16);
    }

    #[test]
    fn debug_mode_detects_double_lock_and_release_free() {
        let svc = GlsService::with_config(GlsConfig::debug());
        let obj = 1u8;
        svc.lock(&obj).unwrap();
        let err = svc.lock(&obj).unwrap_err();
        assert_eq!(err.category(), "double-lock");
        svc.unlock(&obj).unwrap();
        let err = svc.unlock(&obj).unwrap_err();
        assert_eq!(err.category(), "release-free-lock");
        let categories: Vec<_> = svc.issues().iter().map(|i| i.category()).collect();
        assert!(categories.contains(&"double-lock"));
        assert!(categories.contains(&"release-free-lock"));
    }

    #[test]
    fn debug_mode_detects_wrong_owner() {
        let svc = Arc::new(GlsService::with_config(GlsConfig::debug()));
        svc.lock_addr(0x99).unwrap();
        let svc2 = Arc::clone(&svc);
        let err = std::thread::spawn(move || svc2.unlock_addr(0x99).unwrap_err())
            .join()
            .unwrap();
        assert_eq!(err.category(), "wrong-owner");
        svc.unlock_addr(0x99).unwrap();
    }

    #[test]
    fn debug_mode_records_algorithm_mismatch() {
        let svc = GlsService::with_config(GlsConfig::debug());
        svc.lock_with(LockKind::Ticket, 0x77).unwrap();
        svc.unlock_with(LockKind::Ticket, 0x77).unwrap();
        svc.lock_with(LockKind::Mcs, 0x77).unwrap();
        svc.unlock_with(LockKind::Mcs, 0x77).unwrap();
        assert!(svc
            .issues()
            .iter()
            .any(|i| i.category() == "algorithm-mismatch"));
    }

    #[test]
    fn profile_mode_collects_latencies() {
        let svc = GlsService::with_config(GlsConfig::profile());
        for i in 0..100 {
            svc.lock_addr(0x200 + (i % 4)).unwrap();
            gls_runtime::spin_cycles(200);
            svc.unlock_addr(0x200 + (i % 4)).unwrap();
        }
        let report = svc.profile_report();
        assert_eq!(report.len(), 4);
        for lock in &report.locks {
            assert!(lock.acquisitions >= 25);
            assert!(lock.avg_cs_latency > 0.0, "cs latency should be recorded");
        }
    }

    #[test]
    fn glk_transitions_surface_through_service() {
        let config = GlsConfig::default().with_glk(
            GlkConfig::default()
                .with_adaptation_period(128)
                .with_sampling_period(8)
                .with_transition_recording(true),
        );
        let svc = Arc::new(GlsService::with_config(config));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        svc.lock_addr(0xabc).unwrap();
                        gls_runtime::spin_cycles(400);
                        svc.unlock_addr(0xabc).unwrap();
                    }
                })
            })
            .collect();
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while svc.glk_transitions().is_empty() && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let transitions = svc.glk_transitions();
        assert!(
            !transitions.is_empty(),
            "contended GLK lock should have adapted at least once"
        );
    }

    #[test]
    fn rw_interface_roundtrip_and_sharing() {
        let svc = GlsService::new();
        let data = [0u64; 4];
        svc.read_lock(&data).unwrap();
        svc.read_lock(&data).unwrap();
        assert!(
            !svc.try_write_lock(&data).unwrap(),
            "readers exclude writers"
        );
        assert!(svc.try_read_lock(&data).unwrap(), "readers share");
        svc.read_unlock(&data).unwrap();
        svc.read_unlock(&data).unwrap();
        svc.read_unlock(&data).unwrap();
        svc.write_lock(&data).unwrap();
        assert!(
            !svc.try_read_lock(&data).unwrap(),
            "writer excludes readers"
        );
        svc.write_unlock(&data).unwrap();
        assert_eq!(
            svc.algorithm_of(GlsService::address_of(&data)),
            Some(LockKind::Rw)
        );
    }

    #[test]
    fn rw_guards_release_on_drop() {
        let svc = GlsService::new();
        {
            let _r1 = svc.read_guard_addr(0x500).unwrap();
            let _r2 = svc.read_guard_addr(0x500).unwrap();
            assert!(!svc.try_write_lock_addr(0x500).unwrap());
        }
        {
            let _w = svc.write_guard_addr(0x500).unwrap();
            assert!(!svc.try_read_lock_addr(0x500).unwrap());
        }
        assert!(svc.try_write_lock_addr(0x500).unwrap());
        svc.write_unlock_addr(0x500).unwrap();
    }

    #[test]
    fn rw_read_unlock_of_unknown_address_reports_uninitialized() {
        let svc = GlsService::new();
        let err = svc.read_unlock_addr(0x7777).unwrap_err();
        assert_eq!(err.category(), "uninitialized-lock");
    }

    #[test]
    fn profile_mode_reports_rw_entries() {
        let svc = GlsService::with_config(GlsConfig::profile());
        for _ in 0..50 {
            svc.read_lock_addr(0x600).unwrap();
            svc.read_unlock_addr(0x600).unwrap();
        }
        for _ in 0..10 {
            svc.write_lock_addr(0x600).unwrap();
            gls_runtime::spin_cycles(200);
            svc.write_unlock_addr(0x600).unwrap();
        }
        let report = svc.profile_report();
        let rw = report
            .locks
            .iter()
            .find(|l| l.addr == 0x600)
            .expect("rw entry must appear in the profiler report");
        assert_eq!(rw.algorithm, LockKind::Rw);
        assert_eq!(rw.acquisitions, 60);
        assert!(rw.avg_cs_latency > 0.0, "write sections are timed");
    }

    #[test]
    fn debug_mode_detects_rw_misuse() {
        let svc = GlsService::with_config(GlsConfig::debug());
        svc.read_lock_addr(0x700).unwrap();
        // Recursive read is flagged: rw entries are writer-preferring, so a
        // second read hold can self-deadlock behind a waiting writer.
        let err = svc.read_lock_addr(0x700).unwrap_err();
        assert_eq!(err.category(), "double-lock");
        svc.read_unlock_addr(0x700).unwrap();
        // Releasing shared access nobody holds.
        let err = svc.read_unlock_addr(0x700).unwrap_err();
        assert_eq!(err.category(), "release-free-lock");
        // A thread that holds nothing cannot release another's read hold.
        let svc = Arc::new(svc);
        svc.read_lock_addr(0x700).unwrap();
        let svc2 = Arc::clone(&svc);
        let err = std::thread::spawn(move || svc2.read_unlock_addr(0x700).unwrap_err())
            .join()
            .unwrap();
        assert_eq!(err.category(), "wrong-owner");
        svc.read_unlock_addr(0x700).unwrap();
    }

    #[test]
    fn debug_mode_tracks_shared_holders_concurrently() {
        let svc = Arc::new(GlsService::with_config(GlsConfig::debug()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        svc.read_lock_addr(0x800).unwrap();
                        svc.read_unlock_addr(0x800).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            svc.issues().is_empty(),
            "well-formed shared locking must record no issues: {:?}",
            svc.issues()
        );
    }

    #[test]
    fn repeated_lock_free_cycles_keep_retired_list_bounded() {
        let svc = GlsService::new();
        // Churn over a 7-address working set: the retired list may hold at
        // most one parked entry per address, never one per free.
        for round in 0..1_000usize {
            let addr = 0x9000 + (round % 7) * 8;
            svc.lock_addr(addr).unwrap();
            svc.unlock_addr(addr).unwrap();
            assert!(svc.free_addr(addr));
            assert!(
                svc.retired_count() <= 7,
                "lock/free churn must resurrect entries, found {} retired after round {round}",
                svc.retired_count()
            );
        }
        assert_eq!(svc.lock_count(), 0);
        // Re-creating the working set drains the retired list entirely.
        for slot in 0..7usize {
            svc.lock_addr(0x9000 + slot * 8).unwrap();
            svc.unlock_addr(0x9000 + slot * 8).unwrap();
        }
        assert_eq!(svc.retired_count(), 0, "all parked entries resurrected");
        assert_eq!(svc.lock_count(), 7);
    }

    #[test]
    fn racing_free_never_strands_a_release() {
        // Stress of the pending-free protocol: lockers hammer one address
        // while a freer continuously free()s it. Every release must land —
        // the marker is published before the table removal, so there is no
        // window in which a holder's release can miss the entry — and the
        // per-address allocation stays stable, so mutual exclusion holds
        // across free/resurrect cycles (asserted by the non-atomic
        // counter). No sleeps anywhere on the release path.
        struct Shared(std::cell::UnsafeCell<u64>);
        // SAFETY: the cell is only touched while holding the lock under
        // test; that exclusion is exactly what the test verifies.
        unsafe impl Sync for Shared {}
        let svc = Arc::new(GlsService::new());
        let shared = Arc::new(Shared(std::cell::UnsafeCell::new(0)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let freer = {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut frees = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if svc.free_addr(0xF5EE) {
                        frees += 1;
                    }
                }
                frees
            })
        };
        let lockers: Vec<_> = (0..3)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        svc.lock_addr(0xF5EE).unwrap();
                        // SAFETY: written while holding the lock under test.
                        unsafe { *shared.0.get() += 1 };
                        svc.unlock_addr(0xF5EE)
                            .expect("a racing free must never strand a holder's release");
                    }
                })
            })
            .collect();
        for h in lockers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let frees = freer.join().unwrap();
        assert!(frees > 0, "the freer must have raced at least once");
        // SAFETY: all worker threads are joined; nothing races this read.
        assert_eq!(unsafe { *shared.0.get() }, 60_000);
        assert!(
            svc.retired_count() <= 2,
            "churn on one address keeps at most its one allocation parked \
             (found {})",
            svc.retired_count()
        );
    }

    #[test]
    fn pending_free_marker_covers_the_unmap_window() {
        // White-box: after free() returns, the entry must be reachable via
        // the marker map even though the table no longer has it, and a
        // re-create must clear the stale marker only after re-publishing.
        let svc = GlsService::new();
        svc.lock_addr(0xAB1E).unwrap();
        svc.unlock_addr(0xAB1E).unwrap();
        let live = svc.find_entry(0xAB1E).unwrap() as *const LockEntry;
        assert!(svc.free_addr(0xAB1E));
        assert!(svc.find_entry(0xAB1E).is_none(), "unmapped from the table");
        let pending = svc.pending_entry(0xAB1E).expect("marker present") as *const LockEntry;
        assert_eq!(live, pending, "the marker names the same allocation");
        // A release through the marker still works (normal mode).
        svc.lock_addr(0xAB1E).unwrap(); // resurrects
        assert_eq!(
            svc.pending_entry(0xAB1E).map(|e| e as *const LockEntry),
            None,
            "resurrection cleared the stale marker"
        );
        assert_eq!(
            svc.find_entry(0xAB1E).map(|e| e as *const LockEntry),
            Some(live),
            "resurrection reuses the allocation"
        );
        svc.unlock_addr(0xAB1E).unwrap();
    }

    #[test]
    fn freed_address_resurrects_with_its_original_algorithm() {
        // Resurrection reinserts the parked entry untouched, so the
        // algorithm chosen at first creation survives a free/re-create
        // cycle (first creation wins, as with put_if_absent generally).
        let svc = GlsService::new();
        svc.lock_with(LockKind::Mcs, 0xA000).unwrap();
        svc.unlock_with(LockKind::Mcs, 0xA000).unwrap();
        assert!(svc.free_addr(0xA000));
        assert_eq!(svc.retired_count(), 1);
        svc.lock_addr(0xA000).unwrap();
        svc.unlock_addr(0xA000).unwrap();
        assert_eq!(svc.algorithm_of(0xA000), Some(LockKind::Mcs));
        assert_eq!(svc.retired_count(), 0, "parked entry was resurrected");
    }

    #[test]
    fn notify_one_requeues_onto_a_held_futex_mutex() {
        use gls_locks::ParkingLot;
        let svc = Arc::new(GlsService::new());
        let cv = Arc::new(GlsCondvar::new());
        let addr = 0xC0DE;
        // Create a futex-backed mutex entry (always exposes a park address).
        svc.lock_with(LockKind::Futex, addr).unwrap();
        svc.unlock_with(LockKind::Futex, addr).unwrap();
        let waiter = {
            let (svc, cv) = (Arc::clone(&svc), Arc::clone(&cv));
            std::thread::spawn(move || {
                svc.lock_addr(addr).unwrap();
                svc.wait_addr(&cv, addr).unwrap();
                svc.unlock_addr(addr).unwrap();
            })
        };
        while cv.waiters() == 0 {
            std::thread::yield_now();
        }
        // Hold the mutex, then notify: the waiter must be requeued onto
        // the mutex's park address instead of waking into a block.
        svc.lock_addr(addr).unwrap();
        let mutex_park = svc
            .find_entry(addr)
            .unwrap()
            .park_addr()
            .expect("futex entries expose a park address");
        assert!(svc.notify_one_addr(&cv, addr));
        assert_eq!(
            ParkingLot::global().parked_count(mutex_park),
            1,
            "the waiter sleeps under the mutex address now"
        );
        assert_eq!(cv.waits(), 0, "requeued, not woken");
        // The mutex release is what wakes it.
        svc.unlock_addr(addr).unwrap();
        waiter.join().unwrap();
        assert_eq!(cv.waits(), 1);
        assert_eq!(cv.notifies(), 1);
    }

    #[test]
    fn notify_falls_back_to_plain_wake_without_a_park_address() {
        // A fresh GLK entry spins (ticket mode): no park address, so the
        // service notify degrades to the ordinary wake path.
        let svc = Arc::new(GlsService::new());
        let cv = Arc::new(GlsCondvar::new());
        let addr = 0xFA11;
        svc.lock_addr(addr).unwrap();
        svc.unlock_addr(addr).unwrap();
        assert_eq!(svc.find_entry(addr).unwrap().park_addr(), None);
        let waiter = {
            let (svc, cv) = (Arc::clone(&svc), Arc::clone(&cv));
            std::thread::spawn(move || {
                svc.lock_addr(addr).unwrap();
                svc.wait_addr(&cv, addr).unwrap();
                svc.unlock_addr(addr).unwrap();
            })
        };
        while cv.waiters() == 0 {
            std::thread::yield_now();
        }
        assert!(svc.notify_one_addr(&cv, addr));
        waiter.join().unwrap();
        assert_eq!(cv.waits(), 1);
        // Notifying with nobody waiting reports so.
        assert!(!svc.notify_one_addr(&cv, addr));
        assert_eq!(svc.notify_all_addr(&cv, addr), 0);
    }

    #[test]
    fn notify_all_morphs_the_broadcast_onto_the_mutex() {
        use gls_locks::ParkingLot;
        let svc = Arc::new(GlsService::new());
        let cv = Arc::new(GlsCondvar::new());
        let addr = 0xB0CA;
        svc.lock_with(LockKind::Futex, addr).unwrap();
        svc.unlock_with(LockKind::Futex, addr).unwrap();
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let (svc, cv) = (Arc::clone(&svc), Arc::clone(&cv));
                std::thread::spawn(move || {
                    svc.lock_addr(addr).unwrap();
                    svc.wait_addr(&cv, addr).unwrap();
                    svc.unlock_addr(addr).unwrap();
                })
            })
            .collect();
        while cv.waiters() < 4 {
            std::thread::yield_now();
        }
        svc.lock_addr(addr).unwrap();
        let mutex_park = svc.find_entry(addr).unwrap().park_addr().unwrap();
        assert_eq!(svc.notify_all_addr(&cv, addr), 4);
        // Held mutex: the whole broadcast morphs onto the mutex queue; no
        // thundering herd re-contends while we still hold it.
        assert_eq!(ParkingLot::global().parked_count(mutex_park), 4);
        assert_eq!(cv.waits(), 0);
        svc.unlock_addr(addr).unwrap();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(cv.waits(), 4);
        assert_eq!(ParkingLot::global().parked_count(mutex_park), 0);
    }

    #[test]
    fn freed_blocking_locks_leave_the_density_population() {
        use crate::glk::GlkMode;
        let config = GlsConfig::default().with_glk(
            GlkConfig::default()
                .with_initial_mode(GlkMode::Mutex)
                .without_adaptation(),
        );
        let svc = GlsService::with_config(config);
        svc.lock_addr(0xD100).unwrap();
        svc.unlock_addr(0xD100).unwrap();
        assert_eq!(svc.blocking_lock_count(), 1);
        // A freed (retired) lock serves no traffic: it must not keep
        // steering the Auto backend heuristic.
        assert!(svc.free_addr(0xD100));
        assert_eq!(
            svc.blocking_lock_count(),
            0,
            "retired blocking locks leave the population"
        );
        // Resurrection brings it back.
        svc.lock_addr(0xD100).unwrap();
        assert_eq!(
            svc.blocking_lock_count(),
            1,
            "resurrected blocking locks rejoin the population"
        );
        svc.unlock_addr(0xD100).unwrap();
    }

    #[test]
    fn global_service_is_singleton() {
        let a = GlsService::global() as *const _;
        let b = GlsService::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn table_stats_reflect_lock_count() {
        let svc = GlsService::new();
        for i in 1..=50 {
            svc.lock_addr(i * 8).unwrap();
            svc.unlock_addr(i * 8).unwrap();
        }
        let stats = svc.table_stats();
        assert_eq!(stats.elements, 50);
        assert_eq!(svc.lock_count(), 50);
    }
}
