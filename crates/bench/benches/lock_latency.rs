//! Criterion: uncontended lock/unlock latency of every algorithm.
//!
//! Complements Figure 7's single-thread column and Figure 11's baselines:
//! the cost of one acquire+release pair with no contention, for every lock in
//! the library, for GLK, and for `std::sync::Mutex` as an external
//! reference point.

// Benchmarks measure against raw std primitives as the baseline and pace
// phases with wall-clock sleeps; both are deliberate (see clippy.toml).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use gls::glk::GlkLock;
use gls_locks::{ClhLock, McsLock, MutexLock, RawLock, TasLock, TicketLock, TtasLock};

fn bench_raw<L: RawLock>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
) {
    let lock = L::default();
    group.bench_function(L::NAME, |b| {
        b.iter(|| {
            lock.lock();
            criterion::black_box(());
            lock.unlock();
        })
    });
}

fn uncontended_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontended_lock_unlock");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    bench_raw::<TasLock>(&mut group);
    bench_raw::<TtasLock>(&mut group);
    bench_raw::<TicketLock>(&mut group);
    bench_raw::<McsLock>(&mut group);
    bench_raw::<ClhLock>(&mut group);
    bench_raw::<MutexLock>(&mut group);

    let glk = GlkLock::new();
    group.bench_function("GLK", |b| {
        b.iter(|| {
            glk.lock();
            criterion::black_box(());
            glk.unlock();
        })
    });

    let reference = std::sync::Mutex::new(());
    group.bench_function("std::sync::Mutex (reference)", |b| {
        b.iter(|| {
            let guard = reference.lock().unwrap();
            criterion::black_box(&guard);
            drop(guard);
        })
    });

    group.finish();
}

criterion_group!(benches, uncontended_latency);
criterion_main!(benches);
