//! Criterion: single-lock throughput at selected thread counts (Figure 8
//! spot-checks).
//!
//! Full sweeps live in the `fig08_single_lock` binary; this bench pins three
//! representative contention levels (1 thread, 4 threads, hardware-context
//! count) so regressions in any lock show up in `cargo bench`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use gls_locks::LockKind;
use gls_workloads::{make_locks, microbench, LockSetup, MicrobenchConfig};

fn single_lock_throughput(c: &mut Criterion) {
    let hw = gls_runtime::hardware_contexts();
    let thread_counts = [1usize, 4.min(hw.max(2)), hw.max(2)];
    let kinds = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutex,
        LockKind::Glk,
    ];

    let mut group = c.benchmark_group("single_lock_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(600));

    for &threads in &thread_counts {
        for kind in kinds {
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(
                BenchmarkId::new(kind.name(), threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        // Criterion asks for `iters` samples; each sample is a
                        // short fixed-duration run, and we report time/op.
                        let mut total = Duration::ZERO;
                        for _ in 0..iters.min(3) {
                            let locks = make_locks(&LockSetup::Direct(kind), 1);
                            let result = microbench::run(
                                &locks,
                                &MicrobenchConfig {
                                    threads,
                                    cs_cycles: 1024,
                                    delay_cycles: 128,
                                    duration: Duration::from_millis(60),
                                    ..Default::default()
                                },
                            );
                            total += Duration::from_secs_f64(
                                result.elapsed.as_secs_f64() / result.total_ops.max(1) as f64,
                            );
                        }
                        total * (iters as u32 / iters.clamp(1, 3) as u32).max(1)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, single_lock_throughput);
criterion_main!(benches);
