//! Criterion: GLS service overhead over direct locking (Figure 11 companion).
//!
//! Measures one acquire+release through the GLS service vs directly on the
//! lock object, single-threaded, with 1 and 512 distinct lock addresses.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gls::{GlsService, LockKind};
use gls_locks::{RawLock, TicketLock};

fn gls_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("gls_vs_direct");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    // Direct baseline: one ticket lock.
    let direct = TicketLock::new();
    group.bench_function("direct TICKET, 1 lock", |b| {
        b.iter(|| {
            direct.lock();
            direct.unlock();
        })
    });

    for &lock_count in &[1usize, 512] {
        let service = GlsService::new();
        let addrs: Vec<usize> = (0..lock_count).map(|i| 0x20_0000 + i * 64).collect();
        // Warm up: create every lock object.
        for &a in &addrs {
            service.lock_with(LockKind::Ticket, a).unwrap();
            service.unlock_addr(a).unwrap();
        }
        let mut next = 0usize;
        group.bench_with_input(
            BenchmarkId::new("GLS TICKET", lock_count),
            &lock_count,
            |b, _| {
                b.iter(|| {
                    let addr = addrs[next % addrs.len()];
                    next = next.wrapping_add(1);
                    service.lock_with(LockKind::Ticket, addr).unwrap();
                    service.unlock_addr(addr).unwrap();
                })
            },
        );
    }

    // The default (GLK) interface with a single hot address: the fully
    // cached fast path.
    let service = GlsService::new();
    let addr = 0xCAFE_BABE_usize;
    service.lock_addr(addr).unwrap();
    service.unlock_addr(addr).unwrap();
    group.bench_function("GLS GLK, cached address", |b| {
        b.iter(|| {
            service.lock_addr(addr).unwrap();
            service.unlock_addr(addr).unwrap();
        })
    });

    group.finish();
}

criterion_group!(benches, gls_overhead);
criterion_main!(benches);
