//! Shared helpers for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the full index) and prints a tab-separated
//! [`SeriesTable`](gls_workloads::report::SeriesTable). Durations are scaled
//! by the `GLS_BENCH_MS` environment variable so the full harness can run
//! quickly in CI (default 300 ms per data point) or with paper-like lengths
//! (e.g. `GLS_BENCH_MS=10000`) on a dedicated machine.

#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use gls::glk::{GlkConfig, MonitorHandle};
use gls_locks::LockKind;
use gls_runtime::SystemLoadMonitor;
use gls_workloads::LockSetup;

/// Environment variable controlling the per-data-point measurement time.
pub const BENCH_MS_ENV: &str = "GLS_BENCH_MS";

/// Per-data-point measurement duration (default 300 ms).
pub fn point_duration() -> Duration {
    let ms = std::env::var(BENCH_MS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

/// Number of repetitions per data point (median is reported). The paper uses
/// 11; the default here is 1 so the whole harness completes quickly. Override
/// with `GLS_BENCH_REPS`.
pub fn repetitions() -> usize {
    std::env::var("GLS_BENCH_REPS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Thread counts swept by the "varying contention" figures: 1 up to ~1.25×
/// the machine's hardware contexts (the paper sweeps 1–60 on a 48-context
/// box).
pub fn thread_sweep() -> Vec<usize> {
    gls_runtime::topology::sweep(1.25)
}

/// Builds the [`LockSetup`] for one algorithm column of a figure.
///
/// GLK locks must consult the same system-load monitor that the experiment's
/// worker and background-spinner threads register with; every other algorithm
/// is used directly.
pub fn setup_for(kind: LockKind, monitor: &Arc<SystemLoadMonitor>) -> LockSetup {
    if kind == LockKind::Glk {
        LockSetup::Glk(
            GlkConfig::default(),
            MonitorHandle::Custom(Arc::clone(monitor)),
        )
    } else {
        LockSetup::Direct(kind)
    }
}

/// Prints the standard banner identifying the experiment.
pub fn banner(figure: &str, description: &str) {
    println!("# ================================================================");
    println!("# {figure}: {description}");
    println!(
        "# host: {} hardware contexts | point duration: {:?} | reps: {}",
        gls_runtime::hardware_contexts(),
        point_duration(),
        repetitions()
    );
    println!("# ================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_duration_has_a_sane_default() {
        let d = point_duration();
        assert!(d >= Duration::from_millis(10));
    }

    #[test]
    fn repetitions_is_at_least_one() {
        assert!(repetitions() >= 1);
    }

    #[test]
    fn thread_sweep_starts_at_one() {
        let sweep = thread_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.len() >= 2);
    }
}
