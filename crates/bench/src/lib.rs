//! Shared helpers for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the full index) and prints a tab-separated
//! [`SeriesTable`](gls_workloads::report::SeriesTable). Durations are scaled
//! by the `GLS_BENCH_MS` environment variable so the full harness can run
//! quickly in CI (default 300 ms per data point) or with paper-like lengths
//! (e.g. `GLS_BENCH_MS=10000`) on a dedicated machine.

#![warn(missing_docs)]

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use gls::glk::{GlkConfig, MonitorHandle};
use gls_locks::LockKind;
use gls_runtime::SystemLoadMonitor;
use gls_workloads::LockSetup;

/// Environment variable controlling the per-data-point measurement time.
pub const BENCH_MS_ENV: &str = "GLS_BENCH_MS";

/// Per-data-point measurement duration (default 300 ms).
pub fn point_duration() -> Duration {
    let ms = std::env::var(BENCH_MS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

/// Number of repetitions per data point (median is reported). The paper uses
/// 11; the default here is 1 so the whole harness completes quickly. Override
/// with `GLS_BENCH_REPS`.
pub fn repetitions() -> usize {
    std::env::var("GLS_BENCH_REPS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Thread counts swept by the "varying contention" figures: 1 up to ~1.25×
/// the machine's hardware contexts (the paper sweeps 1–60 on a 48-context
/// box).
pub fn thread_sweep() -> Vec<usize> {
    gls_runtime::topology::sweep(1.25)
}

/// Pins the calling worker thread round-robin over the hardware contexts
/// (worker `index` goes to context `index % hardware_contexts()`); returns
/// whether the kernel accepted the affinity mask. Every measurement thread
/// in the harness calls this so data points are taken from a *known*
/// placement instead of wherever the scheduler happened to put the workers.
pub fn pin_worker(index: usize) -> bool {
    gls_runtime::topology::pin_worker(index)
}

/// Whether pinning actually works on this host (probed once, on a throwaway
/// thread so the caller's affinity is untouched). False on non-Linux
/// platforms and in sandboxes that deny `sched_setaffinity`.
pub fn pinning_effective() -> bool {
    static PROBE: OnceLock<bool> = OnceLock::new();
    *PROBE.get_or_init(|| {
        std::thread::spawn(|| gls_runtime::pin_to(0))
            .join()
            .unwrap_or(false)
    })
}

/// The pinning policy name recorded in benchmark artifacts.
pub fn pin_policy() -> &'static str {
    if pinning_effective() {
        "round_robin"
    } else {
        "unpinned"
    }
}

/// The topology fields every emitted benchmark point must carry (see the
/// CI schema check): how many hardware contexts and cache domains the host
/// had at measurement time and how the workers were placed on them. A
/// trajectory point without these is uninterpretable — a single-context
/// smoke run and a 48-context dedicated box would be indistinguishable.
pub fn topology_json_fields() -> String {
    format!(
        "\"hardware_contexts\": {}, \"cache_domains\": {}, \"pin_policy\": \"{}\", \"pinned\": {}",
        gls_runtime::hardware_contexts(),
        gls_runtime::cache_domains().len(),
        pin_policy(),
        pinning_effective(),
    )
}

/// Builds the [`LockSetup`] for one algorithm column of a figure.
///
/// GLK locks must consult the same system-load monitor that the experiment's
/// worker and background-spinner threads register with; every other algorithm
/// is used directly.
pub fn setup_for(kind: LockKind, monitor: &Arc<SystemLoadMonitor>) -> LockSetup {
    if kind == LockKind::Glk {
        LockSetup::Glk(
            GlkConfig::default(),
            MonitorHandle::Custom(Arc::clone(monitor)),
        )
    } else {
        LockSetup::Direct(kind)
    }
}

/// Prints the standard banner identifying the experiment.
pub fn banner(figure: &str, description: &str) {
    println!("# ================================================================");
    println!("# {figure}: {description}");
    println!(
        "# host: {} hardware contexts in {} cache domain(s) | workers {} | point duration: {:?} | reps: {}",
        gls_runtime::hardware_contexts(),
        gls_runtime::cache_domains().len(),
        pin_policy(),
        point_duration(),
        repetitions()
    );
    println!("# ================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_duration_has_a_sane_default() {
        let d = point_duration();
        assert!(d >= Duration::from_millis(10));
    }

    #[test]
    fn repetitions_is_at_least_one() {
        assert!(repetitions() >= 1);
    }

    #[test]
    fn thread_sweep_starts_at_one() {
        let sweep = thread_sweep();
        assert_eq!(sweep[0], 1);
        assert!(sweep.len() >= 2);
    }

    #[test]
    fn topology_fields_carry_the_required_keys() {
        let fields = topology_json_fields();
        for key in [
            "\"hardware_contexts\":",
            "\"cache_domains\":",
            "\"pin_policy\":",
            "\"pinned\":",
        ] {
            assert!(fields.contains(key), "missing {key} in {fields}");
        }
        // The fragment must be embeddable in a JSON object as-is.
        let object = format!("{{{fields}}}");
        assert!(object.starts_with('{') && object.ends_with('}'));
    }

    #[test]
    fn pin_policy_matches_probe() {
        let effective = pinning_effective();
        assert_eq!(pin_policy() == "round_robin", effective);
        if effective {
            // Pinning works on this host: a worker pin must succeed too.
            assert!(std::thread::spawn(|| pin_worker(0)).join().unwrap());
        }
    }
}
