//! Figure 17 (extension): what the GLS fast path costs next to a raw lock.
//!
//! The paper calls GLS "essentially a cache for locating the lock object
//! that corresponds to an address" (§4.1); this harness measures exactly
//! that claim. Every worker thread owns a **private** set of lock
//! addresses (so the locks themselves are uncontended and the numbers
//! isolate the address → entry mapping, not lock handover) and round-robins
//! lock/unlock over them. Sweeping the per-thread working set across
//! {1, 2, 8, 64} addresses exposes the cache geometry: a single-entry cache
//! thrashes from 2 locks on, the set-associative cache holds up to
//! `CACHE_SETS × CACHE_WAYS` mappings per thread.
//!
//! Five flavors per working-set size:
//!
//! * `raw_ttas`    — a plain [`TtasLock`] per address: the floor.
//! * `gls_cached`  — GLS with TTAS entries, per-thread lock cache on.
//! * `gls_uncached`— the same service with the cache disabled: every
//!   operation pays the CLHT lookup. The gap to `gls_cached` is what the
//!   cache buys; the gap to `raw_ttas` is the total service overhead.
//! * `gls_profiled`— profile mode, measuring what enabling the profiler
//!   costs on the fast path now that its stats are sharded per thread.
//! * `gls_sampled` — profile mode with the adaptive sampling gate
//!   (`GlsConfig::with_sampling`): the cycle counter is read on every Nth
//!   acquisition only, with N adapted per thread toward the samples/sec
//!   budget. Acquisition *counts* stay exact either way.
//!
//! A second, contended section compares normal vs profile mode (full
//! measurement and sampled) on **one shared** lock across threads:
//! pre-sharding, the profiler serialized contended acquirers on a shared
//! stat cacheline before they even reached the lock word; sampling removes
//! most of the remaining timestamp cost.
//!
//! Worker threads are pinned round-robin over the hardware contexts; the
//! thread sweep runs up to one worker per context (the multi-core headline)
//! plus an oversubscribed point (`contexts + 2`).
//!
//! Besides the human-readable tables, the harness writes machine-readable
//! `BENCH_fastpath.json` (override with `--out PATH`) so the repository
//! accumulates a fast-path perf trajectory PR over PR; every point carries
//! the host topology (`hardware_contexts`, `cache_domains`) and pinning
//! layout so runs from different machines stay comparable. `--smoke`
//! shrinks the sweep for CI.

// Benchmarks measure against raw std primitives as the baseline and pace
// phases with wall-clock sleeps; both are deliberate (see clippy.toml).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use gls::{
    reset_thread_cache_stats, thread_cache_stats, CacheStats, GlsConfig, GlsMode, GlsService,
    CACHE_SETS, CACHE_WAYS,
};
use gls_bench::{banner, point_duration};
use gls_locks::{LockKind, RawLock, TtasLock};
use gls_runtime::spin_cycles;
use gls_workloads::report::SeriesTable;

/// Sampling budget used by the `gls_sampled` flavors: plenty of fidelity
/// (10k measured acquisitions per second per thread) while keeping the two
/// `rdtsc` reads off virtually every fast-path acquisition.
const SAMPLING_BUDGET: u64 = 10_000;

/// GLS service flavors measured against the raw lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    RawTtas,
    GlsCached,
    GlsUncached,
    GlsProfiled,
    GlsSampled,
}

impl Flavor {
    const ALL: [Flavor; 5] = [
        Flavor::RawTtas,
        Flavor::GlsCached,
        Flavor::GlsUncached,
        Flavor::GlsProfiled,
        Flavor::GlsSampled,
    ];

    fn name(self) -> &'static str {
        match self {
            Flavor::RawTtas => "raw_ttas",
            Flavor::GlsCached => "gls_cached",
            Flavor::GlsUncached => "gls_uncached",
            Flavor::GlsProfiled => "gls_profiled",
            Flavor::GlsSampled => "gls_sampled",
        }
    }

    fn service(self) -> Option<GlsService> {
        // TTAS entries everywhere so every flavor pays the same lock
        // algorithm and the delta is purely the service layer.
        let base = GlsConfig::default().with_default_kind(LockKind::Ttas);
        match self {
            Flavor::RawTtas => None,
            Flavor::GlsCached => Some(GlsService::with_config(base)),
            Flavor::GlsUncached => Some(GlsService::with_config(base.with_lock_cache(false))),
            Flavor::GlsProfiled => Some(GlsService::with_config(base.with_mode(GlsMode::Profile))),
            Flavor::GlsSampled => Some(GlsService::with_config(
                base.with_mode(GlsMode::Profile)
                    .with_sampling(SAMPLING_BUDGET),
            )),
        }
    }
}

/// One measured point of the private-locks matrix.
struct Point {
    flavor: &'static str,
    threads: usize,
    locks_per_thread: usize,
    ns_per_op: f64,
    ops: u64,
    cache: CacheStats,
}

/// Runs [`run_private_point_once`] `GLS_BENCH_REPS` times and keeps the
/// repetition with the median ns/op (latency floors are what the fast-path
/// comparison is about; the median rejects runs polluted by background
/// load).
fn run_private_point(flavor: Flavor, threads: usize, locks_per_thread: usize) -> Point {
    let mut runs: Vec<Point> = (0..gls_bench::repetitions())
        .map(|_| run_private_point_once(flavor, threads, locks_per_thread))
        .collect();
    runs.sort_by(|a, b| a.ns_per_op.total_cmp(&b.ns_per_op));
    runs.swap_remove(runs.len() / 2)
}

/// Runs `threads` workers, each round-robining lock/unlock over its own
/// `locks_per_thread` private addresses. Returns ns/op plus the summed
/// per-thread cache counters.
fn run_private_point_once(flavor: Flavor, threads: usize, locks_per_thread: usize) -> Point {
    let service = flavor.service().map(Arc::new);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = service.clone();
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Measure from a known placement: worker t on context
                // t % hardware_contexts().
                gls_bench::pin_worker(t);
                // Private, well-spread addresses: thread t uses the block
                // [(t+1) << 24, ...) in cacheline steps.
                let addrs: Vec<usize> = (0..locks_per_thread)
                    .map(|i| ((t + 1) << 24) + i * 64)
                    .collect();
                let raw: Vec<TtasLock> = (0..locks_per_thread).map(|_| TtasLock::new()).collect();
                // Warm the table and the cache out of the measurement.
                if let Some(svc) = &service {
                    for &a in &addrs {
                        svc.lock_addr(a).unwrap();
                        svc.unlock_addr(a).unwrap();
                    }
                }
                reset_thread_cache_stats();
                barrier.wait();
                let mut ops = 0u64;
                let mut i = 0usize;
                match &service {
                    None => {
                        while !stop.load(Ordering::Relaxed) {
                            raw[i].lock();
                            raw[i].unlock();
                            i += 1;
                            if i == locks_per_thread {
                                i = 0;
                            }
                            ops += 1;
                        }
                    }
                    Some(svc) => {
                        while !stop.load(Ordering::Relaxed) {
                            svc.lock_addr(addrs[i]).unwrap();
                            svc.unlock_addr(addrs[i]).unwrap();
                            i += 1;
                            if i == locks_per_thread {
                                i = 0;
                            }
                            ops += 1;
                        }
                    }
                }
                (ops, thread_cache_stats())
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(point_duration());
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();
    let mut ops = 0u64;
    let mut cache = CacheStats::default();
    for h in handles {
        let (thread_ops, thread_cache) = h.join().unwrap();
        ops += thread_ops;
        cache = cache + thread_cache;
    }
    Point {
        flavor: flavor.name(),
        threads,
        locks_per_thread,
        ns_per_op: elapsed.as_nanos() as f64 * threads as f64 / ops.max(1) as f64,
        ops,
        cache,
    }
}

/// One measured point of the shared-lock (contended) matrix.
struct SharedPoint {
    mode: &'static str,
    threads: usize,
    mops_per_sec: f64,
}

/// Profiler configuration of a shared-lock point: off, on with full
/// measurement (every acquisition timed), or on with adaptive sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SharedMode {
    Normal,
    ProfiledFull,
    ProfiledSampled,
}

impl SharedMode {
    const ALL: [SharedMode; 3] = [
        SharedMode::Normal,
        SharedMode::ProfiledFull,
        SharedMode::ProfiledSampled,
    ];

    fn name(self) -> &'static str {
        match self {
            SharedMode::Normal => "gls_normal",
            SharedMode::ProfiledFull => "gls_profiled",
            SharedMode::ProfiledSampled => "gls_sampled",
        }
    }
}

/// All threads hammer **one** shared GLS lock; compares normal mode against
/// profile mode (full measurement and adaptive sampling), i.e. what turning
/// the profiler on costs under contention.
fn run_shared_point(mode: SharedMode, threads: usize) -> SharedPoint {
    let config = GlsConfig::default().with_default_kind(LockKind::Ttas);
    let config = match mode {
        SharedMode::Normal => config,
        SharedMode::ProfiledFull => config.with_mode(GlsMode::Profile),
        SharedMode::ProfiledSampled => config
            .with_mode(GlsMode::Profile)
            .with_sampling(SAMPLING_BUDGET),
    };
    let service = Arc::new(GlsService::with_config(config));
    const SHARED_ADDR: usize = 0x5EED_0000;
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                gls_bench::pin_worker(t);
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    service.lock_addr(SHARED_ADDR).unwrap();
                    spin_cycles(100);
                    service.unlock_addr(SHARED_ADDR).unwrap();
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(point_duration());
    stop.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed();
    let ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    SharedPoint {
        mode: mode.name(),
        threads,
        mops_per_sec: ops as f64 / elapsed.as_secs_f64() / 1e6,
    }
}

fn thread_counts(smoke: bool) -> Vec<usize> {
    let max = gls_runtime::hardware_contexts();
    let mut counts = if smoke {
        vec![1, 2]
    } else {
        // The multi-core points (up to one worker per context) are the
        // headline; `max + 2` keeps an oversubscription point in the
        // trajectory, where workers fight for contexts.
        vec![1, max.div_ceil(2), max, max + 2]
    };
    counts.dedup();
    counts
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']));
    s
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_fastpath.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke, --out PATH)");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        // Tiny points: prove the harness end to end, not a measurement.
        std::env::set_var(gls_bench::BENCH_MS_ENV, "20");
    }

    banner(
        "Figure 17 (fast path)",
        "GLS address->entry mapping cost vs a raw TTAS lock",
    );
    println!(
        "# per-thread lock cache: {CACHE_SETS} sets x {CACHE_WAYS} ways ({} entries)",
        CACHE_SETS * CACHE_WAYS
    );

    let lpt_sweep: &[usize] = if smoke { &[1, 8] } else { &[1, 2, 8, 64] };
    let threads = thread_counts(smoke);

    let mut points = Vec::new();
    for &n in &threads {
        let mut table = SeriesTable::new(
            format!("Figure 17: uncontended lock+unlock latency, {n} thread(s) (ns/op)"),
            "locks/thread",
            Flavor::ALL.iter().map(|f| f.name().to_string()).collect(),
        );
        for &lpt in lpt_sweep {
            let row: Vec<Point> = Flavor::ALL
                .iter()
                .map(|&f| run_private_point(f, n, lpt))
                .collect();
            table.push_row(lpt.to_string(), row.iter().map(|p| p.ns_per_op).collect());
            points.extend(row);
        }
        table.print();
        println!();
    }

    let mut shared_points = Vec::new();
    let mut shared_table = SeriesTable::new(
        "Figure 17b: one shared lock, profiler off vs full vs sampled (Mops/s)",
        "threads",
        SharedMode::ALL
            .iter()
            .map(|m| m.name().to_string())
            .collect(),
    );
    for &n in &threads {
        let row: Vec<SharedPoint> = SharedMode::ALL
            .iter()
            .map(|&m| run_shared_point(m, n))
            .collect();
        shared_table.push_row(n.to_string(), row.iter().map(|p| p.mops_per_sec).collect());
        shared_points.extend(row);
    }
    shared_table.print();

    // ------------------------------------------------------------------
    // Machine-readable artifact.
    // ------------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"figure\": \"fig17_fastpath\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  {},", gls_bench::topology_json_fields());
    let _ = writeln!(
        json,
        "  \"cache_geometry\": {{\"sets\": {CACHE_SETS}, \"ways\": {CACHE_WAYS}}},"
    );
    let _ = writeln!(
        json,
        "  \"point_duration_ms\": {},",
        point_duration().as_millis()
    );
    json.push_str("  \"private_locks_ns_per_op\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"flavor\": \"{}\", \"threads\": {}, \"locks_per_thread\": {}, \
             \"ns_per_op\": {:.2}, \"ops\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_hit_rate\": {:.4}, {}}}",
            json_escape_free(p.flavor),
            p.threads,
            p.locks_per_thread,
            p.ns_per_op,
            p.ops,
            p.cache.hits,
            p.cache.misses,
            p.cache.hit_rate(),
            gls_bench::topology_json_fields(),
        );
        json.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"shared_lock_mops\": [\n");
    for (i, p) in shared_points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"mops_per_sec\": {:.4}, {}}}",
            json_escape_free(p.mode),
            p.threads,
            p.mops_per_sec,
            gls_bench::topology_json_fields(),
        );
        json.push_str(if i + 1 == shared_points.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("writing the JSON artifact");
    println!("\n# wrote {out_path}");
}
