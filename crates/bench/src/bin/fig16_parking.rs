//! Figure 16 (extension): parking-lot scalability over many live locks.
//!
//! The space argument for the parking subsystem, measured: sweep the number
//! of **live blocking locks** from 1k to 100k and compare
//!
//! * `MUTEX` — per-lock parking state ([`MutexLock`]: a cache-padded
//!   `Mutex + Condvar` pair in every lock),
//! * `FUTEX` — the word-sized [`FutexLock`] whose waiters park in the
//!   shared, sharded parking lot, and
//! * `STD` — `std::sync::Mutex<()>` as the system baseline.
//!
//! Worker threads (hardware contexts + 2, so the blocking paths are really
//! exercised) pick locks zipfian-popular (α = 0.9: a hot head sees real
//! contention and parking while the long tail stresses the footprint) and
//! run a short critical section. Reported: throughput per working-set size
//! plus the per-lock memory of each flavor — the futex lock stays at 4
//! bytes no matter how many locks are live, which is what lets the
//! middleware hold six-figure lock counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gls_bench::{banner, point_duration};
use gls_locks::{FutexLock, MutexLock, RawLock};
use gls_runtime::spin_cycles;
use gls_workloads::report::SeriesTable;
use gls_workloads::Zipfian;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One lock flavor under test.
trait ParkBenchLock: Send + Sync + 'static {
    fn section(&self, cs_cycles: u64);
}

impl ParkBenchLock for MutexLock {
    fn section(&self, cs_cycles: u64) {
        self.lock();
        spin_cycles(cs_cycles);
        self.unlock();
    }
}

impl ParkBenchLock for FutexLock {
    fn section(&self, cs_cycles: u64) {
        self.lock();
        spin_cycles(cs_cycles);
        self.unlock();
    }
}

impl ParkBenchLock for std::sync::Mutex<()> {
    fn section(&self, cs_cycles: u64) {
        let _g = self.lock().expect("bench mutex poisoned");
        spin_cycles(cs_cycles);
    }
}

/// Runs one (flavor, live-lock-count) point and returns Mops/s.
fn run_point<L: ParkBenchLock>(make: impl Fn() -> L, live_locks: usize, threads: usize) -> f64 {
    let locks: Arc<Vec<L>> = Arc::new((0..live_locks).map(|_| make()).collect());
    let zipf = Arc::new(Zipfian::new(live_locks, 0.9));
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let locks = Arc::clone(&locks);
            let zipf = Arc::clone(&zipf);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Register with the load monitor like every oversubscribed
                // workload in the harness.
                let _runnable = gls_runtime::SystemLoadMonitor::global().runnable_guard();
                let mut rng = StdRng::seed_from_u64(0xF16 + t as u64);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let index = zipf.sample(&mut rng);
                    locks[index].section(150);
                    spin_cycles(50);
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(point_duration());
    stop.store(true, Ordering::Relaxed);
    let ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    ops as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    banner(
        "Figure 16 (parking)",
        "per-lock-condvar parking vs the shared parking lot vs std, 1k-100k live locks",
    );
    // Two threads beyond the hardware contexts: enough oversubscription
    // that blocked waiters must actually release their contexts.
    let threads = gls_runtime::hardware_contexts() + 2;

    println!(
        "# per-lock state: MUTEX {} B | FUTEX {} B | STD {} B",
        std::mem::size_of::<MutexLock>(),
        std::mem::size_of::<FutexLock>(),
        std::mem::size_of::<std::sync::Mutex<()>>(),
    );

    let mut table = SeriesTable::new(
        format!(
            "Figure 16: zipfian traffic over N live blocking locks, {threads} threads (Mops/s)"
        ),
        "locks",
        vec!["MUTEX".to_string(), "FUTEX".to_string(), "STD".to_string()],
    );
    for live_locks in [1_000usize, 10_000, 100_000] {
        let row = vec![
            run_point(MutexLock::new, live_locks, threads),
            run_point(FutexLock::new, live_locks, threads),
            run_point(std::sync::Mutex::default, live_locks, threads),
        ];
        let label = if live_locks >= 1_000 {
            format!("{}k", live_locks / 1_000)
        } else {
            live_locks.to_string()
        };
        table.push_row(label, row);
        println!(
            "# {live_locks} locks -> lock-state footprint: MUTEX {} kB | FUTEX {} kB",
            live_locks * std::mem::size_of::<MutexLock>() / 1024,
            live_locks * std::mem::size_of::<FutexLock>() / 1024,
        );
    }
    table.print();
    println!(
        "# FUTEX keeps per-lock state at one word (wait queues live in the shared \
         parking lot); MUTEX pays ~{}x the memory per live lock",
        std::mem::size_of::<MutexLock>() / std::mem::size_of::<FutexLock>(),
    );
}
