//! Figure 16 (extension): parking-lot scalability over many live locks.
//!
//! The space argument for the parking subsystem, measured: sweep the number
//! of **live blocking locks** and compare
//!
//! * `MUTEX` — per-lock parking state ([`MutexLock`]: a cache-padded
//!   `Mutex + Condvar` pair in every lock),
//! * `FUTEX` — the word-sized [`FutexLock`] whose waiters park in the
//!   shared, sharded parking lot,
//! * `AUTO` — the service-level heuristic ([`AutoBlockingMutex`]): each
//!   lock picks (and migrates) between the two based on the live
//!   blocking-lock count, with **no static configuration** — below the
//!   density threshold it embeds a per-lock mutex, past it the per-lock
//!   wait state converges to the futex word (4 B) and the embedded boxes
//!   are never allocated, and
//! * `STD` — `std::sync::Mutex<()>` as the system baseline.
//!
//! Worker threads are **pinned round-robin** over the hardware contexts and
//! pick locks zipfian-popular (α = 0.9: a hot head sees real contention and
//! parking while the long tail stresses the footprint), running a short
//! critical section. Two series per flavor:
//!
//! * `multicore` (headline) — one worker per hardware context, so lock
//!   handoffs actually cross cores (and cache domains, where the host has
//!   more than one);
//! * `oversubscribed` — hardware contexts + 2 workers, so blocked waiters
//!   must really release their contexts to make progress.
//!
//! Reported: throughput per working-set size plus the wait-state footprint
//! of each flavor — and, for AUTO, how much heap the heuristic actually
//! allocated (0 past the threshold, i.e. the shared-lot footprint reached
//! automatically). Every emitted point records the host topology
//! (`hardware_contexts`, `cache_domains`) and the pinning layout, so a
//! trajectory mixing single-context CI runs and dedicated multi-core runs
//! stays interpretable.
//!
//! Emits `BENCH_parking.json` (override with `--out PATH`); `--smoke`
//! shrinks the sweep and point duration so CI can validate the artifact
//! end to end.

// Benchmarks measure against raw std primitives as the baseline and pace
// phases with wall-clock sleeps; both are deliberate (see clippy.toml).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gls::glk::{AutoBlockingMutex, BlockingDensity, DEFAULT_BLOCKING_DENSITY_THRESHOLD};
use gls_bench::{banner, point_duration};
use gls_locks::{FutexLock, MutexLock, RawLock};
use gls_runtime::spin_cycles;
use gls_workloads::report::SeriesTable;
use gls_workloads::Zipfian;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One lock flavor under test.
trait ParkBenchLock: Send + Sync + 'static {
    fn section(&self, cs_cycles: u64);
    /// Heap bytes of wait-queue state this lock allocated (beyond its own
    /// inline size).
    fn wait_heap_bytes(&self) -> usize {
        0
    }
    /// Whether this lock's waiters sleep in the shared parking lot.
    fn uses_shared_lot(&self) -> bool {
        false
    }
}

impl ParkBenchLock for MutexLock {
    fn section(&self, cs_cycles: u64) {
        self.lock();
        spin_cycles(cs_cycles);
        self.unlock();
    }
}

impl ParkBenchLock for FutexLock {
    fn section(&self, cs_cycles: u64) {
        self.lock();
        spin_cycles(cs_cycles);
        self.unlock();
    }

    fn uses_shared_lot(&self) -> bool {
        true
    }
}

impl ParkBenchLock for std::sync::Mutex<()> {
    fn section(&self, cs_cycles: u64) {
        let _g = self.lock().expect("bench mutex poisoned");
        spin_cycles(cs_cycles);
    }
}

/// The heuristic flavor: an [`AutoBlockingMutex`] plus the shared density
/// tracker it consults (bench scaffolding — inside a `GlsService` the
/// tracker lives in the service config, not per lock).
struct AutoLock {
    lock: AutoBlockingMutex,
    density: Arc<BlockingDensity>,
}

impl ParkBenchLock for AutoLock {
    fn section(&self, cs_cycles: u64) {
        self.lock
            .lock(&self.density, DEFAULT_BLOCKING_DENSITY_THRESHOLD);
        spin_cycles(cs_cycles);
        self.lock
            .unlock(&self.density, DEFAULT_BLOCKING_DENSITY_THRESHOLD);
    }

    fn wait_heap_bytes(&self) -> usize {
        self.lock.blocking_heap_bytes()
    }

    fn uses_shared_lot(&self) -> bool {
        self.lock.uses_parking_lot() == Some(true)
    }
}

/// Measurements of one (series, flavor, live-lock-count) point.
struct Point {
    series: &'static str,
    flavor: &'static str,
    live_locks: usize,
    threads: usize,
    mops: f64,
    /// Heap wait-state bytes allocated per lock (0 when the shared lot
    /// carries the waiters).
    heap_bytes_per_lock: f64,
    /// Fraction of locks whose waiters sleep in the shared lot.
    shared_lot_fraction: f64,
}

/// Runs one (series, flavor, live-lock-count) point.
fn run_point<L: ParkBenchLock>(
    series: &'static str,
    flavor: &'static str,
    make: impl Fn() -> L,
    live_locks: usize,
    threads: usize,
) -> Point {
    let locks: Arc<Vec<L>> = Arc::new((0..live_locks).map(|_| make()).collect());
    let zipf = Arc::new(Zipfian::new(live_locks, 0.9));
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let locks = Arc::clone(&locks);
            let zipf = Arc::clone(&zipf);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Measure from a known placement, not wherever the
                // scheduler dropped the worker.
                gls_bench::pin_worker(t);
                // Register with the load monitor like every oversubscribed
                // workload in the harness.
                let _runnable = gls_runtime::SystemLoadMonitor::global().runnable_guard();
                let mut rng = StdRng::seed_from_u64(0xF16 + t as u64);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let index = zipf.sample(&mut rng);
                    locks[index].section(150);
                    spin_cycles(50);
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    std::thread::sleep(point_duration());
    stop.store(true, Ordering::Relaxed);
    let ops: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let heap: usize = locks.iter().map(|l| l.wait_heap_bytes()).sum();
    let shared = locks.iter().filter(|l| l.uses_shared_lot()).count();
    Point {
        series,
        flavor,
        live_locks,
        threads,
        mops: ops as f64 / start.elapsed().as_secs_f64() / 1e6,
        heap_bytes_per_lock: heap as f64 / live_locks as f64,
        shared_lot_fraction: shared as f64 / live_locks as f64,
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']));
    s
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_parking.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument: {other} (supported: --smoke, --out PATH)");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        // Tiny points: prove the harness end to end, not a measurement.
        std::env::set_var(gls_bench::BENCH_MS_ENV, "20");
    }

    banner(
        "Figure 16 (parking)",
        "per-lock-condvar parking vs the shared parking lot vs the density heuristic vs std",
    );
    let contexts = gls_runtime::hardware_contexts();
    let threshold = DEFAULT_BLOCKING_DENSITY_THRESHOLD;

    println!(
        "# per-lock state: MUTEX {} B | FUTEX {} B | AUTO {} B inline (+ heap below threshold) | STD {} B",
        std::mem::size_of::<MutexLock>(),
        std::mem::size_of::<FutexLock>(),
        std::mem::size_of::<AutoBlockingMutex>(),
        std::mem::size_of::<std::sync::Mutex<()>>(),
    );
    println!("# blocking-density threshold: {threshold} live blocking locks");

    let flavors = ["MUTEX", "FUTEX", "AUTO", "STD"];
    // The 16-lock row sits below the density threshold: AUTO embeds
    // per-lock mutexes there and switches to the shared lot for every row
    // past the threshold — with no configuration change in between.
    let sweep: &[usize] = if smoke {
        &[16, 1_000]
    } else {
        &[16, 1_000, 10_000, 100_000]
    };
    // The headline series fills the machine (one pinned worker per
    // context: real cross-core handoffs); the oversubscription series adds
    // two more workers so blocked waiters must actually release their
    // contexts. On a single-context host the two differ only in degree —
    // the per-point topology fields keep that honest.
    let series: [(&'static str, usize); 2] =
        [("multicore", contexts), ("oversubscribed", contexts + 2)];
    let mut points: Vec<Point> = Vec::new();
    for (series_name, threads) in series {
        let mut table = SeriesTable::new(
            format!(
                "Figure 16 [{series_name}]: zipfian traffic over N live blocking locks, \
                 {threads} threads (Mops/s)"
            ),
            "locks",
            flavors.iter().map(|f| f.to_string()).collect(),
        );
        for &live_locks in sweep {
            let row: Vec<Point> = {
                let auto_density = Arc::new(BlockingDensity::new());
                vec![
                    run_point(series_name, "MUTEX", MutexLock::new, live_locks, threads),
                    run_point(series_name, "FUTEX", FutexLock::new, live_locks, threads),
                    run_point(
                        series_name,
                        "AUTO",
                        || {
                            // Every lock in this bench is a blocking lock, so
                            // each one joins the live blocking population (in a
                            // GlsService this happens when a GLK lock enters
                            // mutex mode).
                            auto_density.enter();
                            AutoLock {
                                lock: AutoBlockingMutex::new(),
                                density: Arc::clone(&auto_density),
                            }
                        },
                        live_locks,
                        threads,
                    ),
                    run_point(
                        series_name,
                        "STD",
                        std::sync::Mutex::default,
                        live_locks,
                        threads,
                    ),
                ]
            };
            let label = if live_locks >= 1_000 {
                format!("{}k", live_locks / 1_000)
            } else {
                live_locks.to_string()
            };
            table.push_row(label, row.iter().map(|p| p.mops).collect());
            let auto = &row[2];
            println!(
                "# [{series_name}] {live_locks} locks -> footprint: MUTEX {} kB | FUTEX {} kB | AUTO heap {:.1} B/lock, {:.0}% on the shared lot",
                live_locks * std::mem::size_of::<MutexLock>() / 1024,
                live_locks * std::mem::size_of::<FutexLock>() / 1024,
                auto.heap_bytes_per_lock,
                auto.shared_lot_fraction * 100.0,
            );
            points.extend(row);
        }
        table.print();
        println!();
    }
    println!(
        "# FUTEX keeps per-lock wait state at one word (queues live in the shared \
         parking lot); AUTO reaches the same footprint automatically past \
         {threshold} live blocking locks — no static backend knob"
    );

    // ------------------------------------------------------------------
    // Machine-readable artifact.
    // ------------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"figure\": \"fig16_parking\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  {},", gls_bench::topology_json_fields());
    let _ = writeln!(json, "  \"blocking_density_threshold\": {threshold},");
    let _ = writeln!(
        json,
        "  \"point_duration_ms\": {},",
        point_duration().as_millis()
    );
    let _ = writeln!(
        json,
        "  \"per_lock_state_bytes\": {{\"MUTEX\": {}, \"FUTEX\": {}, \"AUTO\": {}, \"STD\": {}}},",
        std::mem::size_of::<MutexLock>(),
        std::mem::size_of::<FutexLock>(),
        std::mem::size_of::<AutoBlockingMutex>(),
        std::mem::size_of::<std::sync::Mutex<()>>(),
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"series\": \"{}\", \"flavor\": \"{}\", \"live_locks\": {}, \
             \"threads\": {}, \"mops_per_sec\": {:.4}, \
             \"wait_heap_bytes_per_lock\": {:.2}, \"shared_lot_fraction\": {:.4}, {}}}",
            json_escape_free(p.series),
            json_escape_free(p.flavor),
            p.live_locks,
            p.threads,
            p.mops,
            p.heap_bytes_per_lock,
            p.shared_lot_fraction,
            gls_bench::topology_json_fields(),
        );
        json.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("writing the JSON artifact");
    println!("\n# wrote {out_path}");
}
