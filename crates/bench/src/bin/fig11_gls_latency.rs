//! Figure 11: latency overhead of GLS over direct lock use (single thread).
//!
//! A single thread acquires and releases locks picked at random from a set of
//! 1, 512 or 4096 locks, once directly and once through the GLS service. The
//! reported numbers are the *additional* cycles per lock and unlock caused by
//! GLS. The paper measures: almost nothing with 1 lock (the per-thread lock
//! cache absorbs it), ~30 cycles with 512 locks, and more with 4096 locks
//! (the table no longer fits in L1); unlock overhead stays tiny because it
//! always hits the lock cache.

use gls::GlsConfig;
use gls_bench::banner;
use gls_locks::LockKind;
use gls_workloads::latency::{measure, overhead};
use gls_workloads::report::SeriesTable;
use gls_workloads::{make_locks, LockSetup};

fn main() {
    banner(
        "Figure 11",
        "GLS lock/unlock latency overhead over direct locking, single thread",
    );
    let kinds = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutex,
        LockKind::Glk,
    ];
    let lock_counts = [1usize, 512, 4096];
    let iterations = 50_000;

    let mut lock_table = SeriesTable::new(
        "Figure 11 (left): lock-latency overhead of GLS (cycles)",
        "locks",
        kinds.iter().map(|k| k.name().to_string()).collect(),
    );
    let mut unlock_table = SeriesTable::new(
        "Figure 11 (right): unlock-latency overhead of GLS (cycles)",
        "locks",
        kinds.iter().map(|k| k.name().to_string()).collect(),
    );

    for &count in &lock_counts {
        let mut lock_row = Vec::new();
        let mut unlock_row = Vec::new();
        for kind in kinds {
            let direct = measure(&make_locks(&LockSetup::Direct(kind), count), iterations, 11);
            let gls = measure(
                &make_locks(
                    &LockSetup::Gls {
                        config: GlsConfig::default(),
                        kind,
                    },
                    count,
                ),
                iterations,
                11,
            );
            let (lock_overhead, unlock_overhead) = overhead(gls, direct);
            lock_row.push(lock_overhead.max(0.0));
            unlock_row.push(unlock_overhead.max(0.0));
        }
        lock_table.push_row(count.to_string(), lock_row);
        unlock_table.push_row(count.to_string(), unlock_row);
    }
    lock_table.print();
    unlock_table.print();
    println!("# paper shape: ~0 cycles with 1 lock, tens of cycles at 512+, unlock overhead stays small (lock cache)");
}
