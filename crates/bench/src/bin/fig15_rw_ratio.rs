//! Figure 15 (extension): reader-writer locks on a read-ratio sweep.
//!
//! One shared rw lock, rising read percentage, comparing the raw TTAS-based
//! rwlock (the paper's pthread-rwlock replacement, §5.2 footnote 7), the
//! same traffic routed through the GLS service rw interface, and
//! `std::sync::RwLock` as the system baseline. Expected shape: all three
//! scale up as the mix approaches 100% reads; GLS-rw tracks the raw lock
//! with a small constant mapping overhead (the Figure 11/12 story, now for
//! rw traffic); writers keep completing at every ratio thanks to the
//! writer-intent bit.

use gls::GlsConfig;
use gls_bench::{banner, point_duration};
use gls_workloads::report::SeriesTable;
use gls_workloads::rw_bench::{self, RwLockSetup, RwSweepConfig};

fn main() {
    banner(
        "Figure 15 (rw)",
        "read-ratio sweep over one reader-writer lock (CS = 200 cycles)",
    );
    let setups = [
        RwLockSetup::Ttas,
        RwLockSetup::Gls(GlsConfig::default()),
        RwLockSetup::Std,
    ];
    let threads = gls_runtime::hardware_contexts().clamp(2, 8);

    let mut table = SeriesTable::new(
        format!("Figure 15: rw read-ratio sweep, {threads} threads (Mops/s)"),
        "read%",
        setups.iter().map(|s| s.build().label()).collect(),
    );
    for read_percent in [0, 25, 50, 75, 90, 95, 99, 100] {
        let mut row = Vec::new();
        for setup in &setups {
            let lock = setup.build();
            let result = rw_bench::run(
                &lock,
                &RwSweepConfig {
                    threads,
                    read_percent,
                    cs_cycles: 200,
                    delay_cycles: 100,
                    duration: point_duration(),
                    ..Default::default()
                },
            );
            row.push(result.mops());
        }
        table.push_row(format!("{read_percent}%"), row);
    }
    table.print();
    println!("# GLS(RW) pays the address->lock mapping on top of RW-TTAS; writers complete at every ratio (writer-intent bit)");
}
