//! Figure 9: eight locks under varying contention (zipfian, α = 0.9).
//!
//! Each iteration picks one of eight locks with a zipfian skew (the two
//! hottest locks serve ~34% and ~18% of requests). GLK's advantage here is
//! per-lock adaptation: it keeps the cold locks in ticket mode while moving
//! only the hot ones to mcs, which the paper measures at ~20% over MCS.

use std::sync::Arc;

use gls_bench::{banner, point_duration, repetitions, setup_for, thread_sweep};
use gls_locks::LockKind;
use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
use gls_workloads::report::SeriesTable;
use gls_workloads::{make_locks, microbench, LockSelection, MicrobenchConfig};

fn main() {
    banner(
        "Figure 9",
        "eight locks, zipfian selection (alpha = 0.9), CS = 1024 cycles",
    );
    let kinds = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutex,
        LockKind::Glk,
    ];
    let monitor = Arc::new(SystemLoadMonitor::spawn(SystemLoadConfig::default()));

    let mut table = SeriesTable::new(
        "Figure 9: eight-lock throughput (Mops/s), zipfian alpha 0.9",
        "threads",
        kinds.iter().map(|k| k.name().to_string()).collect(),
    );
    for threads in thread_sweep() {
        let mut row = Vec::new();
        for kind in kinds {
            let locks = make_locks(&setup_for(kind, &monitor), 8);
            let result = microbench::run_median(
                &locks,
                &MicrobenchConfig {
                    threads,
                    cs_cycles: 1024,
                    delay_cycles: 128,
                    duration: point_duration(),
                    selection: LockSelection::Zipfian(0.9),
                    monitor: Some(Arc::clone(&monitor)),
                    ..Default::default()
                },
                repetitions(),
            );
            row.push(result.mops());
        }
        table.push_row(threads.to_string(), row);
    }
    table.print();
    println!("# paper shape: GLK ~20% above MCS in the contended (non-multiprogrammed) middle");
}
