//! Figures 14 & 15: the five software systems with different locks.
//!
//! Runs every system/configuration of Table 2 with MUTEX, TICKET, MCS and
//! GLK and prints throughput normalized to MUTEX. Figure 14 is this harness
//! on one machine and Figure 15 on a second machine — run the same binary on
//! both hosts.
//!
//! Note on the MySQL (and 64-connection SQLite) columns: with fair spinlocks
//! under oversubscription the real systems livelock (the paper reports ~0
//! throughput); here those configurations are still time-bounded but expect
//! TICKET/MCS to collapse relative to MUTEX/GLK.

use gls_bench::{banner, point_duration};
use gls_runtime::hardware_contexts;
use gls_systems::lock_provider::figure14_providers;
use gls_systems::{hamsterdb, kyoto, memcached, mysql, sqlite, SystemResult};
use gls_workloads::report::{geometric_mean, SeriesTable};

fn main() {
    banner(
        "Figures 14/15",
        "five systems x 15 configurations x {MUTEX, TICKET, MCS, GLK}, normalized to MUTEX",
    );
    let providers = figure14_providers();
    let duration = point_duration();
    let hw = hardware_contexts();

    // Every (system, configuration) cell of the figure, in the paper's order.
    type Runner = Box<dyn Fn(&gls_systems::LockProvider) -> SystemResult>;
    let mut cells: Vec<(String, Runner)> = Vec::new();

    for (label, read_percent) in hamsterdb::HamsterConfig::paper_configs() {
        let config = hamsterdb::HamsterConfig {
            read_percent,
            duration,
            keys: 50_000,
            ..Default::default()
        };
        cells.push((
            format!("HamsterDB {label}"),
            Box::new(move |p| hamsterdb::run(p, &config)),
        ));
    }
    for flavor in kyoto::KyotoFlavor::ALL {
        let config = kyoto::KyotoConfig {
            flavor,
            duration,
            keys: 50_000,
            ..Default::default()
        };
        cells.push((
            format!("Kyoto {}", flavor.label()),
            Box::new(move |p| kyoto::run(p, &config)),
        ));
    }
    for (label, get_percent) in memcached::MemcachedConfig::paper_configs() {
        let config = memcached::MemcachedConfig {
            get_percent,
            duration,
            keys: 50_000,
            ..Default::default()
        };
        cells.push((
            format!("Memcached {label}"),
            Box::new(move |p| memcached::run(p, &config)),
        ));
    }
    for workload in [mysql::MysqlWorkload::Mem, mysql::MysqlWorkload::Ssd] {
        let config = mysql::MysqlConfig {
            threads: hw * 3 / 2 + 2,
            workload,
            nodes: 20_000,
            duration,
        };
        cells.push((
            format!("MySQL {}", workload.label()),
            Box::new(move |p| mysql::run(p, &config)),
        ));
    }
    for connections in sqlite::SqliteConfig::paper_connection_counts() {
        let config = sqlite::SqliteConfig {
            connections,
            duration,
        };
        cells.push((
            format!("SQLite {connections} CON"),
            Box::new(move |p| sqlite::run(p, &config)),
        ));
    }

    let mut table = SeriesTable::new(
        "Figures 14/15: throughput normalized to MUTEX",
        "system/config",
        providers.iter().map(|p| p.label()).collect(),
    );
    let mut normalized_per_provider: Vec<Vec<f64>> = vec![Vec::new(); providers.len()];
    for (label, runner) in &cells {
        eprintln!("# running {label} ...");
        let results: Vec<SystemResult> = providers.iter().map(runner).collect();
        let baseline = &results[0];
        let row: Vec<f64> = results.iter().map(|r| r.normalized_to(baseline)).collect();
        for (i, v) in row.iter().enumerate() {
            normalized_per_provider[i].push(*v);
        }
        table.push_row(label.clone(), row);
    }
    table.push_row(
        "Avg (geomean)",
        normalized_per_provider
            .iter()
            .map(|v| geometric_mean(v))
            .collect(),
    );
    table.print();
    println!("# paper shape: GLK >= 1.0 almost everywhere, ~1.2x on average; fair spinlocks collapse on MySQL and SQLite 64 CON");
}
