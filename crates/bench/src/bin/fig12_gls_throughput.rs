//! Figure 12: relative throughput of GLS over direct locking, 10 threads.
//!
//! 10 threads pick among 1, 512 or 4096 locks (high, medium, low contention)
//! with 1024-cycle critical sections; each algorithm is measured directly and
//! through GLS, and the table reports the ratio. The paper's shape: under
//! contention (1 lock) the GLS overhead is hidden by waiting; with thousands
//! of uncontended locks it costs a visible fraction of throughput.

use std::sync::Arc;

use gls::GlsConfig;
use gls_bench::{banner, point_duration, repetitions, setup_for};
use gls_locks::LockKind;
use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
use gls_workloads::report::SeriesTable;
use gls_workloads::{make_locks, microbench, LockSetup, MicrobenchConfig};

fn main() {
    banner(
        "Figure 12",
        "throughput of GLS relative to direct locking, 10 threads, 1/512/4096 locks",
    );
    let kinds = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutex,
        LockKind::Glk,
    ];
    let lock_counts = [1usize, 512, 4096];
    let threads = 10.min(gls_runtime::hardware_contexts().max(2));
    let monitor = Arc::new(SystemLoadMonitor::spawn(SystemLoadConfig::default()));

    let mut table = SeriesTable::new(
        "Figure 12: GLS throughput / direct throughput",
        "locks",
        kinds.iter().map(|k| k.name().to_string()).collect(),
    );
    for &count in &lock_counts {
        let mut row = Vec::new();
        for kind in kinds {
            let config = MicrobenchConfig {
                threads,
                cs_cycles: 1024,
                delay_cycles: 128,
                duration: point_duration(),
                monitor: Some(Arc::clone(&monitor)),
                ..Default::default()
            };
            let direct = microbench::run_median(
                &make_locks(&setup_for(kind, &monitor), count),
                &config,
                repetitions(),
            )
            .mops();
            let through_gls = microbench::run_median(
                &make_locks(
                    &LockSetup::Gls {
                        config: GlsConfig::default(),
                        kind,
                    },
                    count,
                ),
                &config,
                repetitions(),
            )
            .mops();
            row.push(if direct > 0.0 {
                through_gls / direct
            } else {
                0.0
            });
        }
        table.push_row(count.to_string(), row);
    }
    table.print();
    println!(
        "# paper shape: close to 1.0 under contention; the gap grows as locks become uncontended"
    );
}
