//! Figure 5: the ticket-vs-MCS performance crosspoint.
//!
//! For each critical-section length, the number of threads that must contend
//! for a single lock before MCS outperforms TICKET. The paper measures 2–5
//! threads on its Xeons and derives GLK's default ticket→mcs threshold (3).

use gls_bench::{banner, point_duration};
use gls_workloads::crosspoint::find_crosspoint;
use gls_workloads::report::SeriesTable;

fn main() {
    banner(
        "Figure 5",
        "threads needed for MCS to outperform TICKET, vs critical-section size",
    );
    let cs_sizes = [0u64, 500, 1_000, 2_000, 4_000, 6_000, 8_000, 10_000];
    let max_threads = 8.min(gls_runtime::hardware_contexts().max(2));

    let mut table = SeriesTable::new(
        "Figure 5: TICKET/MCS crosspoint (threads) per critical-section size (cycles)",
        "cs_cycles",
        vec!["crosspoint_threads".into()],
    );
    for cs in cs_sizes {
        let result = find_crosspoint(cs, max_threads, point_duration());
        let crosspoint = result.crosspoint.map(|c| c as f64).unwrap_or(f64::NAN);
        table.push_row(cs.to_string(), vec![crosspoint]);
        eprintln!(
            "# cs={cs}: sweep {:?}",
            result
                .samples
                .iter()
                .map(|(t, ticket, mcs)| format!("{t}:{ticket:.2}/{mcs:.2}"))
                .collect::<Vec<_>>()
        );
    }
    table.print();
    println!("# paper shape: crosspoint stays in the 2-5 thread range on x86 multicores");
}
