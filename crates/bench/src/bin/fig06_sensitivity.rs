//! Figure 6: sensitivity of GLK to the adaptation and sampling periods.
//!
//! Relative throughput of GLK versus GLK-with-adaptation-disabled, for 2
//! threads (the non-adaptive baseline fixed to ticket mode) and 8 threads
//! (fixed to mcs mode), as the adaptation period (left) and the queue
//! sampling period (right) vary in powers of two. Short periods hurt; the
//! curves flatten as the period grows, which is why the paper settles on
//! 4096/128.

use std::sync::Arc;

use gls::glk::{GlkConfig, GlkMode, MonitorHandle};
use gls_bench::{banner, point_duration, repetitions};
use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
use gls_workloads::report::SeriesTable;
use gls_workloads::{make_locks, microbench, LockSetup, MicrobenchConfig};

fn measure(config: GlkConfig, threads: usize) -> f64 {
    let monitor = MonitorHandle::Custom(Arc::new(SystemLoadMonitor::manual(
        SystemLoadConfig::default(),
    )));
    let locks = make_locks(&LockSetup::Glk(config, monitor), 1);
    microbench::run_median(
        &locks,
        &MicrobenchConfig {
            threads,
            cs_cycles: 0,
            delay_cycles: 64,
            duration: point_duration(),
            ..Default::default()
        },
        repetitions(),
    )
    .mops()
}

fn main() {
    banner(
        "Figure 6",
        "relative throughput of GLK vs adaptation-disabled GLK, varying the adaptation and sampling periods",
    );
    let periods: Vec<u64> = (0..=12).map(|e| 1u64 << e).collect();
    let scenarios = [(2usize, GlkMode::Ticket), (8usize, GlkMode::Mcs)];

    // Baselines: adaptation disabled, fixed to the mode that matches the
    // scenario (as in the paper).
    let baselines: Vec<f64> = scenarios
        .iter()
        .map(|&(threads, mode)| {
            measure(
                GlkConfig::default()
                    .with_initial_mode(mode)
                    .without_adaptation(),
                threads,
            )
        })
        .collect();

    let mut adaptation = SeriesTable::new(
        "Figure 6 (left): relative throughput vs adaptation period (# CS)",
        "adaptation_period",
        vec!["2 threads (ticket)".into(), "8 threads (mcs)".into()],
    );
    for &period in &periods {
        let mut row = Vec::new();
        for (i, &(threads, mode)) in scenarios.iter().enumerate() {
            let mops = measure(
                GlkConfig::default()
                    .with_initial_mode(mode)
                    .with_adaptation_period(period)
                    .with_sampling_period(period.clamp(1, 128)),
                threads,
            );
            row.push(mops / baselines[i]);
        }
        adaptation.push_row(period.to_string(), row);
    }
    adaptation.print();

    let mut sampling = SeriesTable::new(
        "Figure 6 (right): relative throughput vs queue sampling period (# CS)",
        "sampling_period",
        vec!["2 threads (ticket)".into(), "8 threads (mcs)".into()],
    );
    for &period in &periods {
        let mut row = Vec::new();
        for (i, &(threads, mode)) in scenarios.iter().enumerate() {
            let mops = measure(
                GlkConfig::default()
                    .with_initial_mode(mode)
                    .with_adaptation_period(4096)
                    .with_sampling_period(period),
                threads,
            );
            row.push(mops / baselines[i]);
        }
        sampling.push_row(period.to_string(), row);
    }
    sampling.print();
    println!("# paper shape: short periods cost up to ~50%; curves flatten beyond ~2^8");
}
