//! Figure 10: one lock under contention levels that vary over time.
//!
//! The run is broken into the 14 phases annotated on the paper's figure
//! (threads 2–24, critical sections 310–1004 cycles), with 30 background
//! spinner threads occupying the processor throughout. An adaptive lock must
//! keep re-deciding its mode; the paper measures GLK ~15% above the best
//! static lock (MCS) on average.

use std::sync::Arc;

use gls_bench::{banner, point_duration, setup_for};
use gls_locks::LockKind;
use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
use gls_workloads::make_locks;
use gls_workloads::phases::{paper_figure10_phases, run_phases};
use gls_workloads::report::SeriesTable;

fn main() {
    banner(
        "Figure 10",
        "one lock under a 14-phase varying workload with 30 background threads",
    );
    let kinds = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutex,
        LockKind::Glk,
    ];
    // Each phase lasts one point-duration (the paper uses 0.5-1 s phases).
    let phases = paper_figure10_phases(point_duration());
    let background = 30;

    let mut table = SeriesTable::new(
        "Figure 10: per-phase throughput (Mops/s)",
        "phase(threads,cs)",
        kinds.iter().map(|k| k.name().to_string()).collect(),
    );
    let mut averages = vec![0.0f64; kinds.len()];
    let mut per_kind_results = Vec::new();
    for kind in kinds {
        let monitor = Arc::new(SystemLoadMonitor::spawn(SystemLoadConfig::default()));
        let locks = make_locks(&setup_for(kind, &monitor), 1);
        let results = run_phases(&locks, &phases, background, Some(monitor));
        per_kind_results.push(results);
    }
    for (phase_idx, phase) in phases.iter().enumerate() {
        let mut row = Vec::new();
        for (kind_idx, results) in per_kind_results.iter().enumerate() {
            let mops = results[phase_idx].mops;
            averages[kind_idx] += mops / phases.len() as f64;
            row.push(mops);
        }
        table.push_row(
            format!("{}({},{})", phase_idx, phase.threads, phase.cs_cycles),
            row,
        );
    }
    table.push_row("Average", averages);
    table.print();
    println!("# paper shape: GLK's average beats every static lock (about +15% over MCS)");
}
