//! Figure 1: different lock strategies under varying contention.
//!
//! One lock, rising thread count; compares a simple spinlock (TICKET), a
//! queue lock (MCS) and a blocking lock (MUTEX). The expected shape: the
//! spinlock wins at 1–3 threads, the queue lock wins in the middle, and only
//! the blocking lock survives once threads outnumber hardware contexts.

use gls_bench::{banner, point_duration, repetitions, thread_sweep};
use gls_locks::LockKind;
use gls_workloads::report::SeriesTable;
use gls_workloads::{make_locks, microbench, LockSetup, MicrobenchConfig};

fn main() {
    banner(
        "Figure 1",
        "spinlock vs queue-lock vs blocking lock, one lock, rising threads",
    );
    let kinds = [LockKind::Ticket, LockKind::Mcs, LockKind::Mutex];
    let mut table = SeriesTable::new(
        "Figure 1: throughput (Mops/s) of lock strategies under varying contention",
        "threads",
        kinds.iter().map(|k| k.name().to_string()).collect(),
    );
    for threads in thread_sweep() {
        let mut row = Vec::new();
        for kind in kinds {
            let locks = make_locks(&LockSetup::Direct(kind), 1);
            let result = microbench::run_median(
                &locks,
                &MicrobenchConfig {
                    threads,
                    cs_cycles: 256,
                    delay_cycles: 128,
                    duration: point_duration(),
                    ..Default::default()
                },
                repetitions(),
            );
            row.push(result.mops());
        }
        table.push_row(threads.to_string(), row);
    }
    table.print();
}
