//! §5.1 debugging demo: GLS finds the two latent Memcached locking bugs.
//!
//! Builds the simulated Memcached with its two legacy bugs enabled, on top of
//! a GLS service running in debug mode, runs a short workload, and prints the
//! issue log — which must contain exactly the two warnings the paper shows
//! (an uninitialized `stats_lock` and an already-free
//! `slabs_rebalance_lock`), and nothing else.

use std::sync::Arc;
use std::time::Duration;

use gls::{GlsConfig, GlsService};
use gls_bench::banner;
use gls_systems::memcached::{self, MemcachedConfig};
use gls_systems::LockProvider;

fn main() {
    banner(
        "§5.1 debug demo",
        "detecting the two latent Memcached locking bugs with GLS debug mode",
    );
    let service = Arc::new(GlsService::with_config(GlsConfig::debug()));
    let provider = LockProvider::Gls(Arc::clone(&service));
    let config = MemcachedConfig {
        threads: 4,
        keys: 10_000,
        duration: Duration::from_millis(200),
        ..Default::default()
    }
    .with_legacy_bugs(true);

    let result = memcached::run(&provider, &config);
    println!(
        "# workload finished: {} operations in {:?}",
        result.operations, result.elapsed
    );

    println!("# issues reported by GLS:");
    let issues = service.issues();
    for issue in &issues {
        println!("{issue}");
    }
    let uninitialized = issues
        .iter()
        .filter(|i| i.category() == "uninitialized-lock")
        .count();
    let already_free = issues
        .iter()
        .filter(|i| i.category() == "release-free-lock")
        .count();
    println!("# uninitialized-lock warnings: {uninitialized}");
    println!("# release-free-lock warnings:  {already_free}");
    assert!(uninitialized >= 1, "the stats_lock bug must be detected");
    assert!(
        already_free >= 1,
        "the slabs_rebalance_lock bug must be detected"
    );
    println!("# both §5.1 issues detected, as in the paper");
}
