//! §5.1 debugging demo: GLS finds the two latent Memcached locking bugs.
//!
//! Builds the simulated Memcached with its two legacy bugs enabled, on top of
//! a GLS service running in debug mode, runs a short workload, and prints the
//! issue log — which must contain exactly the two warnings the paper shows
//! (an uninitialized `stats_lock` and an already-free
//! `slabs_rebalance_lock`), and nothing else.
//!
//! While the workload runs, a background telemetry publisher prints a
//! [`gls::TelemetrySnapshot`] every 100 ms — the always-on observability
//! view of the same run. `--snapshot-json PATH` additionally writes the
//! final snapshot as JSON so CI can validate it against the snapshot schema.

use std::sync::Arc;
use std::time::Duration;

use gls::{GlsConfig, GlsService};
use gls_bench::banner;
use gls_systems::memcached::{self, MemcachedConfig};
use gls_systems::LockProvider;

fn main() {
    let mut snapshot_json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--snapshot-json" => {
                snapshot_json = Some(args.next().expect("--snapshot-json needs a path"));
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    banner(
        "§5.1 debug demo",
        "detecting the two latent Memcached locking bugs with GLS debug mode",
    );
    let service = Arc::new(GlsService::with_config(GlsConfig::debug()));
    let provider = LockProvider::Gls(Arc::clone(&service));
    let config = MemcachedConfig {
        threads: 4,
        keys: 10_000,
        duration: Duration::from_millis(200),
        ..Default::default()
    }
    .with_legacy_bugs(true);

    // Periodic observability: print a telemetry snapshot while the workload
    // runs, exactly as a long-lived server would.
    let publisher = service.spawn_telemetry_publisher(Duration::from_millis(100), |snapshot| {
        println!("{snapshot}");
    });

    let result = memcached::run(&provider, &config);
    publisher.stop();
    println!(
        "# workload finished: {} operations in {:?}",
        result.operations, result.elapsed
    );

    let snapshot = service.telemetry_snapshot();
    println!("# final telemetry snapshot:");
    println!("{snapshot}");
    if let Some(path) = snapshot_json {
        std::fs::write(&path, snapshot.to_json()).expect("writing the snapshot JSON");
        println!("# wrote {path}");
    }

    println!("# issues reported by GLS:");
    let issues = service.issues();
    for issue in &issues {
        println!("{issue}");
    }
    let uninitialized = issues
        .iter()
        .filter(|i| i.category() == "uninitialized-lock")
        .count();
    let already_free = issues
        .iter()
        .filter(|i| i.category() == "release-free-lock")
        .count();
    println!("# uninitialized-lock warnings: {uninitialized}");
    println!("# release-free-lock warnings:  {already_free}");
    assert!(uninitialized >= 1, "the stats_lock bug must be detected");
    assert!(
        already_free >= 1,
        "the slabs_rebalance_lock bug must be detected"
    );
    println!("# both §5.1 issues detected, as in the paper");
}
