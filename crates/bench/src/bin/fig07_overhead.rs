//! Figure 7: overhead of GLK versus the best per-configuration lock.
//!
//! Three configurations, each favouring a different algorithm: a single
//! uncontested thread (TICKET territory), 10 threads on one lock (MCS
//! territory), and 10 threads plus enough background spinners to oversubscribe
//! the machine (MUTEX territory). For each configuration the table reports
//! the throughput of every lock normalized to the best one; the paper
//! measures GLK at 0.78 / 0.93 / 0.99 of the best lock respectively.

use std::sync::Arc;

use gls_bench::{banner, point_duration, repetitions, setup_for};
use gls_locks::LockKind;
use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
use gls_workloads::report::SeriesTable;
use gls_workloads::{make_locks, microbench, MicrobenchConfig};

fn main() {
    banner(
        "Figure 7",
        "relative throughput of GLK vs the best per-configuration lock",
    );
    let hw = gls_runtime::hardware_contexts();
    let contended_threads = 10.min(hw.max(2));
    let configs: Vec<(&str, usize, usize)> = vec![
        ("1 thread", 1, 0),
        ("10 threads", contended_threads, 0),
        ("multiprog.", contended_threads, hw * 2),
    ];
    let kinds = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutex,
        LockKind::Glk,
    ];

    let mut table = SeriesTable::new(
        "Figure 7: throughput normalized to the best lock per configuration",
        "configuration",
        kinds.iter().map(|k| k.name().to_string()).collect(),
    );
    for (label, threads, spinners) in configs {
        let monitor = Arc::new(SystemLoadMonitor::spawn(SystemLoadConfig::default()));
        let mut absolute = Vec::new();
        for kind in kinds {
            let locks = make_locks(&setup_for(kind, &monitor), 1);
            let result = microbench::run_median(
                &locks,
                &MicrobenchConfig {
                    threads,
                    cs_cycles: 0,
                    delay_cycles: 64,
                    duration: point_duration(),
                    background_spinners: spinners,
                    monitor: Some(Arc::clone(&monitor)),
                    ..Default::default()
                },
                repetitions(),
            );
            absolute.push(result.mops());
        }
        let best = absolute.iter().cloned().fold(f64::MIN, f64::max);
        table.push_row(
            label,
            absolute.iter().map(|m| m / best).collect::<Vec<f64>>(),
        );
    }
    table.print();
    println!("# paper shape: GLK reaches ~0.78 / 0.93 / 0.99 of the best lock per configuration");
}
