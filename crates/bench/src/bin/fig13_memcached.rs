//! Figure 13: the Memcached re-implementations of §5.1.
//!
//! Normalized (to MUTEX) throughput of four versions of the simulated
//! Memcached on the GET / SET-GET / SET mixes: the default MUTEX locking,
//! GLK dropped underneath the existing locks, the GLS rewrite (service with
//! the default GLK algorithm), and the GLS SPECIALIZED rewrite (explicit MCS
//! for the contended global locks, TICKET everywhere else). The paper
//! measures GLK ≈ +14%, GLS ≈ +7%, GLS SPECIALIZED ≈ +14% over MUTEX on
//! average.

use gls_bench::{banner, point_duration};
use gls_systems::memcached::{self, MemcachedConfig};
use gls_systems::LockProvider;
use gls_workloads::report::SeriesTable;

fn main() {
    banner(
        "Figure 13",
        "normalized throughput of the Memcached implementations (MUTEX / GLK / GLS / GLS SPECIALIZED)",
    );
    let providers: Vec<LockProvider> = vec![
        LockProvider::mutex(),
        LockProvider::glk(),
        LockProvider::gls(),
        LockProvider::gls_specialized(),
    ];
    let mixes = MemcachedConfig::paper_configs();

    let mut table = SeriesTable::new(
        "Figure 13: Memcached throughput normalized to MUTEX",
        "workload",
        providers.iter().map(|p| p.label()).collect(),
    );
    let mut sums = vec![0.0f64; providers.len()];
    for (label, get_percent) in mixes {
        let config = MemcachedConfig {
            get_percent,
            duration: point_duration(),
            ..Default::default()
        };
        let results: Vec<_> = providers
            .iter()
            .map(|p| memcached::run(p, &config))
            .collect();
        let baseline = &results[0];
        let row: Vec<f64> = results.iter().map(|r| r.normalized_to(baseline)).collect();
        for (i, v) in row.iter().enumerate() {
            sums[i] += v / mixes.len() as f64;
        }
        table.push_row(label, row);
    }
    table.push_row("Avg", sums);
    table.print();
    println!("# paper shape: GLK and GLS SPECIALIZED ~1.14x, GLS ~1.07x, relative to MUTEX");
}
