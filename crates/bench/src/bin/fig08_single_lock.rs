//! Figure 8: a single lock under varying contention.
//!
//! One lock, 1024-cycle critical sections, rising thread count, comparing
//! TICKET, MCS, MUTEX and GLK. Expected shape: GLK tracks TICKET up to ~3
//! threads, tracks MCS in the contended middle, and avoids the spinlock
//! collapse once threads exceed hardware contexts (mutex mode).

use std::sync::Arc;

use gls_bench::{banner, point_duration, repetitions, setup_for, thread_sweep};
use gls_locks::LockKind;
use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
use gls_workloads::report::SeriesTable;
use gls_workloads::{make_locks, microbench, MicrobenchConfig};

fn main() {
    banner(
        "Figure 8",
        "a single lock on varying contention (CS = 1024 cycles)",
    );
    let kinds = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Mutex,
        LockKind::Glk,
    ];
    let monitor = Arc::new(SystemLoadMonitor::spawn(SystemLoadConfig::default()));

    let mut table = SeriesTable::new(
        "Figure 8: single-lock throughput (Mops/s)",
        "threads",
        kinds.iter().map(|k| k.name().to_string()).collect(),
    );
    for threads in thread_sweep() {
        let mut row = Vec::new();
        for kind in kinds {
            let locks = make_locks(&setup_for(kind, &monitor), 1);
            let result = microbench::run_median(
                &locks,
                &MicrobenchConfig {
                    threads,
                    cs_cycles: 1024,
                    delay_cycles: 128,
                    duration: point_duration(),
                    monitor: Some(Arc::clone(&monitor)),
                    ..Default::default()
                },
                repetitions(),
            );
            row.push(result.mops());
        }
        table.push_row(threads.to_string(), row);
    }
    table.print();
    println!("# paper shape: GLK follows TICKET at <=3 threads, MCS in the middle, MUTEX beyond the core count");
}
