//! The core microbenchmark driver (§3.2, "Experimental Methodology").
//!
//! Threads execute in a loop, performing lock and unlock operations on lock
//! objects. Each run configures (i) the number of threads, (ii) the number of
//! lock objects, (iii) the duration of the critical section in CPU cycles.
//! After every iteration threads wait a short duration outside the critical
//! section to avoid long runs. On every iteration each thread selects a lock
//! at random (uniformly or zipfian-skewed). Worker threads are pinned
//! round-robin over the hardware contexts
//! ([`gls_runtime::topology::pin_worker`]) so measurements come from a known
//! placement; on platforms without affinity support the pin is a no-op and
//! the scheduler places them, as before.

// Workload think-time is modeled as real wall-clock sleeps by design
// (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gls_runtime::{spin_cycles, SystemLoadMonitor};

use crate::bench_lock::BenchLock;
use crate::multiprog::BackgroundSpinners;
use crate::zipf::Zipfian;

/// How threads pick the next lock to acquire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LockSelection {
    /// Uniformly at random among all lock objects.
    Uniform,
    /// Zipfian-skewed with the given α (Figure 9 uses 0.9).
    Zipfian(f64),
}

/// Configuration of one microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicrobenchConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Critical-section length in CPU cycles (0 = empty critical section).
    pub cs_cycles: u64,
    /// Delay outside the critical section, in cycles, "to avoid long runs".
    pub delay_cycles: u64,
    /// Wall-clock duration of the measurement.
    pub duration: Duration,
    /// Lock-selection policy.
    pub selection: LockSelection,
    /// Number of additional background spinner threads (multiprogramming).
    pub background_spinners: usize,
    /// Optional system-load monitor with which workers and spinners register
    /// as runnable (so GLK's multiprogramming detection sees them).
    pub monitor: Option<Arc<SystemLoadMonitor>>,
    /// RNG seed so runs are reproducible.
    pub seed: u64,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            cs_cycles: 0,
            delay_cycles: 100,
            duration: Duration::from_millis(200),
            selection: LockSelection::Uniform,
            background_spinners: 0,
            monitor: None,
            seed: 0x5EED,
        }
    }
}

/// Result of one microbenchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrobenchResult {
    /// Total completed critical sections across all threads.
    pub total_ops: u64,
    /// Completed critical sections per worker thread.
    pub per_thread_ops: Vec<u64>,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
}

impl MicrobenchResult {
    /// Throughput in million operations per second (the paper's Mops/s axis).
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs one microbenchmark over the given lock objects.
///
/// # Panics
///
/// Panics if `locks` is empty or `config.threads` is zero.
pub fn run(locks: &[Arc<dyn BenchLock>], config: &MicrobenchConfig) -> MicrobenchResult {
    assert!(!locks.is_empty(), "microbenchmark needs at least one lock");
    assert!(
        config.threads > 0,
        "microbenchmark needs at least one thread"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let _spinners = BackgroundSpinners::start(config.background_spinners, config.monitor.clone());

    let zipf = match config.selection {
        LockSelection::Uniform => None,
        LockSelection::Zipfian(alpha) => Some(Arc::new(Zipfian::new(locks.len(), alpha))),
    };

    let start = Instant::now();
    let handles: Vec<_> = (0..config.threads)
        .map(|t| {
            let locks: Vec<Arc<dyn BenchLock>> = locks.to_vec();
            let stop = Arc::clone(&stop);
            let zipf = zipf.clone();
            let monitor = config.monitor.clone();
            let cs_cycles = config.cs_cycles;
            let delay_cycles = config.delay_cycles;
            let seed = config.seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            std::thread::spawn(move || {
                // Workers measure from a known placement (round-robin over
                // the hardware contexts); background spinners stay unpinned
                // on purpose — they model other applications floating under
                // the OS scheduler.
                gls_runtime::topology::pin_worker(t);
                let _runnable = monitor.as_ref().map(|m| m.runnable_guard());
                let mut rng = StdRng::seed_from_u64(seed);
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let index = match &zipf {
                        Some(z) => z.sample(&mut rng),
                        None => {
                            if locks.len() == 1 {
                                0
                            } else {
                                rng.gen_range(0..locks.len())
                            }
                        }
                    };
                    let lock = &locks[index];
                    lock.acquire();
                    spin_cycles(cs_cycles);
                    lock.release();
                    spin_cycles(delay_cycles);
                    ops += 1;
                }
                ops
            })
        })
        .collect();

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let per_thread_ops: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let elapsed = start.elapsed();

    MicrobenchResult {
        total_ops: per_thread_ops.iter().sum(),
        per_thread_ops,
        elapsed,
    }
}

/// Runs `repetitions` copies of the benchmark and returns the run with the
/// median throughput (the paper reports "the median value of 11 repetitions").
pub fn run_median(
    locks: &[Arc<dyn BenchLock>],
    config: &MicrobenchConfig,
    repetitions: usize,
) -> MicrobenchResult {
    assert!(repetitions > 0, "need at least one repetition");
    let mut results: Vec<MicrobenchResult> = (0..repetitions).map(|_| run(locks, config)).collect();
    results.sort_by(|a, b| {
        a.mops()
            .partial_cmp(&b.mops())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    results.swap_remove(results.len() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_lock::{make_locks, LockSetup};
    use gls_locks::LockKind;

    fn quick(threads: usize, locks: usize, kind: LockKind) -> MicrobenchResult {
        let locks = make_locks(&LockSetup::Direct(kind), locks);
        run(
            &locks,
            &MicrobenchConfig {
                threads,
                cs_cycles: 100,
                delay_cycles: 50,
                duration: Duration::from_millis(80),
                ..Default::default()
            },
        )
    }

    #[test]
    fn single_thread_single_lock_makes_progress() {
        let r = quick(1, 1, LockKind::Ticket);
        assert!(r.total_ops > 1_000, "got only {} ops", r.total_ops);
        assert_eq!(r.per_thread_ops.len(), 1);
        assert!(r.mops() > 0.0);
    }

    #[test]
    fn all_threads_make_progress_under_contention() {
        let r = quick(4, 1, LockKind::Mcs);
        assert_eq!(r.per_thread_ops.len(), 4);
        for (i, ops) in r.per_thread_ops.iter().enumerate() {
            assert!(*ops > 0, "thread {i} starved");
        }
    }

    #[test]
    fn multiple_locks_scale_better_than_single_lock() {
        // With 8 uncontended locks, 4 threads should complete clearly more
        // critical sections than with a single shared lock.
        let single = quick(4, 1, LockKind::Ticket);
        let many = quick(4, 64, LockKind::Ticket);
        assert!(
            many.total_ops as f64 > single.total_ops as f64 * 1.2,
            "single: {}, many: {}",
            single.total_ops,
            many.total_ops
        );
    }

    #[test]
    fn zipfian_selection_runs() {
        let locks = make_locks(&LockSetup::Direct(LockKind::Glk), 8);
        let r = run(
            &locks,
            &MicrobenchConfig {
                threads: 4,
                cs_cycles: 200,
                selection: LockSelection::Zipfian(0.9),
                duration: Duration::from_millis(80),
                ..Default::default()
            },
        );
        assert!(r.total_ops > 0);
    }

    #[test]
    fn median_selection_returns_a_plausible_run() {
        let locks = make_locks(&LockSetup::Direct(LockKind::Ticket), 1);
        let config = MicrobenchConfig {
            threads: 2,
            duration: Duration::from_millis(40),
            ..Default::default()
        };
        let median = run_median(&locks, &config, 3);
        assert!(median.total_ops > 0);
    }

    #[test]
    #[should_panic(expected = "at least one lock")]
    fn empty_lock_set_rejected() {
        run(&[], &MicrobenchConfig::default());
    }

    #[test]
    fn gls_backed_benchmark_runs() {
        let locks = make_locks(
            &LockSetup::Gls {
                config: gls::GlsConfig::default(),
                kind: LockKind::Glk,
            },
            4,
        );
        let r = run(
            &locks,
            &MicrobenchConfig {
                threads: 4,
                cs_cycles: 100,
                duration: Duration::from_millis(80),
                ..Default::default()
            },
        );
        assert!(r.total_ops > 0);
    }
}
