//! Zipfian selection of lock objects / keys.
//!
//! Figure 9 of the paper drives eight locks with a zipfian skew of α = 0.9,
//! so that "the two most busy locks serve 34% and 18% of the requests". This
//! module implements the classic CDF-inversion zipfian sampler used by that
//! experiment (and by the simulated systems' key popularity).

use rand::Rng;

/// A zipfian distribution over `0..n` with exponent `alpha`.
///
/// Rank 0 is the most popular element. Sampling is O(log n) via binary search
/// on the precomputed CDF.
///
/// # Example
///
/// ```
/// use gls_workloads::Zipfian;
/// use rand::SeedableRng;
///
/// let zipf = Zipfian::new(8, 0.9);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let sample = zipf.sample(&mut rng);
/// assert!(sample < 8);
/// // Rank 0 must be the most likely outcome.
/// assert!(zipf.probability(0) > zipf.probability(7));
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Builds a zipfian distribution over `n` elements with skew `alpha`.
    ///
    /// `alpha = 0.0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipfian distribution needs at least one element");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "zipfian alpha must be a non-negative finite number"
        );
        let weights: Vec<f64> = (1..=n)
            .map(|rank| 1.0 / (rank as f64).powf(alpha))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point drift on the last bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero elements (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of element `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn probability(&self, rank: usize) -> f64 {
        let upper = self.cdf[rank];
        let lower = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        upper - lower
    }

    /// Draws one element.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF contains NaN"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipfian::new(4, 0.0);
        for rank in 0..4 {
            assert!((z.probability(rank) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_elements_rejected() {
        Zipfian::new(0, 0.9);
    }

    #[test]
    fn paper_figure9_skew_matches_reported_shares() {
        // "The two most busy locks serve 34% and 18% of the requests" for
        // 8 locks with alpha = 0.9.
        let z = Zipfian::new(8, 0.9);
        assert!(
            (z.probability(0) - 0.34).abs() < 0.02,
            "{}",
            z.probability(0)
        );
        assert!(
            (z.probability(1) - 0.18).abs() < 0.02,
            "{}",
            z.probability(1)
        );
    }

    #[test]
    fn empirical_frequencies_match_probabilities() {
        let z = Zipfian::new(8, 0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut counts = [0u64; 8];
        let samples = 200_000;
        for _ in 0..samples {
            counts[z.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            let freq = count as f64 / samples as f64;
            assert!(
                (freq - z.probability(rank)).abs() < 0.01,
                "rank {rank}: freq {freq} vs p {}",
                z.probability(rank)
            );
        }
    }

    proptest! {
        /// Probabilities sum to 1 and are monotonically non-increasing in rank.
        #[test]
        fn probabilities_are_a_decreasing_distribution(n in 1usize..128, alpha in 0.0f64..2.0) {
            let z = Zipfian::new(n, alpha);
            let total: f64 = (0..n).map(|r| z.probability(r)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for r in 1..n {
                prop_assert!(z.probability(r) <= z.probability(r - 1) + 1e-12);
            }
        }

        /// Samples are always in range.
        #[test]
        fn samples_in_range(n in 1usize..64, alpha in 0.0f64..2.0, seed in 0u64..1000) {
            let z = Zipfian::new(n, alpha);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }
    }
}
