//! A uniform facade over every lock the harness measures.
//!
//! The paper's figures compare TAS/TTAS/TICKET/MCS/CLH/MUTEX, GLK, and
//! GLS-mediated locking on identical workloads. [`BenchLock`] is the small
//! object-safe trait the microbenchmark driver uses; [`make_locks`] builds a
//! set of lock objects for any of those setups.

use std::fmt;
use std::sync::Arc;

use gls::glk::{GlkConfig, GlkLock, MonitorHandle};
use gls::{GlsConfig, GlsService};
use gls_locks::{
    ClhLock, FutexLock, LockKind, McsLock, MutexLock, RawLock, TasLock, TicketLock, TtasLock,
};

/// A lock as seen by the microbenchmark driver.
pub trait BenchLock: Send + Sync {
    /// Acquires the lock.
    fn acquire(&self);
    /// Releases the lock.
    fn release(&self);
    /// Display label for reports.
    fn label(&self) -> &'static str;
}

macro_rules! impl_bench_for_raw {
    ($ty:ty) => {
        impl BenchLock for $ty {
            fn acquire(&self) {
                RawLock::lock(self)
            }
            fn release(&self) {
                RawLock::unlock(self)
            }
            fn label(&self) -> &'static str {
                <$ty as RawLock>::NAME
            }
        }
    };
}

impl_bench_for_raw!(TasLock);
impl_bench_for_raw!(TtasLock);
impl_bench_for_raw!(TicketLock);
impl_bench_for_raw!(McsLock);
impl_bench_for_raw!(ClhLock);
impl_bench_for_raw!(MutexLock);
impl_bench_for_raw!(FutexLock);

impl BenchLock for GlkLock {
    fn acquire(&self) {
        self.lock()
    }
    fn release(&self) {
        self.unlock()
    }
    fn label(&self) -> &'static str {
        "GLK"
    }
}

/// A lock reached *through* the GLS service (used by the overhead
/// experiments of Figures 11–13): every acquire/release goes through the
/// address → lock mapping, the lock cache, and the configured algorithm.
pub struct GlsBenchLock {
    service: Arc<GlsService>,
    addr: usize,
    kind: LockKind,
}

impl fmt::Debug for GlsBenchLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlsBenchLock")
            .field("addr", &self.addr)
            .field("kind", &self.kind)
            .finish()
    }
}

impl BenchLock for GlsBenchLock {
    fn acquire(&self) {
        if self.kind == LockKind::Glk {
            self.service
                .lock_addr(self.addr)
                .expect("GLS lock cannot fail in normal mode");
        } else {
            self.service
                .lock_with(self.kind, self.addr)
                .expect("GLS lock cannot fail in normal mode");
        }
    }

    fn release(&self) {
        self.service
            .unlock_addr(self.addr)
            .expect("GLS unlock of a held lock cannot fail");
    }

    fn label(&self) -> &'static str {
        match self.kind {
            LockKind::Glk => "GLS(GLK)",
            LockKind::Ticket => "GLS(TICKET)",
            LockKind::Mcs => "GLS(MCS)",
            LockKind::Mutex => "GLS(MUTEX)",
            LockKind::Tas => "GLS(TAS)",
            LockKind::Ttas => "GLS(TTAS)",
            LockKind::Clh => "GLS(CLH)",
            LockKind::Futex => "GLS(FUTEX)",
            LockKind::FutexRw => "GLS(FUTEX-RW)",
            LockKind::Rw => "GLS(RW)",
        }
    }
}

/// The adaptive reader-writer lock measured as a plain mutex (exclusive
/// mode), so rw entries can ride the same single-lock figures.
struct RwAsMutex(gls::glk::GlkRwLock);

impl BenchLock for RwAsMutex {
    fn acquire(&self) {
        self.0.write_lock()
    }
    fn release(&self) {
        self.0.write_unlock()
    }
    fn label(&self) -> &'static str {
        "RW"
    }
}

/// The futex rwlock measured as a plain mutex (exclusive mode).
struct FutexRwAsMutex(gls_locks::FutexRwLock);

impl BenchLock for FutexRwAsMutex {
    fn acquire(&self) {
        RawLock::lock(&self.0)
    }
    fn release(&self) {
        RawLock::unlock(&self.0)
    }
    fn label(&self) -> &'static str {
        <gls_locks::FutexRwLock as RawLock>::NAME
    }
}

/// What kind of lock objects to build for an experiment.
#[derive(Debug, Clone)]
pub enum LockSetup {
    /// Direct use of a concrete algorithm or of GLK.
    Direct(LockKind),
    /// Direct GLK with a custom configuration/monitor.
    Glk(GlkConfig, MonitorHandle),
    /// Locking through a GLS service with the given per-address algorithm.
    Gls {
        /// Service configuration (normal/debug/profile, GLK settings).
        config: GlsConfig,
        /// Algorithm used for every benchmark address.
        kind: LockKind,
    },
}

impl LockSetup {
    /// Label used in reports for this setup.
    pub fn label(&self) -> String {
        match self {
            LockSetup::Direct(kind) => kind.name().to_string(),
            LockSetup::Glk(..) => "GLK".to_string(),
            LockSetup::Gls { kind, .. } => format!("GLS({})", kind.name()),
        }
    }
}

/// Builds `n` independent lock objects for the given setup.
///
/// Every lock is padded/heap-allocated separately, matching the paper's
/// "pad all locks to 64 bytes" methodology (the lock structures themselves
/// are cache-line padded).
pub fn make_locks(setup: &LockSetup, n: usize) -> Vec<Arc<dyn BenchLock>> {
    match setup {
        LockSetup::Direct(kind) => (0..n).map(|_| make_direct(*kind)).collect(),
        LockSetup::Glk(config, monitor) => (0..n)
            .map(|_| {
                Arc::new(GlkLock::with_config_and_monitor(
                    config.clone(),
                    monitor.clone(),
                )) as Arc<dyn BenchLock>
            })
            .collect(),
        LockSetup::Gls { config, kind } => {
            let service = Arc::new(GlsService::with_config(config.clone()));
            (0..n)
                .map(|i| {
                    Arc::new(GlsBenchLock {
                        service: Arc::clone(&service),
                        // Spread addresses a cache line apart, mimicking
                        // distinct lock sites in a real program.
                        addr: 0x10_0000 + i * 64,
                        kind: *kind,
                    }) as Arc<dyn BenchLock>
                })
                .collect()
        }
    }
}

fn make_direct(kind: LockKind) -> Arc<dyn BenchLock> {
    match kind {
        LockKind::Tas => Arc::new(TasLock::new()),
        LockKind::Ttas => Arc::new(TtasLock::new()),
        LockKind::Ticket => Arc::new(TicketLock::new()),
        LockKind::Mcs => Arc::new(McsLock::new()),
        LockKind::Clh => Arc::new(ClhLock::new()),
        LockKind::Mutex => Arc::new(MutexLock::new()),
        LockKind::Futex => Arc::new(FutexLock::new()),
        LockKind::FutexRw => Arc::new(FutexRwAsMutex(gls_locks::FutexRwLock::new())),
        LockKind::Glk => Arc::new(GlkLock::new()),
        LockKind::Rw => Arc::new(RwAsMutex(gls::glk::GlkRwLock::new())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_locks_roundtrip_for_every_kind() {
        for kind in LockKind::ALL {
            let locks = make_locks(&LockSetup::Direct(kind), 3);
            assert_eq!(locks.len(), 3);
            for lock in &locks {
                lock.acquire();
                lock.release();
            }
        }
    }

    #[test]
    fn gls_setup_shares_one_service_across_locks() {
        let locks = make_locks(
            &LockSetup::Gls {
                config: GlsConfig::default(),
                kind: LockKind::Ticket,
            },
            4,
        );
        for lock in &locks {
            lock.acquire();
            lock.release();
            assert_eq!(lock.label(), "GLS(TICKET)");
        }
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(LockSetup::Direct(LockKind::Mcs).label(), "MCS");
        assert_eq!(
            LockSetup::Gls {
                config: GlsConfig::default(),
                kind: LockKind::Glk
            }
            .label(),
            "GLS(GLK)"
        );
    }

    #[test]
    fn glk_setup_with_custom_config() {
        let locks = make_locks(
            &LockSetup::Glk(GlkConfig::default(), MonitorHandle::Global),
            2,
        );
        for lock in &locks {
            lock.acquire();
            lock.release();
            assert_eq!(lock.label(), "GLK");
        }
    }
}
