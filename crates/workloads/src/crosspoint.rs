//! The ticket-vs-MCS performance crosspoint (Figure 5).
//!
//! For a given critical-section length, the crosspoint is the smallest number
//! of threads concurrently using one lock at which MCS outperforms TICKET.
//! The paper measures it at 2–5 threads on its two Xeons and uses "3" as the
//! ticket→mcs threshold of GLK.

use std::time::Duration;

use gls_locks::LockKind;

use crate::bench_lock::{make_locks, LockSetup};
use crate::microbench::{self, MicrobenchConfig};

/// Result of a crosspoint search for one critical-section length.
#[derive(Debug, Clone, PartialEq)]
pub struct CrosspointResult {
    /// Critical-section length in cycles.
    pub cs_cycles: u64,
    /// Smallest thread count at which MCS throughput exceeded TICKET
    /// throughput, or `None` if it never did within the searched range.
    pub crosspoint: Option<usize>,
    /// `(threads, ticket Mops/s, mcs Mops/s)` samples for the whole sweep.
    pub samples: Vec<(usize, f64, f64)>,
}

/// Measures TICKET and MCS throughput on a single lock for each thread count
/// in `2..=max_threads` and reports where MCS starts winning.
pub fn find_crosspoint(cs_cycles: u64, max_threads: usize, duration: Duration) -> CrosspointResult {
    let mut samples = Vec::new();
    let mut crosspoint = None;
    for threads in 2..=max_threads.max(2) {
        let config = MicrobenchConfig {
            threads,
            cs_cycles,
            delay_cycles: 100,
            duration,
            ..Default::default()
        };
        let ticket = microbench::run(
            &make_locks(&LockSetup::Direct(LockKind::Ticket), 1),
            &config,
        )
        .mops();
        let mcs =
            microbench::run(&make_locks(&LockSetup::Direct(LockKind::Mcs), 1), &config).mops();
        samples.push((threads, ticket, mcs));
        if crosspoint.is_none() && mcs > ticket {
            crosspoint = Some(threads);
        }
    }
    CrosspointResult {
        cs_cycles,
        crosspoint,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_sample_per_thread_count() {
        let result = find_crosspoint(500, 4, Duration::from_millis(40));
        assert_eq!(result.cs_cycles, 500);
        assert_eq!(result.samples.len(), 3); // threads 2, 3, 4
        for (threads, ticket, mcs) in &result.samples {
            assert!(*threads >= 2 && *threads <= 4);
            assert!(*ticket > 0.0);
            assert!(*mcs > 0.0);
        }
        if let Some(cp) = result.crosspoint {
            assert!((2..=4).contains(&cp));
        }
    }
}
