//! Time-varying (phased) workloads — Figure 10.
//!
//! The paper's "varying workload" experiment breaks a run into phases of
//! 0.5–1 s each; in each phase the number of active threads is drawn from
//! 1–24 and the critical-section length changes, while 30 background threads
//! occupy the processor. The same lock object(s) persist across phases, so
//! an adaptive lock must keep re-deciding its mode.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gls_runtime::SystemLoadMonitor;

use crate::bench_lock::BenchLock;
use crate::microbench::{self, LockSelection, MicrobenchConfig};
use crate::multiprog::BackgroundSpinners;

/// One phase of a varying workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Number of worker threads active during this phase.
    pub threads: usize,
    /// Critical-section length in cycles.
    pub cs_cycles: u64,
    /// Phase duration.
    pub duration: Duration,
}

/// Throughput measured for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseResult {
    /// The phase that was executed.
    pub phase: Phase,
    /// Completed critical sections.
    pub total_ops: u64,
    /// Throughput in Mops/s.
    pub mops: f64,
}

/// Generates a random phase schedule in the shape of the paper's Figure 10:
/// `count` phases, each with 1..=`max_threads` worker threads and a
/// critical-section length drawn from 300..1050 cycles.
pub fn random_phases(
    count: usize,
    max_threads: usize,
    duration: Duration,
    seed: u64,
) -> Vec<Phase> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Phase {
            threads: rng.gen_range(1..=max_threads.max(1)),
            cs_cycles: rng.gen_range(300..1050),
            duration,
        })
        .collect()
}

/// The exact phase parameters printed on top of the paper's Figure 10
/// (threads, critical-section cycles), phases 0–13.
pub fn paper_figure10_phases(duration: Duration) -> Vec<Phase> {
    const THREADS: [usize; 14] = [16, 7, 19, 2, 7, 21, 7, 19, 8, 11, 24, 19, 16, 8];
    const CS: [u64; 14] = [
        971, 706, 658, 765, 525, 665, 388, 1004, 310, 678, 733, 589, 479, 675,
    ];
    THREADS
        .iter()
        .zip(CS.iter())
        .map(|(&threads, &cs_cycles)| Phase {
            threads,
            cs_cycles,
            duration,
        })
        .collect()
}

/// Runs every phase in order against the same lock objects, with
/// `background_spinners` extra busy threads for the whole run.
pub fn run_phases(
    locks: &[Arc<dyn BenchLock>],
    phases: &[Phase],
    background_spinners: usize,
    monitor: Option<Arc<SystemLoadMonitor>>,
) -> Vec<PhaseResult> {
    let _spinners = BackgroundSpinners::start(background_spinners, monitor.clone());
    phases
        .iter()
        .map(|phase| {
            let result = microbench::run(
                locks,
                &MicrobenchConfig {
                    threads: phase.threads,
                    cs_cycles: phase.cs_cycles,
                    delay_cycles: 100,
                    duration: phase.duration,
                    selection: LockSelection::Uniform,
                    background_spinners: 0,
                    monitor: monitor.clone(),
                    seed: 0xF16,
                },
            );
            PhaseResult {
                phase: *phase,
                total_ops: result.total_ops,
                mops: result.mops(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_lock::{make_locks, LockSetup};
    use gls_locks::LockKind;

    #[test]
    fn paper_phases_match_the_figure_annotations() {
        let phases = paper_figure10_phases(Duration::from_millis(100));
        assert_eq!(phases.len(), 14);
        assert_eq!(phases[0].threads, 16);
        assert_eq!(phases[0].cs_cycles, 971);
        assert_eq!(phases[3].threads, 2);
        assert_eq!(phases[10].threads, 24);
    }

    #[test]
    fn random_phases_respect_bounds() {
        let phases = random_phases(20, 24, Duration::from_millis(10), 7);
        assert_eq!(phases.len(), 20);
        for p in &phases {
            assert!(p.threads >= 1 && p.threads <= 24);
            assert!(p.cs_cycles >= 300 && p.cs_cycles < 1050);
        }
    }

    #[test]
    fn random_phases_are_reproducible_by_seed() {
        let a = random_phases(10, 16, Duration::from_millis(10), 99);
        let b = random_phases(10, 16, Duration::from_millis(10), 99);
        assert_eq!(a, b);
    }

    #[test]
    fn run_phases_produces_one_result_per_phase() {
        let locks = make_locks(&LockSetup::Direct(LockKind::Glk), 1);
        let phases = vec![
            Phase {
                threads: 1,
                cs_cycles: 100,
                duration: Duration::from_millis(50),
            },
            Phase {
                threads: 3,
                cs_cycles: 400,
                duration: Duration::from_millis(50),
            },
        ];
        let results = run_phases(&locks, &phases, 0, None);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.total_ops > 0);
            assert!(r.mops > 0.0);
        }
    }
}
