//! Plain-text tables and series for the harness binaries.
//!
//! Every figure-reproducing binary in `gls-bench` prints its data in the same
//! shape the paper plots it: a header row followed by one row per x-axis
//! value, with one column per lock algorithm / configuration. The format is
//! both human-readable and trivially machine-parseable (tab-separated).

use std::fmt::Write as _;

/// A rectangular result table: one labelled row per x value, one labelled
/// column per series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesTable {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl SeriesTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends one row of values.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the number of columns.
    pub fn push_row(&mut self, x: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match the number of columns"
        );
        self.rows.push((x.into(), values));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column labels.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Raw access to the rows (used by tests and summarizers).
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// Renders the table as tab-separated text with a `#`-prefixed title.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = write!(out, "{}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, "\t{c}");
        }
        let _ = writeln!(out);
        for (x, values) in &self.rows {
            let _ = write!(out, "{x}");
            for v in values {
                let _ = write!(out, "\t{v:.4}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// For each row, the value of `column` divided by the value of
    /// `baseline_column` — the "normalized to MUTEX" presentation of
    /// Figures 13–15.
    pub fn normalized_to(&self, column: &str, baseline_column: &str) -> Vec<f64> {
        let ci = self.column_index(column);
        let bi = self.column_index(baseline_column);
        self.rows
            .iter()
            .map(|(_, values)| {
                if values[bi] == 0.0 {
                    0.0
                } else {
                    values[ci] / values[bi]
                }
            })
            .collect()
    }

    fn column_index(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("unknown column {name:?}"))
    }
}

/// Geometric-mean helper used for "Avg" columns in the system figures.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().filter(|v| **v > 0.0).map(|v| v.ln()).sum();
    let count = values.iter().filter(|v| **v > 0.0).count();
    if count == 0 {
        0.0
    } else {
        (log_sum / count as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> SeriesTable {
        let mut t = SeriesTable::new(
            "Figure X",
            "threads",
            vec!["TICKET".into(), "MCS".into(), "MUTEX".into()],
        );
        t.push_row("1", vec![5.0, 3.0, 2.0]);
        t.push_row("10", vec![1.0, 2.0, 0.5]);
        t
    }

    #[test]
    fn render_contains_title_headers_and_rows() {
        let t = sample_table();
        let s = t.render();
        assert!(s.starts_with("# Figure X"));
        assert!(s.contains("threads\tTICKET\tMCS\tMUTEX"));
        assert!(s.contains("10\t1.0000\t2.0000\t0.5000"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_rejected() {
        sample_table().push_row("2", vec![1.0]);
    }

    #[test]
    fn normalization_divides_by_baseline() {
        let t = sample_table();
        let normalized = t.normalized_to("MCS", "MUTEX");
        assert_eq!(normalized, vec![1.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn unknown_column_panics() {
        sample_table().normalized_to("CLH", "MUTEX");
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-9);
    }
}
