//! Microbenchmark harness for the GLS/GLK reproduction.
//!
//! The paper evaluates its locks with a family of microbenchmarks (§3.2,
//! §4.1): threads run in a loop, each iteration picking a lock object at
//! random (uniformly or with a zipfian skew), holding it for a critical
//! section of a configurable number of CPU cycles, and then waiting briefly
//! outside the critical section "to avoid long runs". Throughput is the
//! number of completed critical sections per second, and each data point is
//! the median of several repetitions. Multiprogramming is created by
//! spawning additional threads that only spin.
//!
//! This crate packages that methodology so every figure of the paper can be
//! regenerated from the same building blocks:
//!
//! * [`bench_lock`] — a uniform facade over every lock algorithm (and over
//!   GLS-mediated locking) so the same driver measures them all;
//! * [`microbench`] — the threads-loop-over-locks driver;
//! * [`zipf`] — the zipfian lock/key selector (α = 0.9 in Figure 9);
//! * [`phases`] — the time-varying workload of Figure 10;
//! * [`multiprog`] — background spinner threads for oversubscription;
//! * [`crosspoint`] — the ticket-vs-MCS crossover search of Figure 5;
//! * [`latency`] — single-thread lock/unlock latency probes for Figure 11;
//! * [`report`] — plain-text tables/series printed by the harness binaries;
//! * [`rw_bench`] — the read-ratio sweep over reader-writer locks
//!   (raw TTAS-rw vs GLS-rw vs `std::sync::RwLock`);
//! * [`pc_bench`] — a producer/consumer pipeline over a GLS mutex and
//!   [`GlsCondvar`](gls::GlsCondvar)s, exercising the condvar interface.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench_lock;
pub mod crosspoint;
pub mod latency;
pub mod microbench;
pub mod multiprog;
pub mod pc_bench;
pub mod phases;
pub mod report;
pub mod rw_bench;
pub mod zipf;

pub use bench_lock::{make_locks, BenchLock, LockSetup};
pub use microbench::{LockSelection, MicrobenchConfig, MicrobenchResult};
pub use pc_bench::{PcConfig, PcResult};
pub use phases::{Phase, PhaseResult};
pub use rw_bench::{RwBenchLock, RwLockSetup, RwSweepConfig, RwSweepResult};
pub use zipf::Zipfian;
