//! Producer/consumer workload driving the GLS condition variables.
//!
//! A bounded queue guarded by one GLS mutex and two [`GlsCondvar`]s
//! (`not_empty` for consumers, `not_full` for producers) — the canonical
//! condvar workload, and the shape of the memcached maintenance path
//! (workers signal, a background thread waits). Every wait goes through
//! [`GlsService::wait`] / [`GlsService::wait_timeout`], so the full service
//! stack is exercised: address mapping, the per-thread lock cache, and in
//! debug mode the ownership checks and deadlock detection the sleeping
//! waiters must stay invisible to.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gls::{GlsCondvar, GlsService};

/// Configuration of one producer/consumer run.
#[derive(Debug, Clone)]
pub struct PcConfig {
    /// Producer threads.
    pub producers: usize,
    /// Consumer threads.
    pub consumers: usize,
    /// Queue capacity; producers block on `not_full` when it is reached.
    pub capacity: usize,
    /// Items each producer pushes before retiring.
    pub items_per_producer: u64,
    /// Timeout used by consumer waits, so a missed shutdown signal can
    /// never hang the run (timeouts count as spurious wakeups: the
    /// predicate loop re-checks and re-waits).
    pub wait_timeout: Duration,
}

impl Default for PcConfig {
    fn default() -> Self {
        Self {
            producers: 2,
            consumers: 2,
            capacity: 16,
            items_per_producer: 5_000,
            wait_timeout: Duration::from_millis(50),
        }
    }
}

/// Result of one producer/consumer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcResult {
    /// Items pushed by all producers.
    pub produced: u64,
    /// Items popped by all consumers.
    pub consumed: u64,
    /// Checksum of consumed items (sum), for loss/duplication detection.
    pub checksum: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl PcResult {
    /// Throughput in million items per second.
    pub fn mops(&self) -> f64 {
        self.consumed as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// The queue state, protected by the GLS mutex keyed at its address.
struct Shared {
    state: UnsafeCell<State>,
}

struct State {
    queue: VecDeque<u64>,
    producers_live: usize,
}

// SAFETY: `state` is only touched while holding the GLS mutex keyed by the
// `Shared` allocation's address.
unsafe impl Sync for Shared {}
unsafe impl Send for Shared {}

/// Runs the producer/consumer pipeline on `service` and returns the counts.
///
/// # Panics
///
/// Panics if the configuration has zero producers, consumers or capacity,
/// or if the service reports a locking error (which a correct run never
/// produces, in any service mode).
pub fn run(service: &Arc<GlsService>, config: &PcConfig) -> PcResult {
    assert!(config.producers > 0, "need at least one producer");
    assert!(config.consumers > 0, "need at least one consumer");
    assert!(config.capacity > 0, "need a non-zero queue capacity");

    let shared = Arc::new(Shared {
        state: UnsafeCell::new(State {
            queue: VecDeque::with_capacity(config.capacity),
            producers_live: config.producers,
        }),
    });
    let not_empty = Arc::new(GlsCondvar::new());
    let not_full = Arc::new(GlsCondvar::new());
    let start = Instant::now();

    let producers: Vec<_> = (0..config.producers)
        .map(|p| {
            let service = Arc::clone(service);
            let shared = Arc::clone(&shared);
            let not_empty = Arc::clone(&not_empty);
            let not_full = Arc::clone(&not_full);
            let items = config.items_per_producer;
            let capacity = config.capacity;
            std::thread::spawn(move || {
                gls_runtime::topology::pin_worker(p);
                let addr = GlsService::address_of(shared.as_ref());
                for i in 0..items {
                    let value = (p as u64) << 32 | i;
                    service.lock_addr(addr).expect("producer lock");
                    // SAFETY: the GLS mutex for `addr` is held.
                    while unsafe { (*shared.state.get()).queue.len() } >= capacity {
                        service.wait_addr(&not_full, addr).expect("not_full wait");
                    }
                    unsafe { (*shared.state.get()).queue.push_back(value) };
                    service.unlock_addr(addr).expect("producer unlock");
                    not_empty.notify_one();
                }
                // Retire: the last producer out wakes every consumer so the
                // "no more items coming" predicate is re-checked everywhere.
                service.lock_addr(addr).expect("producer retire lock");
                let last = {
                    // SAFETY: the GLS mutex for `addr` is held.
                    let state = unsafe { &mut *shared.state.get() };
                    state.producers_live -= 1;
                    state.producers_live == 0
                };
                service.unlock_addr(addr).expect("producer retire unlock");
                if last {
                    not_empty.notify_all();
                }
                items
            })
        })
        .collect();

    let consumers: Vec<_> = (0..config.consumers)
        .map(|c| {
            let service = Arc::clone(service);
            let shared = Arc::clone(&shared);
            let not_empty = Arc::clone(&not_empty);
            let not_full = Arc::clone(&not_full);
            let timeout = config.wait_timeout;
            let producers = config.producers;
            std::thread::spawn(move || {
                // Consumers continue the producers' round-robin placement.
                gls_runtime::topology::pin_worker(producers + c);
                let addr = GlsService::address_of(shared.as_ref());
                let mut consumed = 0u64;
                let mut checksum = 0u64;
                loop {
                    service.lock_addr(addr).expect("consumer lock");
                    let item = loop {
                        // SAFETY: the GLS mutex for `addr` is held.
                        let state = unsafe { &mut *shared.state.get() };
                        if let Some(value) = state.queue.pop_front() {
                            break Some(value);
                        }
                        if state.producers_live == 0 {
                            break None;
                        }
                        // Timed wait: a lost shutdown race degrades to one
                        // timeout tick instead of a hang; the loop re-checks
                        // the predicate either way (spurious-wakeup safe).
                        service
                            .wait_timeout_addr(&not_empty, addr, timeout)
                            .expect("not_empty wait");
                    };
                    service.unlock_addr(addr).expect("consumer unlock");
                    match item {
                        Some(value) => {
                            consumed += 1;
                            checksum = checksum.wrapping_add(value);
                            not_full.notify_one();
                        }
                        None => return (consumed, checksum),
                    }
                }
            })
        })
        .collect();

    let produced: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
    let (consumed, checksum) = consumers
        .into_iter()
        .map(|h| h.join().unwrap())
        .fold((0u64, 0u64), |(c, s), (dc, ds)| {
            (c + dc, s.wrapping_add(ds))
        });
    PcResult {
        produced,
        consumed,
        checksum,
        elapsed: start.elapsed(),
    }
}

/// The checksum a complete, loss-free run must produce.
pub fn expected_checksum(config: &PcConfig) -> u64 {
    let mut sum = 0u64;
    for p in 0..config.producers as u64 {
        for i in 0..config.items_per_producer {
            sum = sum.wrapping_add(p << 32 | i);
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use gls::{GlsConfig, GlsMode};

    fn quick() -> PcConfig {
        PcConfig {
            producers: 2,
            consumers: 2,
            capacity: 8,
            items_per_producer: 2_000,
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_delivers_every_item_exactly_once() {
        let service = Arc::new(GlsService::new());
        let config = quick();
        let result = run(&service, &config);
        assert_eq!(result.produced, 4_000);
        assert_eq!(result.consumed, 4_000);
        assert_eq!(result.checksum, expected_checksum(&config));
        assert!(result.mops() > 0.0);
    }

    #[test]
    fn single_producer_many_consumers_drains() {
        let service = Arc::new(GlsService::new());
        let config = PcConfig {
            producers: 1,
            consumers: 4,
            capacity: 2,
            items_per_producer: 3_000,
            ..Default::default()
        };
        let result = run(&service, &config);
        assert_eq!(result.consumed, 3_000);
        assert_eq!(result.checksum, expected_checksum(&config));
    }

    #[test]
    fn debug_mode_run_reports_no_issues() {
        // The acceptance-critical property: a multi-producer/multi-consumer
        // condvar pipeline under the debug mode completes with an empty
        // issue log — sleeping waiters are invisible to the deadlock
        // detector, so no phantom cycles appear.
        let service = Arc::new(GlsService::with_config(
            GlsConfig::default()
                .with_mode(GlsMode::Debug)
                .with_deadlock_check_after(Duration::from_millis(50)),
        ));
        let config = quick();
        let result = run(&service, &config);
        assert_eq!(result.consumed, 4_000);
        assert!(
            service.issues().is_empty(),
            "condvar waits must not trip the debug mode: {:?}",
            service.issues()
        );
    }

    #[test]
    fn profile_mode_sees_the_queue_mutex() {
        let service = Arc::new(GlsService::with_config(GlsConfig::profile()));
        let result = run(&service, &quick());
        assert_eq!(result.consumed, 4_000);
        let report = service.profile_report();
        assert_eq!(report.len(), 1, "one mutex entry behind the queue");
        assert!(report.locks[0].acquisitions > 0);
    }
}
