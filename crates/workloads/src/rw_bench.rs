//! Read-ratio sweep over a shared reader-writer lock.
//!
//! Kyoto Cabinet and SQLite guard their main structures with reader-writer
//! locks (§5.2), so the interesting axis is the fraction of shared
//! acquisitions: at 100% reads an rwlock should scale with the reader count,
//! at 0% it degenerates to a mutex, and the region in between exposes both
//! reader-side overhead and writer starvation. This module sweeps that axis
//! over one shared lock for three implementations: the raw TTAS rwlock, the
//! same lock reached through the GLS service (address mapping + lock cache +
//! adaptivity), and [`std::sync::RwLock`] as the system baseline.

// Workload think-time is modeled as real wall-clock sleeps by design
// (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gls::{GlsConfig, GlsService};
use gls_locks::{RawLock, RawRwLock, RwTtasRaw};
use gls_runtime::spin_cycles;

/// A reader-writer lock as seen by the sweep driver: closure-scoped critical
/// sections, so guard-based and service-based locks share one interface.
pub trait RwBenchLock: Send + Sync {
    /// Runs `cs` while holding shared (read) access.
    fn read_section(&self, cs: &dyn Fn());
    /// Runs `cs` while holding exclusive (write) access.
    fn write_section(&self, cs: &dyn Fn());
    /// Display label for reports.
    fn label(&self) -> String;
}

impl RwBenchLock for RwTtasRaw {
    fn read_section(&self, cs: &dyn Fn()) {
        self.read_lock();
        cs();
        self.read_unlock();
    }

    fn write_section(&self, cs: &dyn Fn()) {
        self.lock();
        cs();
        self.unlock();
    }

    fn label(&self) -> String {
        "RW-TTAS".to_string()
    }
}

// The figure's whole point is measuring std's rwlock as the system
// baseline (see clippy.toml) — this is the one place it must be raw.
#[allow(clippy::disallowed_types)]
impl RwBenchLock for std::sync::RwLock<()> {
    fn read_section(&self, cs: &dyn Fn()) {
        let _g = self.read().expect("rwlock poisoned");
        cs();
    }

    fn write_section(&self, cs: &dyn Fn()) {
        let _g = self.write().expect("rwlock poisoned");
        cs();
    }

    fn label(&self) -> String {
        "STD-RW".to_string()
    }
}

/// A reader-writer lock reached through the GLS service rw interface: every
/// section pays the address → lock mapping and gets profiling/adaptivity.
pub struct GlsRwBenchLock {
    service: Arc<GlsService>,
    addr: usize,
}

impl std::fmt::Debug for GlsRwBenchLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlsRwBenchLock")
            .field("addr", &self.addr)
            .finish()
    }
}

impl GlsRwBenchLock {
    /// Creates a service-backed rw lock at a fixed synthetic address.
    pub fn new(config: GlsConfig) -> Self {
        Self {
            service: Arc::new(GlsService::with_config(config)),
            addr: 0x005A_0000,
        }
    }

    /// The backing service (e.g. to pull a profiler report after a run).
    pub fn service(&self) -> &Arc<GlsService> {
        &self.service
    }
}

impl RwBenchLock for GlsRwBenchLock {
    fn read_section(&self, cs: &dyn Fn()) {
        self.service
            .read_lock_addr(self.addr)
            .expect("GLS read lock cannot fail in normal mode");
        cs();
        self.service
            .read_unlock_addr(self.addr)
            .expect("GLS read unlock of a held lock cannot fail");
    }

    fn write_section(&self, cs: &dyn Fn()) {
        self.service
            .write_lock_addr(self.addr)
            .expect("GLS write lock cannot fail in normal mode");
        cs();
        self.service
            .write_unlock_addr(self.addr)
            .expect("GLS write unlock of a held lock cannot fail");
    }

    fn label(&self) -> String {
        "GLS(RW)".to_string()
    }
}

/// The three lock flavors the read-ratio figure compares.
#[derive(Debug, Clone)]
pub enum RwLockSetup {
    /// The raw TTAS rwlock, used directly.
    Ttas,
    /// The TTAS rwlock reached through a GLS service.
    Gls(GlsConfig),
    /// `std::sync::RwLock` as the system baseline.
    Std,
}

impl RwLockSetup {
    /// Builds the lock object for this setup.
    // `Std` deliberately constructs the raw std rwlock being benchmarked
    // (see clippy.toml).
    #[allow(clippy::disallowed_types)]
    pub fn build(&self) -> Arc<dyn RwBenchLock> {
        match self {
            RwLockSetup::Ttas => Arc::new(RwTtasRaw::new()),
            RwLockSetup::Gls(config) => Arc::new(GlsRwBenchLock::new(config.clone())),
            RwLockSetup::Std => Arc::new(std::sync::RwLock::new(())),
        }
    }
}

/// Configuration of one read-ratio sweep point.
#[derive(Debug, Clone)]
pub struct RwSweepConfig {
    /// Worker threads.
    pub threads: usize,
    /// Percentage of operations that acquire shared access (0–100).
    pub read_percent: u32,
    /// Critical-section length in cycles.
    pub cs_cycles: u64,
    /// Delay outside the critical section, in cycles.
    pub delay_cycles: u64,
    /// Wall-clock duration of the measurement.
    pub duration: Duration,
    /// RNG seed (each thread derives its own stream).
    pub seed: u64,
}

impl Default for RwSweepConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            read_percent: 90,
            cs_cycles: 200,
            delay_cycles: 100,
            duration: Duration::from_millis(200),
            seed: 0x5EED12,
        }
    }
}

/// Result of one read-ratio sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct RwSweepResult {
    /// Completed shared sections.
    pub reads: u64,
    /// Completed exclusive sections.
    pub writes: u64,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
}

impl RwSweepResult {
    /// Total completed sections.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops() as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Runs one read-ratio point: every thread loops, flipping a biased coin per
/// iteration between a shared and an exclusive critical section.
///
/// # Panics
///
/// Panics if `config.threads` is zero or `read_percent` exceeds 100.
pub fn run(lock: &Arc<dyn RwBenchLock>, config: &RwSweepConfig) -> RwSweepResult {
    assert!(config.threads > 0, "rw sweep needs at least one thread");
    assert!(config.read_percent <= 100, "read_percent is a percentage");

    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let handles: Vec<_> = (0..config.threads)
        .map(|t| {
            let lock = Arc::clone(lock);
            let stop = Arc::clone(&stop);
            let read_percent = config.read_percent;
            let cs_cycles = config.cs_cycles;
            let delay_cycles = config.delay_cycles;
            let seed = config.seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            std::thread::spawn(move || {
                // Measure from a known placement, as in the mutex drivers.
                gls_runtime::topology::pin_worker(t);
                let mut rng = StdRng::seed_from_u64(seed);
                let cs = || spin_cycles(cs_cycles);
                let (mut reads, mut writes) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    if rng.gen_range(0..100u32) < read_percent {
                        lock.read_section(&cs);
                        reads += 1;
                    } else {
                        lock.write_section(&cs);
                        writes += 1;
                    }
                    spin_cycles(delay_cycles);
                }
                (reads, writes)
            })
        })
        .collect();

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    let (mut reads, mut writes) = (0u64, 0u64);
    for h in handles {
        let (r, w) = h.join().unwrap();
        reads += r;
        writes += w;
    }
    RwSweepResult {
        reads,
        writes,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(setup: RwLockSetup, read_percent: u32) -> RwSweepResult {
        let lock = setup.build();
        run(
            &lock,
            &RwSweepConfig {
                threads: 4,
                read_percent,
                cs_cycles: 100,
                delay_cycles: 50,
                duration: Duration::from_millis(80),
                ..Default::default()
            },
        )
    }

    #[test]
    fn every_setup_completes_a_mixed_sweep_point() {
        for setup in [
            RwLockSetup::Ttas,
            RwLockSetup::Gls(GlsConfig::default()),
            RwLockSetup::Std,
        ] {
            let result = quick(setup.clone(), 90);
            assert!(result.reads > 0, "{:?}: no reads completed", setup);
            assert!(result.writes > 0, "{:?}: writers starved", setup);
            assert!(result.mops() > 0.0);
        }
    }

    #[test]
    fn pure_ratios_produce_pure_mixes() {
        let all_reads = quick(RwLockSetup::Ttas, 100);
        assert_eq!(all_reads.writes, 0);
        assert!(all_reads.reads > 0);
        let all_writes = quick(RwLockSetup::Ttas, 0);
        assert_eq!(all_writes.reads, 0);
        assert!(all_writes.writes > 0);
    }

    #[test]
    fn gls_rw_sweep_profiles_the_lock() {
        let lock = Arc::new(GlsRwBenchLock::new(GlsConfig::profile()));
        let dyn_lock: Arc<dyn RwBenchLock> = Arc::clone(&lock) as Arc<dyn RwBenchLock>;
        let result = run(
            &dyn_lock,
            &RwSweepConfig {
                threads: 2,
                duration: Duration::from_millis(60),
                ..Default::default()
            },
        );
        assert!(result.total_ops() > 0);
        let report = lock.service().profile_report();
        assert_eq!(report.len(), 1, "one rw lock entry must be profiled");
        assert_eq!(report.locks[0].algorithm, gls::LockKind::Rw);
        assert!(report.locks[0].acquisitions > 0);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn read_percent_above_100_rejected() {
        let lock = RwLockSetup::Ttas.build();
        run(
            &lock,
            &RwSweepConfig {
                read_percent: 101,
                ..Default::default()
            },
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            RwLockSetup::Ttas,
            RwLockSetup::Gls(GlsConfig::default()),
            RwLockSetup::Std,
        ]
        .iter()
        .map(|s| s.build().label())
        .collect();
        assert_eq!(labels, vec!["RW-TTAS", "GLS(RW)", "STD-RW"]);
    }
}
