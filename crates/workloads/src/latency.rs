//! Single-thread lock/unlock latency probes — Figure 11.
//!
//! Figure 11 measures the latency *overhead* of going through GLS compared to
//! using a lock object directly, on a single thread, while the number of
//! distinct locks grows (1, 512, 4096): with one lock the per-thread lock
//! cache absorbs everything; with many locks the GLS hash table no longer
//! fits in L1 and the overhead grows.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gls_runtime::cycles;

use crate::bench_lock::BenchLock;

/// Average lock and unlock latency, in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyResult {
    /// Average cycles spent inside the acquire call.
    pub lock_cycles: f64,
    /// Average cycles spent inside the release call.
    pub unlock_cycles: f64,
    /// Number of measured iterations.
    pub iterations: u64,
}

/// Measures single-thread lock/unlock latency over a set of lock objects.
/// Each iteration picks a lock at random (as in the paper), acquires it and
/// releases it immediately (empty critical section).
pub fn measure(locks: &[Arc<dyn BenchLock>], iterations: u64, seed: u64) -> LatencyResult {
    assert!(!locks.is_empty(), "latency probe needs at least one lock");
    assert!(iterations > 0, "latency probe needs at least one iteration");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lock_total = 0u64;
    let mut unlock_total = 0u64;
    // Warm up: touch every lock once so creation costs (e.g. GLS insertion)
    // are not attributed to the steady-state latency.
    for lock in locks {
        lock.acquire();
        lock.release();
    }
    for _ in 0..iterations {
        let index = if locks.len() == 1 {
            0
        } else {
            rng.gen_range(0..locks.len())
        };
        let lock = &locks[index];
        let t0 = cycles::now();
        lock.acquire();
        let t1 = cycles::now();
        lock.release();
        let t2 = cycles::now();
        lock_total += t1.wrapping_sub(t0);
        unlock_total += t2.wrapping_sub(t1);
    }
    LatencyResult {
        lock_cycles: lock_total as f64 / iterations as f64,
        unlock_cycles: unlock_total as f64 / iterations as f64,
        iterations,
    }
}

/// Latency overhead of `subject` relative to `baseline`, in cycles
/// (positive = subject is slower).
pub fn overhead(subject: LatencyResult, baseline: LatencyResult) -> (f64, f64) {
    (
        subject.lock_cycles - baseline.lock_cycles,
        subject.unlock_cycles - baseline.unlock_cycles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_lock::{make_locks, LockSetup};
    use gls::GlsConfig;
    use gls_locks::LockKind;

    #[test]
    fn direct_lock_latency_is_small() {
        let locks = make_locks(&LockSetup::Direct(LockKind::Ticket), 1);
        let r = measure(&locks, 20_000, 1);
        assert!(r.lock_cycles > 0.0);
        assert!(r.unlock_cycles > 0.0);
        // A single-threaded uncontended ticket acquire should be well under
        // 10k cycles even on a noisy machine.
        assert!(r.lock_cycles < 10_000.0, "lock latency {}", r.lock_cycles);
    }

    #[test]
    fn gls_adds_latency_over_direct_use() {
        let direct = measure(
            &make_locks(&LockSetup::Direct(LockKind::Ticket), 64),
            20_000,
            2,
        );
        let through_gls = measure(
            &make_locks(
                &LockSetup::Gls {
                    config: GlsConfig::default(),
                    kind: LockKind::Ticket,
                },
                64,
            ),
            20_000,
            2,
        );
        let (lock_overhead, _) = overhead(through_gls, direct);
        // The paper reports ~30 cycles with 512 locks; we only check the sign
        // here because absolute numbers are machine-dependent.
        assert!(
            lock_overhead > 0.0,
            "GLS should cost more than direct locking (overhead {lock_overhead})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one lock")]
    fn empty_lock_set_rejected() {
        measure(&[], 10, 0);
    }
}
