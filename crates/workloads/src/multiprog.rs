//! Multiprogramming injection: background threads that only spin.
//!
//! The paper creates multiprogrammed configurations by initializing extra
//! threads "that just spin locally" (Figure 7 uses 48 of them, Figure 10 uses
//! 30), representing other applications sharing the machine. These spinners
//! optionally register with a [`SystemLoadMonitor`] so GLK's multiprogramming
//! detection can see them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use gls_runtime::SystemLoadMonitor;

/// A set of background spinner threads, stopped and joined on drop.
#[derive(Debug)]
pub struct BackgroundSpinners {
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl BackgroundSpinners {
    /// Starts `count` spinner threads. Each registers as runnable with
    /// `monitor`, if one is provided.
    pub fn start(count: usize, monitor: Option<Arc<SystemLoadMonitor>>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let handles = (0..count)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let monitor = monitor.clone();
                std::thread::spawn(move || {
                    let _runnable = monitor.as_ref().map(|m| m.runnable_guard());
                    while !stop.load(Ordering::Relaxed) {
                        // Spin "locally": burn a hardware context without
                        // touching any shared state.
                        for _ in 0..1_000 {
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        Self { stop, handles }
    }

    /// Number of spinner threads running.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether no spinners were started.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }
}

impl Drop for BackgroundSpinners {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gls_runtime::sysload::SystemLoadConfig;

    #[test]
    fn zero_spinners_is_a_noop() {
        let s = BackgroundSpinners::start(0, None);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn spinners_register_with_monitor_and_unregister_on_drop() {
        let monitor = Arc::new(SystemLoadMonitor::manual(SystemLoadConfig::default()));
        let spinners = BackgroundSpinners::start(3, Some(Arc::clone(&monitor)));
        assert_eq!(spinners.len(), 3);
        // Wait for all spinners to have registered.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while monitor.registered_runnable() < 3 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(monitor.registered_runnable(), 3);
        drop(spinners);
        assert_eq!(monitor.registered_runnable(), 0);
    }

    #[test]
    fn enough_spinners_trigger_multiprogramming_detection() {
        let monitor = Arc::new(SystemLoadMonitor::manual(SystemLoadConfig::default()));
        let hw = gls_runtime::hardware_contexts();
        let spinners = BackgroundSpinners::start(hw + 2, Some(Arc::clone(&monitor)));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while monitor.registered_runnable() < hw + 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        monitor.poll_once();
        assert!(monitor.is_multiprogrammed());
        drop(spinners);
        monitor.poll_once();
        assert!(!monitor.is_multiprogrammed());
    }
}
