//! Test-and-test-and-set spinlock.
//!
//! Like [TAS](crate::TasLock) but waiters first spin reading the flag (which
//! stays in the shared state of their cache) and only attempt the atomic swap
//! once they observe the lock free, with a short exponential backoff between
//! failed attempts. This is the algorithm the paper uses to overload
//! `pthread` reader-writer locks as well (§5.2, footnote 7).

use gls_sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::cache_padded::CachePadded;
use crate::raw::{QueueInformed, RawLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// A test-and-test-and-set (TTAS) spinlock with exponential backoff.
///
/// # Example
///
/// ```
/// use gls_locks::{RawLock, TtasLock};
///
/// let lock = TtasLock::new();
/// lock.lock();
/// lock.unlock();
/// ```
#[derive(Debug, Default)]
pub struct TtasLock {
    state: CachePadded<TtasState>,
}

#[derive(Debug, Default)]
struct TtasState {
    locked: AtomicBool,
    queued: AtomicU64,
}

impl TtasLock {
    /// Creates an unlocked TTAS lock.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RawLock for TtasLock {
    const NAME: &'static str = "TTAS";

    #[inline]
    fn lock(&self) {
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        // One escalating waiter covers both the read-spin and the delay after
        // a lost swap race; it keeps escalating across attempts instead of
        // stacking two independent backoff schedules.
        let mut wait = SpinWait::new();
        loop {
            // Spin on a plain read until the lock looks free.
            while self.state.locked.load(Ordering::Relaxed) {
                wait.spin();
            }
            if !self.state.locked.swap(true, Ordering::Acquire) {
                return;
            }
            wait.spin();
        }
    }

    #[inline]
    fn unlock(&self) {
        self.state.locked.store(false, Ordering::Release);
        self.state.queued.fetch_sub(1, Ordering::Relaxed);
    }

    fn is_locked(&self) -> bool {
        self.state.locked.load(Ordering::Relaxed)
    }
}

impl RawTryLock for TtasLock {
    #[inline]
    fn try_lock(&self) -> bool {
        if self.state.locked.load(Ordering::Relaxed) {
            return false;
        }
        let acquired = !self.state.locked.swap(true, Ordering::Acquire);
        if acquired {
            self.state.queued.fetch_add(1, Ordering::Relaxed);
        }
        acquired
    }
}

impl QueueInformed for TtasLock {
    fn queue_length(&self) -> u64 {
        self.state.queued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_single_thread() {
        let lock = TtasLock::new();
        lock.lock();
        assert!(lock.is_locked());
        lock.unlock();
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_semantics() {
        let lock = TtasLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        crate::test_support::check_mutual_exclusion::<TtasLock>(8, 20_000);
    }

    #[test]
    fn queue_length_is_zero_when_free() {
        let lock = TtasLock::new();
        assert_eq!(lock.queue_length(), 0);
        lock.lock();
        assert_eq!(lock.queue_length(), 1);
        lock.unlock();
        assert_eq!(lock.queue_length(), 0);
    }
}
