//! Ticket spinlock.
//!
//! The paper picks the ticket lock as GLK's low-contention mode because it is
//! fair and more scalable than TAS/TTAS (§3). A ticket lock keeps two
//! counters: `ticket` (next ticket to hand out) and `owner` (ticket currently
//! being served). The difference between them is exactly the amount of
//! queuing behind the lock — the statistic GLK's adaptation feeds on — so the
//! lock provides it "by design", for free.

use gls_sync::atomic::{AtomicU32, Ordering};

use crate::cache_padded::CachePadded;
use crate::raw::{QueueInformed, RawLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// A fair ticket spinlock, padded to one cache line.
///
/// # Example
///
/// ```
/// use gls_locks::{QueueInformed, RawLock, TicketLock};
///
/// let lock = TicketLock::new();
/// lock.lock();
/// assert_eq!(lock.queue_length(), 1); // holder, no waiters
/// lock.unlock();
/// assert_eq!(lock.queue_length(), 0);
/// ```
#[derive(Debug, Default)]
pub struct TicketLock {
    state: CachePadded<TicketState>,
}

#[derive(Debug, Default)]
struct TicketState {
    /// Next ticket to be handed out.
    ticket: AtomicU32,
    /// Ticket currently allowed to enter the critical section.
    owner: AtomicU32,
}

impl TicketLock {
    /// Creates an unlocked ticket lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `(ticket, owner)`; used by tests and by GLK's statistics.
    pub fn counters(&self) -> (u32, u32) {
        (
            self.state.ticket.load(Ordering::Relaxed),
            self.state.owner.load(Ordering::Relaxed),
        )
    }
}

impl RawLock for TicketLock {
    const NAME: &'static str = "TICKET";

    #[inline]
    fn lock(&self) {
        let my_ticket = self.state.ticket.fetch_add(1, Ordering::Relaxed);
        // Spin until it is our turn. Acquire on the load that observes our
        // ticket so the critical section cannot float above it.
        let mut wait = SpinWait::new();
        while self.state.owner.load(Ordering::Acquire) != my_ticket {
            wait.spin();
        }
    }

    #[inline]
    fn unlock(&self) {
        // Only the holder increments `owner`, so a plain add is fine.
        let owner = self.state.owner.load(Ordering::Relaxed);
        self.state
            .owner
            .store(owner.wrapping_add(1), Ordering::Release);
    }

    fn is_locked(&self) -> bool {
        let (ticket, owner) = self.counters();
        ticket != owner
    }
}

impl RawTryLock for TicketLock {
    #[inline]
    fn try_lock(&self) -> bool {
        let owner = self.state.owner.load(Ordering::Relaxed);
        // Succeed only if no one holds or waits: ticket == owner, and we can
        // atomically grab that ticket.
        self.state
            .ticket
            .compare_exchange(
                owner,
                owner.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }
}

impl QueueInformed for TicketLock {
    /// `ticket - owner`: the holder plus all waiters (paper §3, "Measuring
    /// Contention").
    fn queue_length(&self) -> u64 {
        let (ticket, owner) = self.counters();
        u64::from(ticket.wrapping_sub(owner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_cycle() {
        let lock = TicketLock::new();
        assert!(!lock.is_locked());
        lock.lock();
        assert!(lock.is_locked());
        lock.unlock();
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_only_succeeds_when_free() {
        let lock = TicketLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn queue_length_reflects_waiters() {
        let lock = Arc::new(TicketLock::new());
        lock.lock();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let l = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                l.lock();
                l.unlock();
            }));
        }
        while lock.queue_length() < 4 {
            std::hint::spin_loop();
        }
        assert_eq!(lock.queue_length(), 4); // holder + 3 waiters
        lock.unlock();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn provides_mutual_exclusion() {
        crate::test_support::check_mutual_exclusion::<TicketLock>(8, 20_000);
    }

    #[test]
    fn fifo_ordering_of_grants() {
        // With a ticket lock, acquisition order must match ticket order.
        use std::sync::atomic::{AtomicU32, Ordering};
        let lock = Arc::new(TicketLock::new());
        let order = Arc::new(AtomicU32::new(0));
        lock.lock();
        let mut handles = Vec::new();
        let mut expected = Vec::new();
        for i in 0..4u32 {
            let l = Arc::clone(&lock);
            let o = Arc::clone(&order);
            // Serialize enqueueing so ticket order is deterministic.
            while lock.queue_length() < u64::from(i) + 1 {
                std::hint::spin_loop();
            }
            handles.push(std::thread::spawn(move || {
                l.lock();
                let pos = o.fetch_add(1, Ordering::Relaxed);
                l.unlock();
                (i, pos)
            }));
            expected.push(i);
            while lock.queue_length() < u64::from(i) + 2 {
                std::hint::spin_loop();
            }
        }
        lock.unlock();
        let mut results: Vec<(u32, u32)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by_key(|&(_, pos)| pos);
        let served: Vec<u32> = results.iter().map(|&(i, _)| i).collect();
        assert_eq!(served, expected, "ticket lock should serve FIFO");
    }

    #[test]
    fn counters_wrap_safely() {
        let lock = TicketLock::new();
        lock.state.ticket.store(u32::MAX, Ordering::Relaxed);
        lock.state.owner.store(u32::MAX, Ordering::Relaxed);
        lock.lock();
        assert_eq!(lock.queue_length(), 1);
        lock.unlock();
        assert_eq!(lock.queue_length(), 0);
        assert!(!lock.is_locked());
    }
}
