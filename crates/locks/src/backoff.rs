//! Bounded exponential backoff for busy-waiting loops.
//!
//! Simple spinlocks (TAS/TTAS) hammer a single cache line; a short
//! exponential backoff between attempts reduces coherence traffic without
//! changing the algorithm. The blocking mutex also uses it for its bounded
//! spin phase before parking.

/// Exponential backoff helper for spin loops.
///
/// Each call to [`Backoff::spin`] pauses for an exponentially growing number
/// of [`std::hint::spin_loop`] iterations, capped at `2^LIMIT`.
///
/// # Example
///
/// ```
/// use gls_locks::Backoff;
///
/// let mut backoff = Backoff::new();
/// for _ in 0..=Backoff::LIMIT {
///     backoff.spin();
/// }
/// assert!(backoff.is_saturated());
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Exponent cap: the longest single backoff is `2^LIMIT` pause
    /// instructions.
    pub const LIMIT: u32 = 10;

    /// Creates a fresh backoff at the shortest delay.
    pub const fn new() -> Self {
        Self { step: 0 }
    }

    /// Spins for the current delay and doubles the next one (up to the cap).
    #[inline]
    pub fn spin(&mut self) {
        let iterations = 1u32 << self.step.min(Self::LIMIT);
        for _ in 0..iterations {
            std::hint::spin_loop();
        }
        if self.step <= Self::LIMIT {
            self.step += 1;
        }
    }

    /// Number of backoff rounds performed so far.
    pub fn rounds(&self) -> u32 {
        self.step
    }

    /// Whether the backoff has reached its maximum delay.
    pub fn is_saturated(&self) -> bool {
        self.step > Self::LIMIT
    }

    /// Resets to the shortest delay.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unsaturated() {
        let b = Backoff::new();
        assert_eq!(b.rounds(), 0);
        assert!(!b.is_saturated());
    }

    #[test]
    fn saturates_after_limit_rounds() {
        let mut b = Backoff::new();
        for _ in 0..=Backoff::LIMIT {
            b.spin();
        }
        assert!(b.is_saturated());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut b = Backoff::new();
        b.spin();
        b.spin();
        b.reset();
        assert_eq!(b.rounds(), 0);
        assert!(!b.is_saturated());
    }
}
