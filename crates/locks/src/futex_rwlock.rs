//! Word-sized blocking reader-writer lock parked on the shared parking lot.
//!
//! The rw counterpart of [`FutexLock`](crate::FutexLock): the whole lock is
//! **one `AtomicU32`** (writer bit, writer-intent bit, parked bit, reader
//! count), with all wait queues held centrally in the [`ParkingLot`]. Like
//! the crate's other rw locks it is writer-preferring via the intent bit —
//! a stream of readers cannot starve a writer — and like
//! [`FutexLock`](crate::FutexLock) it is deliberately not cache-padded:
//! density is the point.
//!
//! Readers and writers park on the same address with distinct park tokens;
//! release uses [`ParkingLot::unpark_select_with`] to wake **the first
//! parked writer if one exists, else every parked reader** — decided under
//! the bucket lock, atomically with the parked-bit update, so the decision
//! cannot race with newly parking waiters. Waking readers past a parked
//! writer would be futile anyway (the writer's intent bit blocks them) and
//! waking them *instead of* the writer would strand it forever.
//!
//! Like [`FutexLock`](crate::FutexLock), woken waiters normally re-contend
//! with arriving threads (barging), but the bypass is **bounded**: the word
//! counts consecutive contended wakeups and once the streak reaches
//! [`HANDOFF_WAKEUPS`] the release *hands over* instead — a parked writer
//! receives the word with `WRITER` pre-set (bargers cannot steal the slot),
//! or, when no writer is parked, the whole parked reader cohort is woken
//! with their read slots pre-charged into the reader count. Without this, a
//! parked writer can be bypassed indefinitely by barging writers (readers
//! are already fenced off by the intent bit), and a parked reader cohort
//! can starve under writer churn: each wake loses the race to the next
//! writer's intent bit and re-parks, forever.

use gls_sync::atomic::{AtomicU32, Ordering};

use crate::futex_mutex::HANDOFF_WAKEUPS;
use crate::park::{ParkingLot, DEFAULT_UNPARK_TOKEN};
use crate::raw::{QueueInformed, RawLock, RawRwLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// Writer-held flag (high bit).
const WRITER: u32 = 1 << 31;
/// Writer-intent flag: a writer is waiting; new readers back off.
const INTENT: u32 = 1 << 30;
/// Set while at least one waiter is (or is about to be) parked.
const PARKED: u32 = 1 << 29;
/// Bits counting consecutive contended wakeups (the handoff streak).
/// Written only under the parking-lot bucket lock of this word's address
/// (the release-wake path), and nonzero only while `PARKED` is set;
/// acquisition CASes preserve it.
const STREAK_SHIFT: u32 = 26;
const STREAK_MASK: u32 = 0b111 << STREAK_SHIFT;
/// The remaining bits count active readers (~67M, far beyond plausible).
const READERS: u32 = (1 << STREAK_SHIFT) - 1;

/// Park token tagging a parked reader.
const TOKEN_READER: usize = 0;
/// Park token tagging a parked writer.
const TOKEN_WRITER: usize = 1;

/// Unpark token meaning "the lock is yours": for a writer, `WRITER` was
/// pre-set on its behalf; for a reader, its read slot was pre-charged into
/// the reader count. No re-contention on wake.
const HANDOFF_UNPARK_TOKEN: usize = 1;

/// Number of bounded-spin rounds before a waiter parks. A single model
/// round covers the spin-vs-park split without exploding the state space.
#[cfg(not(gls_model))]
const SPIN_ATTEMPTS: u32 = 32;
#[cfg(gls_model)]
const SPIN_ATTEMPTS: u32 = 1;

/// A word-sized blocking (spin-then-park) reader-writer lock.
///
/// # Example
///
/// ```
/// use gls_locks::{FutexRwLock, RawRwLock};
///
/// let lock = FutexRwLock::new();
/// lock.read_lock();
/// assert!(!lock.try_write_lock());
/// lock.read_unlock();
/// lock.write_lock();
/// lock.write_unlock();
/// assert_eq!(std::mem::size_of::<FutexRwLock>(), 4);
/// ```
#[derive(Debug, Default)]
pub struct FutexRwLock {
    state: AtomicU32,
    /// Model-only observables (raw std atomics so they add no scheduling
    /// points; both only written under the bucket lock): the current and
    /// the maximum run of *consecutive* ordinary (non-handoff) writer
    /// wakeups, where any handoff or queue drain ends the run. The streak
    /// protocol bounds the maximum at `HANDOFF_WAKEUPS - 1` on every
    /// schedule; the pre-streak policy does not. Production stays one word.
    #[cfg(gls_model)]
    consec_writer_bypasses: std::sync::atomic::AtomicU32,
    #[cfg(gls_model)]
    max_writer_bypasses: std::sync::atomic::AtomicU32,
}

impl FutexRwLock {
    /// Creates an unlocked futex rwlock.
    pub const fn new() -> Self {
        Self {
            state: AtomicU32::new(0),
            #[cfg(gls_model)]
            consec_writer_bypasses: std::sync::atomic::AtomicU32::new(0),
            #[cfg(gls_model)]
            max_writer_bypasses: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// Whether a writer currently holds the lock.
    pub fn is_write_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) & WRITER != 0
    }

    /// Number of readers currently holding the lock.
    pub fn reader_count(&self) -> u32 {
        self.state.load(Ordering::Relaxed) & READERS
    }

    /// Whether a writer has announced intent (is waiting to acquire).
    pub fn writer_pending(&self) -> bool {
        self.state.load(Ordering::Relaxed) & INTENT != 0
    }

    /// The parking-lot key: the address of the lock word.
    #[inline]
    fn addr(&self) -> usize {
        &self.state as *const AtomicU32 as usize
    }

    #[cold]
    fn read_lock_slow(&self) {
        let lot = ParkingLot::global();
        let mut wait = SpinWait::new();
        let mut spins = 0u32;
        loop {
            let state = self.state.load(Ordering::Relaxed);
            if state & (WRITER | INTENT) == 0 {
                assert!(state & READERS != READERS, "reader count overflow");
                if self
                    .state
                    .compare_exchange_weak(state, state + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            if state & PARKED == 0 {
                if spins < SPIN_ATTEMPTS {
                    spins += 1;
                    wait.spin_bounded();
                    continue;
                }
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | PARKED,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_err()
                {
                    continue;
                }
            }
            let result = lot.park(
                self.addr(),
                TOKEN_READER,
                || {
                    let s = self.state.load(Ordering::Relaxed);
                    s & (WRITER | INTENT) != 0 && s & PARKED != 0
                },
                || {},
                None,
            );
            // A handoff wake means the releaser pre-charged our read slot
            // into the reader count: the read lock is ours, no
            // re-contention (and no chance to lose to a writer's intent).
            if result == crate::park::ParkResult::Unparked(HANDOFF_UNPARK_TOKEN) {
                return;
            }
            wait.reset();
            spins = 0;
        }
    }

    #[cold]
    fn write_lock_slow(&self) {
        let lot = ParkingLot::global();
        let mut wait = SpinWait::new();
        let mut spins = 0u32;
        loop {
            let state = self.state.load(Ordering::Relaxed);
            if state & (WRITER | READERS) == 0 {
                // Free: claim it, consuming the intent bit (other waiting
                // writers re-raise it) and preserving the parked bit and
                // the handoff streak (a barger must not erase the parked
                // waiters' progress towards a handoff).
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        (state & (PARKED | STREAK_MASK)) | WRITER,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            // Announce intent so the reader stream pauses for us.
            if state & INTENT == 0 {
                let _ = self.state.compare_exchange_weak(
                    state,
                    state | INTENT,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                continue;
            }
            if state & PARKED == 0 {
                if spins < SPIN_ATTEMPTS {
                    spins += 1;
                    wait.spin_bounded();
                    continue;
                }
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | PARKED,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_err()
                {
                    continue;
                }
            }
            let result = lot.park(
                self.addr(),
                TOKEN_WRITER,
                || {
                    let s = self.state.load(Ordering::Relaxed);
                    s & (WRITER | READERS) != 0 && s & PARKED != 0
                },
                || {},
                None,
            );
            // A handoff wake means the releaser set WRITER on our behalf:
            // the write lock is ours, bargers could not steal the slot.
            if result == crate::park::ParkResult::Unparked(HANDOFF_UNPARK_TOKEN) {
                return;
            }
            wait.reset();
            spins = 0;
        }
    }

    /// Wakes the first parked writer, or — if no writer is parked — every
    /// parked reader; clears the parked bit when the queue drains. All of it
    /// is decided under one bucket lock, atomic with park validation.
    ///
    /// The handoff streak lives here too: every contended wakeup advances
    /// the streak bits, and once the streak reaches [`HANDOFF_WAKEUPS`] the
    /// wake becomes a *handoff* — the word is updated on the wakee's behalf
    /// (WRITER pre-set for a writer; read slots pre-charged for the reader
    /// cohort) before the wake, under the bucket lock, so bargers cannot
    /// steal the slot. The commit must CAS-verify the word is actually
    /// grantable *now*: this path is reached from `read_unlock` after the
    /// count already dropped, so a barger may have acquired in between — in
    /// that case nobody is woken (the parked bit stays set; the barger's own
    /// release re-enters here).
    #[cold]
    fn unpark_waiters(&self) {
        let lot = ParkingLot::global();
        lot.unpark_select_with(
            self.addr(),
            |tokens| {
                // Everything below runs under the bucket lock: the streak
                // bits are only written here (acquisition CASes preserve
                // them), so read-modify-write on them is race-free.
                let word = self.state.load(Ordering::Relaxed);
                let streak = (word & STREAK_MASK) >> STREAK_SHIFT;
                let handoff_due = streak + 1 >= HANDOFF_WAKEUPS;
                let writer = tokens.iter().position(|&t| t == TOKEN_WRITER);
                let advance_streak = || {
                    let next = (streak + 1).min(STREAK_MASK >> STREAK_SHIFT);
                    let mut cur = self.state.load(Ordering::Relaxed);
                    loop {
                        let new = (cur & !STREAK_MASK) | (next << STREAK_SHIFT);
                        match self.state.compare_exchange_weak(
                            cur,
                            new,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => return,
                            Err(actual) => cur = actual,
                        }
                    }
                };
                if let Some(index) = writer {
                    if !handoff_due {
                        advance_streak();
                        #[cfg(gls_model)]
                        self.note_writer_bypass();
                        return vec![(index, DEFAULT_UNPARK_TOKEN)];
                    }
                    // Writer handoff: set WRITER on the wakee's behalf,
                    // provided the word is still free of holders. Intent
                    // stays as-is (other writers may maintain it).
                    let mut cur = self.state.load(Ordering::Relaxed);
                    loop {
                        if cur & (WRITER | READERS) != 0 {
                            return Vec::new(); // barged; holder re-wakes
                        }
                        let new = (cur & (INTENT | PARKED)) | WRITER;
                        match self.state.compare_exchange_weak(
                            cur,
                            new,
                            Ordering::Acquire,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => {
                                #[cfg(gls_model)]
                                self.reset_writer_bypasses();
                                return vec![(index, HANDOFF_UNPARK_TOKEN)];
                            }
                            Err(actual) => cur = actual,
                        }
                    }
                }
                let readers: Vec<usize> = tokens
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| t == TOKEN_READER)
                    .map(|(i, _)| i)
                    .collect();
                if readers.is_empty() {
                    return Vec::new();
                }
                if !handoff_due {
                    advance_streak();
                    return readers
                        .into_iter()
                        .map(|i| (i, DEFAULT_UNPARK_TOKEN))
                        .collect();
                }
                // Reader-cohort handoff: pre-charge every woken reader's
                // slot into the count, provided no writer holds or wants
                // the lock (admitting readers past an intent bit would
                // starve the spinning writer that raised it).
                let n = readers.len() as u32;
                let mut cur = self.state.load(Ordering::Relaxed);
                loop {
                    if cur & (WRITER | INTENT) != 0 {
                        return Vec::new(); // the writer's release re-wakes
                    }
                    // n read slots pre-charged; streak resets to zero.
                    let new = (cur & !STREAK_MASK) + n;
                    match self.state.compare_exchange_weak(
                        cur,
                        new,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            #[cfg(gls_model)]
                            self.reset_writer_bypasses();
                            return readers
                                .into_iter()
                                .map(|i| (i, HANDOFF_UNPARK_TOKEN))
                                .collect();
                        }
                        Err(actual) => cur = actual,
                    }
                }
            },
            |result| {
                if !result.have_more {
                    // Queue drained: the parked bit goes, and the streak
                    // with it (streak bits are only meaningful while
                    // waiters exist; leaving them would dirty the word).
                    #[cfg(gls_model)]
                    self.reset_writer_bypasses();
                    self.state
                        .fetch_and(!(PARKED | STREAK_MASK), Ordering::Relaxed);
                }
            },
        );
    }
}

/// Model-build-only support for the protocol model tests: an observable
/// for the bounded-bypass property, and a faithful re-introduction of the
/// pre-streak release policy so the explorer can rediscover the writer
/// starvation it allowed.
#[cfg(gls_model)]
impl FutexRwLock {
    fn note_writer_bypass(&self) {
        use std::sync::atomic::Ordering::Relaxed;
        let run = self.consec_writer_bypasses.fetch_add(1, Relaxed) + 1;
        self.max_writer_bypasses.fetch_max(run, Relaxed);
    }

    fn reset_writer_bypasses(&self) {
        self.consec_writer_bypasses
            .store(0, std::sync::atomic::Ordering::Relaxed);
    }

    /// Longest run of consecutive ordinary (non-handoff) writer wakeups
    /// observed so far, where any handoff or queue drain ends a run. The
    /// streak protocol keeps this at `HANDOFF_WAKEUPS - 1` or below on
    /// every schedule: an ordinary writer wake needs the streak at zero,
    /// leaves it at one, and the streak only returns to zero through a
    /// handoff or a drain — both of which end the run.
    pub fn model_max_consecutive_writer_bypasses(&self) -> u32 {
        self.max_writer_bypasses
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The release policy this lock shipped with *before* the handoff
    /// streak existed: always wake the first parked writer (else the
    /// reader cohort) with an ordinary token and let it re-contend. The
    /// regression model test drives this to show the explorer finds the
    /// unbounded-bypass schedule the streak was added to kill.
    pub fn model_write_unlock_pre_handoff(&self) {
        if self
            .state
            .compare_exchange(WRITER, 0, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        let prev = self.state.fetch_and(!WRITER, Ordering::Release);
        if prev & PARKED == 0 {
            return;
        }
        ParkingLot::global().unpark_select_with(
            self.addr(),
            |tokens| {
                if let Some(index) = tokens.iter().position(|&t| t == TOKEN_WRITER) {
                    self.note_writer_bypass();
                    return vec![(index, DEFAULT_UNPARK_TOKEN)];
                }
                tokens
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| t == TOKEN_READER)
                    .map(|(i, _)| (i, DEFAULT_UNPARK_TOKEN))
                    .collect()
            },
            |result| {
                if !result.have_more {
                    self.reset_writer_bypasses();
                    self.state
                        .fetch_and(!(PARKED | STREAK_MASK), Ordering::Relaxed);
                }
            },
        );
    }
}

impl RawRwLock for FutexRwLock {
    #[inline]
    fn read_lock(&self) {
        let state = self.state.load(Ordering::Relaxed);
        if state & (WRITER | INTENT) != 0
            || self
                .state
                .compare_exchange_weak(state, state + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.read_lock_slow();
        }
    }

    #[inline]
    fn try_read_lock(&self) -> bool {
        let mut state = self.state.load(Ordering::Relaxed);
        loop {
            if state & (WRITER | INTENT) != 0 {
                return false;
            }
            match self.state.compare_exchange_weak(
                state,
                state + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => state = actual,
            }
        }
    }

    #[inline]
    fn read_unlock(&self) {
        let prev = self.state.fetch_sub(1, Ordering::Release);
        debug_assert!(prev & READERS > 0, "read_unlock without a reader");
        // The last reader leaving wakes any parked waiters (a writer first).
        if prev & READERS == 1 && prev & PARKED != 0 {
            self.unpark_waiters();
        }
    }
}

impl RawLock for FutexRwLock {
    const NAME: &'static str = "FUTEX-RW";

    /// Acquires exclusive (write) access.
    #[inline]
    fn lock(&self) {
        if self
            .state
            .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.write_lock_slow();
        }
    }

    #[inline]
    fn unlock(&self) {
        if self
            .state
            .compare_exchange(WRITER, 0, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        // Intent and/or parked bits present: clear the writer bit, then wake.
        let prev = self.state.fetch_and(!WRITER, Ordering::Release);
        debug_assert!(prev & WRITER != 0, "write unlock without a writer");
        if prev & PARKED != 0 {
            self.unpark_waiters();
        }
    }

    fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) & (WRITER | READERS) != 0
    }
}

impl RawTryLock for FutexRwLock {
    #[inline]
    fn try_lock(&self) -> bool {
        let mut state = self.state.load(Ordering::Relaxed);
        loop {
            if state & (WRITER | READERS) != 0 {
                return false;
            }
            match self.state.compare_exchange_weak(
                state,
                (state & (PARKED | STREAK_MASK)) | WRITER,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => state = actual,
            }
        }
    }
}

impl QueueInformed for FutexRwLock {
    /// Holders (readers or the writer) plus parked waiters; spinning waiters
    /// are invisible, as for [`FutexLock`](crate::FutexLock).
    fn queue_length(&self) -> u64 {
        let state = self.state.load(Ordering::Relaxed);
        let holders = u64::from(state & READERS) + u64::from(state & WRITER != 0);
        holders + ParkingLot::global().parked_count(self.addr()) as u64
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn raw_state_is_one_word() {
        assert_eq!(std::mem::size_of::<FutexRwLock>(), 4);
    }

    #[test]
    fn read_write_roundtrip() {
        let lock = FutexRwLock::new();
        lock.read_lock();
        lock.read_lock();
        assert_eq!(lock.reader_count(), 2);
        assert!(!lock.try_write_lock());
        lock.read_unlock();
        lock.read_unlock();
        lock.write_lock();
        assert!(lock.is_write_locked());
        assert!(!lock.try_read_lock());
        lock.write_unlock();
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn parked_writer_is_woken_by_last_reader() {
        let lock = Arc::new(FutexRwLock::new());
        lock.read_lock();
        let writer = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                lock.write_lock();
                lock.write_unlock();
            })
        };
        // Give the writer time to exhaust its spin budget and park.
        std::thread::sleep(Duration::from_millis(50));
        lock.read_unlock();
        writer.join().unwrap();
        assert!(!lock.is_locked());
        assert_eq!(lock.state.load(Ordering::Relaxed), 0, "all bits cleared");
    }

    #[test]
    fn parked_readers_are_woken_by_writer() {
        let lock = Arc::new(FutexRwLock::new());
        lock.write_lock();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    lock.read_lock();
                    lock.read_unlock();
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        lock.write_unlock();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(lock.queue_length(), 0);
        assert_eq!(lock.state.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn writer_completes_under_continuous_reader_churn() {
        let lock = Arc::new(FutexRwLock::new());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        lock.read_lock();
                        lock.read_unlock();
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        lock.write_lock();
        lock.write_unlock();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn readers_and_writers_interleave_consistently() {
        struct Shared(std::cell::UnsafeCell<(u64, u64)>);
        // SAFETY: the cell is only touched while holding the lock under
        // test; that exclusion is exactly what the test verifies.
        unsafe impl Sync for Shared {}
        let lock = Arc::new(FutexRwLock::new());
        let shared = Arc::new(Shared(std::cell::UnsafeCell::new((0, 0))));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        lock.write_lock();
                        // SAFETY: written while holding the write lock under test.
                        unsafe {
                            (*shared.0.get()).0 += 1;
                            (*shared.0.get()).1 += 1;
                        }
                        lock.write_unlock();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        lock.read_lock();
                        // SAFETY: read under the read lock; writers are excluded.
                        let (a, b) = unsafe { *shared.0.get() };
                        assert_eq!(a, b, "reader overlapped a writer");
                        lock.read_unlock();
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        // SAFETY: all worker threads are joined; nothing races this read.
        assert_eq!(unsafe { (*shared.0.get()).0 }, 8_000);
        assert_eq!(lock.state.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn parked_writer_bypass_is_bounded_under_barging_writers() {
        // Regression test mirroring futex_mutex's parked-victim test: a
        // parked writer must acquire within a bounded number of contended
        // wakeups even while other writers barge on every release. The
        // handoff streak guarantees every HANDOFF_WAKEUPS-th wake pre-sets
        // WRITER on the victim's behalf; without it the woken victim loses
        // the re-contention race to the bargers for unbounded stretches.
        let lock = Arc::new(FutexRwLock::new());
        let victim_done = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        lock.write_lock();
        let victim = {
            let lock = Arc::clone(&lock);
            let done = Arc::clone(&victim_done);
            std::thread::spawn(move || {
                lock.write_lock();
                done.store(true, Ordering::Release);
                lock.write_unlock();
            })
        };
        // Wait until the victim is parked (holder + parked waiter >= 2).
        while lock.queue_length() < 2 {
            std::thread::yield_now();
        }
        let bargers: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        lock.write_lock();
                        std::hint::spin_loop();
                        lock.write_unlock();
                        ops += 1;
                    }
                    ops
                })
            })
            .collect();
        lock.write_unlock();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !victim_done.load(Ordering::Acquire) {
            assert!(
                std::time::Instant::now() < deadline,
                "parked writer starved behind barging writers"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = bargers.into_iter().map(|h| h.join().unwrap()).sum();
        victim.join().unwrap();
        assert!(total > 0, "bargers must have run");
        assert_eq!(lock.state.load(Ordering::Relaxed), 0, "word fully clears");
    }

    #[test]
    fn parked_reader_cohort_is_admitted_under_writer_churn() {
        // The reader-side fairness bound: a cohort of parked readers under
        // continuous writer churn must all be admitted within a bounded
        // number of wakeups. The cohort handoff pre-charges their read
        // slots into the count, so a woken reader cannot lose the race to
        // the next writer's intent bit and re-park forever.
        use std::sync::atomic::AtomicUsize;
        let lock = Arc::new(FutexRwLock::new());
        let readers_done = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        lock.write_lock();
        let victims: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let done = Arc::clone(&readers_done);
                std::thread::spawn(move || {
                    lock.read_lock();
                    done.fetch_add(1, Ordering::Release);
                    lock.read_unlock();
                })
            })
            .collect();
        // Wait until all four readers are parked behind the held write lock.
        while lock.queue_length() < 5 {
            std::thread::yield_now();
        }
        let churners: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        lock.write_lock();
                        std::hint::spin_loop();
                        lock.write_unlock();
                        ops += 1;
                    }
                    ops
                })
            })
            .collect();
        lock.write_unlock();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while readers_done.load(Ordering::Acquire) < 4 {
            assert!(
                std::time::Instant::now() < deadline,
                "parked readers starved under writer churn ({} of 4 ran)",
                readers_done.load(Ordering::Acquire)
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = churners.into_iter().map(|h| h.join().unwrap()).sum();
        for v in victims {
            v.join().unwrap();
        }
        assert!(total > 0, "writer churn must have run");
        assert_eq!(lock.state.load(Ordering::Relaxed), 0, "word fully clears");
    }

    #[test]
    fn mixed_churn_leaves_no_residue() {
        // Heavy mixed traffic with forced parking (writers hold long enough
        // for readers to park and vice versa); afterwards the word must be
        // exactly zero and the lot free of this lock's waiters.
        let lock = Arc::new(FutexRwLock::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for i in 0..3_000u64 {
                        if (t + i as usize).is_multiple_of(3) {
                            lock.write_lock();
                            std::hint::spin_loop();
                            lock.write_unlock();
                        } else {
                            lock.read_lock();
                            std::hint::spin_loop();
                            lock.read_unlock();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.state.load(Ordering::Relaxed), 0);
        assert_eq!(lock.queue_length(), 0);
    }
}
