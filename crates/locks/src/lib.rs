//! Lock-algorithm substrate for the "Locking Made Easy" reproduction.
//!
//! The paper's middleware (GLS) and adaptive lock (GLK) are built from a set
//! of classic lock algorithms (§2): simple spinlocks (test-and-set,
//! test-and-test-and-set, ticket), queue-based spinlocks (MCS, CLH) and a
//! blocking mutex with a bounded busy-wait phase. This crate implements all
//! of them behind two small traits, [`RawLock`] and [`RawTryLock`], plus a
//! [`QueueInformed`] extension that exposes the queue length needed by GLK's
//! contention statistics.
//!
//! All locks are padded to a cache line ([`CachePadded`]) exactly as the
//! paper's methodology pads every lock to 64 bytes to avoid false sharing.
//!
//! # Quick start
//!
//! ```
//! use gls_locks::{RawLock, TicketLock};
//!
//! let lock = TicketLock::new();
//! lock.lock();
//! // ... critical section ...
//! lock.unlock();
//! ```
//!
//! For lock-protects-data usage, wrap any algorithm in [`Lock`]:
//!
//! ```
//! use gls_locks::{Lock, McsLock};
//!
//! let counter: Lock<u64, McsLock> = Lock::new(0);
//! *counter.lock() += 1;
//! assert_eq!(*counter.lock(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache_padded;
pub mod clh;
pub mod kind;
pub mod lock;
pub mod mcs;
pub mod mutex;
pub mod raw;
pub mod rwlock;
pub mod spin_wait;
pub mod tas;
#[cfg(test)]
pub(crate) mod test_support;
pub mod ticket;
pub mod ttas;

pub use cache_padded::CachePadded;
pub use clh::ClhLock;
pub use kind::LockKind;
pub use lock::{Lock, LockGuard};
pub use mcs::McsLock;
pub use mutex::MutexLock;
pub use raw::{QueueInformed, RawLock, RawTryLock};
pub use rwlock::{RwTtasLock, RwTtasReadGuard, RwTtasWriteGuard};
pub use spin_wait::SpinWait;
pub use tas::TasLock;
pub use ticket::TicketLock;
pub use ttas::TtasLock;
