//! Lock-algorithm substrate for the "Locking Made Easy" reproduction.
//!
//! The paper's middleware (GLS) and adaptive lock (GLK) are built from a set
//! of classic lock algorithms (§2): simple spinlocks (test-and-set,
//! test-and-test-and-set, ticket), queue-based spinlocks (MCS, CLH) and a
//! blocking mutex with a bounded busy-wait phase. This crate implements all
//! of them behind two small traits, [`RawLock`] and [`RawTryLock`], plus a
//! [`QueueInformed`] extension that exposes the queue length needed by GLK's
//! contention statistics. Reader-writer locking (Kyoto Cabinet, SQLite —
//! §5.2) is covered by the [`RawRwLock`] trait with a spinning
//! ([`RwTtasRaw`]) and a blocking/parking ([`RwMutexLock`]) implementation,
//! both writer-preferring via a writer-intent bit so reader streams cannot
//! starve writers.
//!
//! Blocking at scale is served by the address-keyed **parking lot** ([`park`]):
//! a global sharded table of FIFO wait buckets that holds all wait-queue
//! state centrally, so the word-sized [`FutexLock`] and [`FutexRwLock`]
//! need only a single `AtomicU32` of per-lock state — the layout that lets
//! a production system keep hundreds of thousands of live blocking locks.
//!
//! All locks are padded to a cache line ([`CachePadded`]) exactly as the
//! paper's methodology pads every lock to 64 bytes to avoid false sharing —
//! except the futex locks, whose entire point is density; wrap them in
//! [`CachePadded`] explicitly where padding matters more than space.
//!
//! # Quick start
//!
//! ```
//! use gls_locks::{RawLock, TicketLock};
//!
//! let lock = TicketLock::new();
//! lock.lock();
//! // ... critical section ...
//! lock.unlock();
//! ```
//!
//! For lock-protects-data usage, wrap any algorithm in [`Lock`]:
//!
//! ```
//! use gls_locks::{Lock, McsLock};
//!
//! let counter: Lock<u64, McsLock> = Lock::new(0);
//! *counter.lock() += 1;
//! assert_eq!(*counter.lock(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache_padded;
pub mod clh;
pub mod cohort;
pub mod futex_mutex;
pub mod futex_rwlock;
pub mod kind;
pub mod lock;
pub mod mcs;
pub mod mutex;
pub mod park;
#[cfg(test)]
mod proptests;
pub mod raw;
pub mod rw_mutex;
pub mod rwlock;
pub mod spin_wait;
pub mod tas;
pub mod telemetry;
#[cfg(test)]
pub(crate) mod test_support;
pub mod ticket;
pub mod ttas;

pub use cache_padded::CachePadded;
pub use clh::ClhLock;
pub use futex_mutex::FutexLock;
pub use futex_rwlock::FutexRwLock;
pub use kind::LockKind;
pub use lock::{Lock, LockGuard};
pub use mcs::McsLock;
pub use mutex::MutexLock;
pub use park::{ParkResult, ParkingLot, ParkingLotStats, RequeueResult, UnparkResult};
pub use raw::{QueueInformed, RawLock, RawRwLock, RawTryLock};
pub use rw_mutex::RwMutexLock;
pub use rwlock::{RwTtasLock, RwTtasRaw, RwTtasReadGuard, RwTtasWriteGuard};
pub use spin_wait::SpinWait;
pub use tas::TasLock;
pub use telemetry::{cohort_stats, CohortStats};
pub use ticket::TicketLock;
pub use ttas::TtasLock;
