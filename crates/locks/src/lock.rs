//! A data-carrying lock generic over the raw algorithm.
//!
//! [`Lock<T, R>`] pairs any [`RawLock`] algorithm from this crate with the
//! data it protects, giving the familiar guard-based API of
//! [`std::sync::Mutex`] while letting callers (and the benchmark harness)
//! choose the algorithm as a type parameter.

use std::cell::UnsafeCell;
use std::fmt;

use crate::mutex::MutexLock;
use crate::raw::{RawLock, RawTryLock};

/// A value of type `T` protected by a raw lock of type `R`.
///
/// # Example
///
/// ```
/// use gls_locks::{Lock, TicketLock};
///
/// let counter: Lock<u32, TicketLock> = Lock::new(0);
/// {
///     let mut guard = counter.lock();
///     *guard += 1;
/// }
/// assert_eq!(counter.into_inner(), 1);
/// ```
#[derive(Default)]
pub struct Lock<T, R: RawLock = MutexLock> {
    raw: R,
    data: UnsafeCell<T>,
}

// SAFETY: the raw lock serializes all access to `data`.
unsafe impl<T: Send, R: RawLock> Send for Lock<T, R> {}
unsafe impl<T: Send, R: RawLock> Sync for Lock<T, R> {}

impl<T, R: RawLock> Lock<T, R> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            raw: R::default(),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, returning a guard that releases it on drop.
    pub fn lock(&self) -> LockGuard<'_, T, R> {
        self.raw.lock();
        LockGuard { lock: self }
    }

    /// Attempts to acquire the lock without waiting.
    pub fn try_lock(&self) -> Option<LockGuard<'_, T, R>>
    where
        R: RawTryLock,
    {
        if self.raw.try_lock() {
            Some(LockGuard { lock: self })
        } else {
            None
        }
    }

    /// Whether the lock is currently held (racy; diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.raw.is_locked()
    }

    /// Returns a reference to the underlying raw lock.
    pub fn raw(&self) -> &R {
        &self.raw
    }

    /// Mutable access without locking; requires `&mut self`.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: fmt::Debug, R: RawLock> fmt::Debug for Lock<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lock")
            .field("algorithm", &R::NAME)
            .field("locked", &self.raw.is_locked())
            .finish_non_exhaustive()
    }
}

impl<T, R: RawLock> From<T> for Lock<T, R> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// RAII guard for [`Lock`]; releases the lock when dropped.
pub struct LockGuard<'a, T, R: RawLock> {
    lock: &'a Lock<T, R>,
}

impl<T, R: RawLock> std::ops::Deref for LockGuard<'_, T, R> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves we hold the raw lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T, R: RawLock> std::ops::DerefMut for LockGuard<'_, T, R> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves we hold the raw lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T, R: RawLock> Drop for LockGuard<'_, T, R> {
    fn drop(&mut self) {
        self.lock.raw.unlock();
    }
}

impl<T: fmt::Debug, R: RawLock> fmt::Debug for LockGuard<'_, T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClhLock, McsLock, TicketLock, TtasLock};
    use std::sync::Arc;

    #[test]
    fn guard_gives_exclusive_access() {
        let lock: Lock<Vec<u32>, TicketLock> = Lock::new(vec![]);
        lock.lock().push(1);
        lock.lock().push(2);
        assert_eq!(*lock.lock(), vec![1, 2]);
    }

    #[test]
    fn try_lock_respects_holder() {
        let lock: Lock<u32, McsLock> = Lock::new(0);
        let guard = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(guard);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn get_mut_and_into_inner() {
        let mut lock: Lock<u32, TtasLock> = Lock::new(3);
        *lock.get_mut() += 1;
        assert_eq!(lock.into_inner(), 4);
    }

    #[test]
    fn default_algorithm_is_mutex() {
        let lock: Lock<u32> = Lock::new(0);
        assert!(!lock.is_locked());
        let _g = lock.lock();
        assert!(lock.is_locked());
    }

    #[test]
    fn debug_mentions_algorithm() {
        let lock: Lock<u32, ClhLock> = Lock::new(0);
        let s = format!("{lock:?}");
        assert!(s.contains("CLH"));
    }

    fn hammer<R: RawLock + 'static>() {
        let lock: Arc<Lock<u64, R>> = Arc::new(Lock::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 80_000);
    }

    #[test]
    fn data_lock_mutual_exclusion_all_algorithms() {
        hammer::<crate::TasLock>();
        hammer::<crate::TtasLock>();
        hammer::<crate::TicketLock>();
        hammer::<crate::McsLock>();
        hammer::<crate::ClhLock>();
        hammer::<crate::MutexLock>();
    }
}
