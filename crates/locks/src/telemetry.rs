//! Process-wide lock-event counters exported to telemetry snapshots.
//!
//! The word-sized locks cannot carry their own counters — the entire reason
//! [`FutexLock`](crate::FutexLock) exists is that it is one `AtomicU32`,
//! and a size test enforces that — so the rare-path events worth observing
//! (direct handoffs and cohort head bypasses) accumulate here, process-wide.
//! All counters are raw std atomics updated with relaxed ordering on paths
//! that already took a parking-lot bucket lock, so they cost nothing on the
//! fast path and stay invisible to the model explorer's scheduling points.

use std::sync::atomic::{AtomicU64, Ordering};

static HANDOFFS: AtomicU64 = AtomicU64::new(0);
static HEAD_BYPASSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative cohort-handoff counters (process-wide, since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CohortStats {
    /// Releases that handed the lock directly to a parked waiter (the
    /// bounded-bypass handoff path, every
    /// [`HANDOFF_WAKEUPS`](crate::futex_mutex::HANDOFF_WAKEUPS)-th
    /// contended wakeup).
    pub handoffs: u64,
    /// Handoffs that bypassed the queue head in favour of a waiter from the
    /// releaser's cache domain (always ≤ `handoffs`; 0 on single-domain
    /// machines, where cohort preference never fires).
    pub head_bypasses: u64,
}

/// Records one direct handoff (and whether it bypassed the queue head).
#[inline]
pub(crate) fn note_handoff(bypassed_head: bool) {
    HANDOFFS.fetch_add(1, Ordering::Relaxed);
    if bypassed_head {
        HEAD_BYPASSES.fetch_add(1, Ordering::Relaxed);
    }
}

/// The current process-wide cohort-handoff counters.
pub fn cohort_stats() -> CohortStats {
    CohortStats {
        handoffs: HANDOFFS.load(Ordering::Relaxed),
        head_bypasses: HEAD_BYPASSES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_counters_accumulate() {
        let before = cohort_stats();
        note_handoff(false);
        note_handoff(true);
        let after = cohort_stats();
        // Other tests run concurrently, so only lower-bound the deltas.
        assert!(after.handoffs >= before.handoffs + 2);
        assert!(after.head_bypasses > before.head_bypasses);
        assert!(after.head_bypasses <= after.handoffs);
    }
}
