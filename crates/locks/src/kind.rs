//! Enumeration of the lock algorithms known to the middleware.

use std::fmt;
use std::str::FromStr;

/// The lock algorithms exposed by GLS (paper Table 1) plus the adaptive GLK.
///
/// # Example
///
/// ```
/// use gls_locks::LockKind;
///
/// assert_eq!("mcs".parse::<LockKind>().unwrap(), LockKind::Mcs);
/// assert_eq!(LockKind::Ticket.to_string(), "TICKET");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockKind {
    /// Test-and-set spinlock.
    Tas,
    /// Test-and-test-and-set spinlock.
    Ttas,
    /// Ticket spinlock (fair).
    Ticket,
    /// MCS queue lock.
    Mcs,
    /// CLH queue lock.
    Clh,
    /// Blocking mutex (spin-then-block).
    Mutex,
    /// Word-sized blocking mutex parked on the shared parking lot
    /// (spin-then-park; one `AtomicU32` of per-lock state).
    Futex,
    /// Word-sized blocking reader-writer lock parked on the shared parking
    /// lot. Exclusive (`lock`) calls on such an entry acquire write access.
    FutexRw,
    /// The adaptive generic lock (GLK).
    Glk,
    /// The adaptive reader-writer lock (GLK-RW): spinning TTAS-rw normally,
    /// blocking rw mutex under multiprogramming. Exclusive (`lock`) calls on
    /// such an entry acquire write access.
    Rw,
}

impl LockKind {
    /// All concrete (non-adaptive) algorithms.
    pub const CONCRETE: [LockKind; 8] = [
        LockKind::Tas,
        LockKind::Ttas,
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Mutex,
        LockKind::Futex,
        LockKind::FutexRw,
    ];

    /// All algorithms, including the adaptive GLK and GLK-RW.
    pub const ALL: [LockKind; 10] = [
        LockKind::Tas,
        LockKind::Ttas,
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Mutex,
        LockKind::Futex,
        LockKind::FutexRw,
        LockKind::Glk,
        LockKind::Rw,
    ];

    /// Upper-case display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Tas => "TAS",
            LockKind::Ttas => "TTAS",
            LockKind::Ticket => "TICKET",
            LockKind::Mcs => "MCS",
            LockKind::Clh => "CLH",
            LockKind::Mutex => "MUTEX",
            LockKind::Futex => "FUTEX",
            LockKind::FutexRw => "FUTEX-RW",
            LockKind::Glk => "GLK",
            LockKind::Rw => "RW",
        }
    }

    /// Whether this algorithm busy-waits (as opposed to blocking).
    pub fn is_spinning(self) -> bool {
        !matches!(self, LockKind::Mutex | LockKind::Futex | LockKind::FutexRw)
    }

    /// Whether this algorithm hands out the lock in FIFO order.
    pub fn is_fair(self) -> bool {
        matches!(self, LockKind::Ticket | LockKind::Mcs | LockKind::Clh)
    }
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown lock-kind name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLockKindError {
    input: String,
}

impl fmt::Display for ParseLockKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown lock kind: {:?}", self.input)
    }
}

impl std::error::Error for ParseLockKindError {}

impl FromStr for LockKind {
    type Err = ParseLockKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tas" => Ok(LockKind::Tas),
            "ttas" => Ok(LockKind::Ttas),
            "ticket" => Ok(LockKind::Ticket),
            "mcs" => Ok(LockKind::Mcs),
            "clh" => Ok(LockKind::Clh),
            "mutex" | "pthread" => Ok(LockKind::Mutex),
            "futex" => Ok(LockKind::Futex),
            "futex-rw" | "futex_rw" | "futexrw" => Ok(LockKind::FutexRw),
            "glk" | "adaptive" => Ok(LockKind::Glk),
            "rw" | "rwlock" => Ok(LockKind::Rw),
            _ => Err(ParseLockKindError { input: s.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for kind in LockKind::ALL {
            let parsed: LockKind = kind.name().to_lowercase().parse().unwrap();
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "spinny".parse::<LockKind>().unwrap_err();
        assert!(err.to_string().contains("spinny"));
    }

    #[test]
    fn fairness_and_spinning_classification() {
        assert!(LockKind::Ticket.is_fair());
        assert!(LockKind::Mcs.is_fair());
        assert!(!LockKind::Tas.is_fair());
        assert!(!LockKind::Mutex.is_spinning());
        assert!(!LockKind::Futex.is_spinning());
        assert!(!LockKind::FutexRw.is_spinning());
        assert!(!LockKind::Futex.is_fair(), "futex waiters barge");
        assert!(LockKind::Glk.is_spinning());
    }

    #[test]
    fn concrete_excludes_adaptive_kinds() {
        assert!(!LockKind::CONCRETE.contains(&LockKind::Glk));
        assert!(!LockKind::CONCRETE.contains(&LockKind::Rw));
        assert!(LockKind::CONCRETE.contains(&LockKind::Futex));
        assert!(LockKind::CONCRETE.contains(&LockKind::FutexRw));
        assert!(LockKind::ALL.contains(&LockKind::Glk));
        assert!(LockKind::ALL.contains(&LockKind::Rw));
    }
}
