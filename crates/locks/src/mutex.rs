//! Blocking mutex with a bounded busy-wait phase.
//!
//! The paper's MUTEX mode exists for multiprogrammed environments: waiting
//! threads must release their hardware context to the OS instead of spinning.
//! Like glibc's adaptive `pthread_mutex`, this lock first spins for a bounded
//! number of attempts (blocking/unblocking through the OS is expensive) and
//! only then puts the thread to sleep. The paper notes its GLK-embedded MUTEX
//! is deliberately lighter than glibc's, leaving sanity checks to the GLS
//! debug mode; this implementation follows that split.

use gls_sync::atomic::{AtomicU32, AtomicU64, Ordering};
use gls_sync::sync::{Condvar, Mutex};

use crate::cache_padded::CachePadded;
use crate::raw::{QueueInformed, RawLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// Lock states.
const FREE: u32 = 0;
const HELD: u32 = 1;
const CONTENDED: u32 = 2;

/// Number of bounded-spin attempts before a waiter goes to sleep. Under the
/// model a single attempt exposes every spin-vs-sleep interleaving; more
/// only blow up the exhaustive state space.
#[cfg(not(gls_model))]
const SPIN_ATTEMPTS: u32 = 64;
#[cfg(gls_model)]
const SPIN_ATTEMPTS: u32 = 1;

/// A blocking (spin-then-sleep) mutual-exclusion lock.
///
/// # Example
///
/// ```
/// use gls_locks::{MutexLock, RawLock};
///
/// let lock = MutexLock::new();
/// lock.lock();
/// lock.unlock();
/// ```
#[derive(Debug, Default)]
pub struct MutexLock {
    state: CachePadded<MutexState>,
}

#[derive(Debug, Default)]
struct MutexState {
    /// FREE / HELD / CONTENDED.
    word: AtomicU32,
    /// Holder + waiters (spinning or sleeping), for [`QueueInformed`].
    queued: AtomicU64,
    /// Parking lot for sleeping waiters.
    sleep_lock: Mutex<()>,
    sleep_cond: Condvar,
}

impl MutexLock {
    /// Creates an unlocked mutex.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn try_acquire_fast(&self) -> bool {
        self.state
            .word
            .compare_exchange(FREE, HELD, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    #[cold]
    fn lock_slow(&self) {
        // Bounded spin phase: blocking through the OS costs far more than a
        // short critical section, so give the holder a chance to finish.
        // `spin_bounded` never yields — this lock's fallback for long waits
        // is the sleep phase below, not donating the timeslice.
        let mut wait = SpinWait::new();
        for _ in 0..SPIN_ATTEMPTS {
            if self.state.word.load(Ordering::Relaxed) == FREE && self.try_acquire_fast() {
                return;
            }
            wait.spin_bounded();
        }
        // Sleep phase: mark the lock contended and park until woken.
        let mut guard = self
            .state
            .sleep_lock
            .lock()
            .expect("mutex parking lot poisoned");
        loop {
            if self.state.word.swap(CONTENDED, Ordering::Acquire) == FREE {
                // We acquired the lock; it stays marked CONTENDED so the
                // release path will wake another sleeper if there is one.
                return;
            }
            guard = self
                .state
                .sleep_cond
                .wait(guard)
                .expect("mutex parking lot poisoned");
        }
    }
}

impl RawLock for MutexLock {
    const NAME: &'static str = "MUTEX";

    #[inline]
    fn lock(&self) {
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        if self.try_acquire_fast() {
            return;
        }
        self.lock_slow();
    }

    #[inline]
    fn unlock(&self) {
        let prev = self.state.word.swap(FREE, Ordering::Release);
        if prev == CONTENDED {
            // Some waiter may be asleep (or about to sleep); taking the
            // parking-lot mutex before notifying closes the lost-wakeup race.
            let _guard = self
                .state
                .sleep_lock
                .lock()
                .expect("mutex parking lot poisoned");
            self.state.sleep_cond.notify_one();
        }
        self.state.queued.fetch_sub(1, Ordering::Relaxed);
    }

    fn is_locked(&self) -> bool {
        self.state.word.load(Ordering::Relaxed) != FREE
    }
}

impl RawTryLock for MutexLock {
    #[inline]
    fn try_lock(&self) -> bool {
        let acquired = self.try_acquire_fast();
        if acquired {
            self.state.queued.fetch_add(1, Ordering::Relaxed);
        }
        acquired
    }
}

impl QueueInformed for MutexLock {
    fn queue_length(&self) -> u64 {
        self.state.queued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_unlock_single_thread() {
        let lock = MutexLock::new();
        assert!(!lock.is_locked());
        lock.lock();
        assert!(lock.is_locked());
        lock.unlock();
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_semantics() {
        let lock = MutexLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        crate::test_support::check_mutual_exclusion::<MutexLock>(8, 20_000);
    }

    #[test]
    fn sleeping_waiters_are_woken() {
        // Hold the lock long enough that waiters exhaust their spin budget
        // and go to sleep, then release and check they all finish.
        let lock = Arc::new(MutexLock::new());
        lock.lock();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&lock);
                std::thread::spawn(move || {
                    l.lock();
                    l.unlock();
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        lock.unlock();
        for h in handles {
            h.join().unwrap();
        }
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn queue_length_tracks_holder_and_waiters() {
        let lock = Arc::new(MutexLock::new());
        lock.lock();
        assert_eq!(lock.queue_length(), 1);
        let l = Arc::clone(&lock);
        let waiter = std::thread::spawn(move || {
            l.lock();
            l.unlock();
        });
        while lock.queue_length() < 2 {
            std::hint::spin_loop();
        }
        lock.unlock();
        waiter.join().unwrap();
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn heavy_handover_does_not_deadlock() {
        let lock = Arc::new(MutexLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        lock.lock();
                        counter.fetch_add(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 60_000);
    }
}
