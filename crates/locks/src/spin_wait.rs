//! Spin-then-yield waiting for unbounded busy-wait loops.
//!
//! A waiter that spins with [`std::hint::spin_loop`] alone burns its entire
//! scheduler timeslice when the thread it waits for is preempted — on a
//! machine with fewer free hardware contexts than waiters (CI runners, the
//! paper's multiprogrammed scenarios) lock handover then crawls at the rate
//! of involuntary context switches. [`SpinWait`] keeps the cheap spin phase
//! for the common short wait and degrades to [`std::thread::yield_now`] once
//! the wait is clearly long, so progress is never bound to timeslice expiry.
//!
//! The spin phase grows exponentially (1, 2, 4, … pause instructions, ~1000
//! total) before the first yield, mirroring the adaptive scheme used by
//! production lock libraries.

/// Escalating waiter for spin loops: exponential spinning, then yielding.
///
/// # Example
///
/// ```
/// use gls_locks::SpinWait;
///
/// let mut wait = SpinWait::new();
/// for _ in 0..3 {
///     wait.spin(); // cheap pause-based spinning at first
/// }
/// assert!(!wait.is_yielding());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpinWait {
    round: u32,
}

impl SpinWait {
    /// Number of exponential spin rounds before the waiter starts yielding
    /// its timeslice (total ≈ `2^SPIN_ROUNDS` pause instructions).
    pub const SPIN_ROUNDS: u32 = 10;

    /// Creates a waiter at the start of its spin phase.
    pub const fn new() -> Self {
        Self { round: 0 }
    }

    /// How many pause instructions round `round` issues. Under the model
    /// every pause is a scheduling point, so one per round is enough to
    /// expose the interleavings — 2^round of them would only multiply the
    /// state space without adding behaviors.
    #[inline]
    fn pauses(round: u32) -> u32 {
        #[cfg(gls_model)]
        {
            let _ = round;
            1
        }
        #[cfg(not(gls_model))]
        {
            1u32 << round
        }
    }

    /// Waits one round: a short exponentially growing spin early on, a
    /// scheduler yield once the spin budget is exhausted.
    #[inline]
    pub fn spin(&mut self) {
        if self.round < Self::SPIN_ROUNDS {
            for _ in 0..Self::pauses(self.round) {
                gls_sync::hint::spin_loop();
            }
            self.round += 1;
        } else {
            gls_sync::thread::yield_now();
        }
    }

    /// Waits one round without ever yielding: the delay grows exponentially
    /// and then stays at the `2^SPIN_ROUNDS`-pause cap. For spin-then-park
    /// locks ([`MutexLock`](crate::MutexLock)) whose bounded spin phase must
    /// not donate its timeslice — the fallback there is sleeping, not
    /// yielding.
    #[inline]
    pub fn spin_bounded(&mut self) {
        for _ in 0..Self::pauses(self.round.min(Self::SPIN_ROUNDS)) {
            gls_sync::hint::spin_loop();
        }
        if self.round < Self::SPIN_ROUNDS {
            self.round += 1;
        }
    }

    /// Whether the spin budget is exhausted and further waits yield.
    pub fn is_yielding(&self) -> bool {
        self.round >= Self::SPIN_ROUNDS
    }

    /// Restarts the spin phase (call after a successful acquisition).
    pub fn reset(&mut self) {
        self.round = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spins_before_yielding() {
        let mut w = SpinWait::new();
        for _ in 0..SpinWait::SPIN_ROUNDS {
            assert!(!w.is_yielding());
            w.spin();
        }
        assert!(w.is_yielding());
        // Further rounds stay in the yielding regime without panicking.
        w.spin();
        w.spin();
        assert!(w.is_yielding());
    }

    #[test]
    fn reset_restores_spin_phase() {
        let mut w = SpinWait::new();
        for _ in 0..=SpinWait::SPIN_ROUNDS {
            w.spin();
        }
        w.reset();
        assert!(!w.is_yielding());
    }

    #[test]
    fn bounded_spin_never_enters_yield_regime_prematurely() {
        let mut w = SpinWait::new();
        for _ in 0..3 * SpinWait::SPIN_ROUNDS {
            w.spin_bounded();
        }
        // The counter saturates at the cap; subsequent rounds keep spinning
        // at the maximum delay (no panic, no overflow).
        assert!(w.is_yielding());
        w.spin_bounded();
    }
}
