//! The raw lock traits shared by every algorithm in this crate.

/// A raw mutual-exclusion lock: no data, just `lock` / `unlock`.
///
/// This mirrors the classic lock interface of §2 of the paper. All
/// implementations in this crate are [`Send`] + [`Sync`] and constructible
/// with [`Default`] so that higher layers (GLK, GLS) can create them lazily.
///
/// # Contract
///
/// `unlock` must only be called by the thread that currently holds the lock.
/// Violations cannot cause memory unsafety with the implementations in this
/// crate (they are checked or tolerated), but they break mutual exclusion —
/// exactly the class of bug the GLS debug mode (§4.2) exists to detect.
pub trait RawLock: Send + Sync + Default {
    /// Human-readable algorithm name (e.g. `"TICKET"`), used in reports.
    const NAME: &'static str;

    /// Acquires the lock, blocking (spinning or sleeping) until it is held.
    fn lock(&self);

    /// Releases the lock.
    fn unlock(&self);

    /// Whether the lock is currently held by some thread.
    ///
    /// This is inherently racy and intended for diagnostics and tests only.
    fn is_locked(&self) -> bool;
}

/// A lock that also supports a non-blocking acquisition attempt.
pub trait RawTryLock: RawLock {
    /// Attempts to acquire the lock without waiting; returns `true` on
    /// success.
    fn try_lock(&self) -> bool;
}

/// A raw reader-writer lock: shared (read) and exclusive (write) access
/// with no data attached.
///
/// The exclusive side *is* the [`RawLock`]/[`RawTryLock`] interface —
/// `lock`/`unlock`/`try_lock` acquire and release write access — so every
/// reader-writer lock can be used wherever a plain mutual-exclusion lock is
/// expected (GLK, GLS entries, the benchmark harness). The `write_*` aliases
/// below exist so call sites pairing with `read_*` read symmetrically.
///
/// # Contract
///
/// `read_unlock` must only be called by a thread holding shared access, and
/// `write_unlock` by the thread holding exclusive access. Implementations in
/// this crate are writer-preferring: a waiting writer blocks newly arriving
/// readers (see [`RwTtasRaw`](crate::RwTtasRaw)), so a continuous reader
/// stream cannot starve writers. The flip side is that a continuous stream
/// of *writers* delays readers unboundedly — the right trade-off for the
/// evaluated systems' structure locks (reads dominate, writes must land),
/// but not a general fairness guarantee for read-mostly users.
pub trait RawRwLock: RawTryLock {
    /// Acquires shared (read) access, blocking until no writer holds or
    /// awaits the lock.
    fn read_lock(&self);

    /// Attempts to acquire shared access without waiting; returns `true` on
    /// success.
    fn try_read_lock(&self) -> bool;

    /// Releases shared access.
    fn read_unlock(&self);

    /// Acquires exclusive (write) access; equivalent to [`RawLock::lock`].
    fn write_lock(&self) {
        self.lock();
    }

    /// Attempts to acquire exclusive access without waiting; equivalent to
    /// [`RawTryLock::try_lock`].
    fn try_write_lock(&self) -> bool {
        self.try_lock()
    }

    /// Releases exclusive access; equivalent to [`RawLock::unlock`].
    fn write_unlock(&self) {
        self.unlock();
    }
}

/// A lock able to report how many threads are currently involved with it
/// (the holder plus any waiters).
///
/// GLK's contention metric is "the amount of queuing behind the lock" (§3):
/// for a ticket lock this is `ticket - owner`, for MCS the paper counts queue
/// nodes. Every lock used inside GLK implements this trait.
pub trait QueueInformed: RawLock {
    /// Number of threads holding or waiting for the lock right now.
    ///
    /// `0` means free and uncontended; `1` means held with no waiter.
    fn queue_length(&self) -> u64;
}

/// Asserts at compile time that `T` is `Send` and `Sync`; used in tests.
#[cfg(test)]
pub(crate) fn assert_send_sync<T: Send + Sync>() {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ClhLock, FutexLock, FutexRwLock, McsLock, MutexLock, RwMutexLock, RwTtasRaw, TasLock,
        TicketLock, TtasLock,
    };

    #[test]
    fn all_locks_are_send_sync() {
        assert_send_sync::<TasLock>();
        assert_send_sync::<TtasLock>();
        assert_send_sync::<TicketLock>();
        assert_send_sync::<McsLock>();
        assert_send_sync::<ClhLock>();
        assert_send_sync::<MutexLock>();
        assert_send_sync::<FutexLock>();
        assert_send_sync::<FutexRwLock>();
        assert_send_sync::<RwTtasRaw>();
        assert_send_sync::<RwMutexLock>();
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            TasLock::NAME,
            TtasLock::NAME,
            TicketLock::NAME,
            McsLock::NAME,
            ClhLock::NAME,
            MutexLock::NAME,
            FutexLock::NAME,
            FutexRwLock::NAME,
            RwTtasRaw::NAME,
            RwMutexLock::NAME,
        ];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
